PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
DATE := $(shell date +%Y%m%d)

.PHONY: test lint lint-cold bench bench-smoke report figures clean

# Tier-1 suite (the gate every PR must keep green).
test:
	$(PYTHON) -m pytest -x -q

# Repo-specific static analysis (tools/replint): determinism, wall-clock,
# telemetry-schema sync, env registry, fork safety, silent excepts, plus
# the whole-program passes (layering DAG, determinism taint, fork
# reachability, contract sync).  Incremental by default — per-file AST
# facts cache under .repro_cache/replint/ and wall time prints to
# stderr; `make lint-cold` forces a full re-analysis.
lint:
	$(PYTHON) -m tools.replint src

lint-cold:
	$(PYTHON) -m tools.replint src --no-cache

# Full perf regression bench; archives machine-readable results as
# BENCH_<date>.json next to the human-readable results/ text files.
bench:
	REPRO_BENCH_JSON=BENCH_$(DATE).json \
		$(PYTHON) -m pytest benchmarks/test_perf_regression.py -q -s
	@echo "wrote BENCH_$(DATE).json"

# Seconds-long variant for CI smoke runs (no timing assertions).
bench-smoke:
	REPRO_BENCH_SMOKE=1 \
		$(PYTHON) -m pytest benchmarks/test_perf_regression.py -q -s

# Record a short scenario and render the HTML run report.
report:
	$(PYTHON) -m repro run --scheme paraleon --scale small \
		--duration 0.02 --jobs 1 --no-cache \
		--record report_recording.json --trace report_trace.jsonl
	$(PYTHON) -m repro report report_recording.json \
		--trace-file report_trace.jsonl --out report.html
	@echo "wrote report.html"

# Regenerate every paper figure/table (slow).
figures:
	$(PYTHON) -m pytest benchmarks/ -q -s

clean:
	rm -rf .pytest_cache .hypothesis .repro_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
