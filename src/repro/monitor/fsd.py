"""Flow size distributions, KL-divergence triggering, and accuracy.

A :class:`FlowSizeDistribution` summarizes the traffic mix in one
monitor interval two ways:

* an **elephant/mice split** — expected elephant count (PE flows
  contribute fractionally by likelihood) vs expected mice count.  This
  feeds the guided-randomness bias ``(dominant type, µ)`` of the SA
  tuner;
* a **log-bucket histogram** of per-flow cumulative bytes — the
  distribution the controller compares across intervals with KL
  divergence to decide whether traffic changed enough to trigger
  tuning (``KL(R_t, R_{t-1}) > θ``).

Accuracy metrics for the monitoring comparison (Fig. 10/11) are also
here: per-flow classification accuracy against ground-truth labels and
a total-variation-based distribution accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.monitor.states import (
    CODE_ELEPHANT,
    CODE_MICE,
    CODE_OF_STATE,
    STATE_OF_CODE,
    FlowStateEntry,
    TernaryState,
)
from repro.simulator.units import mb

#: Number of log2 size buckets in the histogram (1 B .. ~1 GB).
HISTOGRAM_BUCKETS = 31


def _bucket_index(nbytes: int) -> int:
    if nbytes < 1:
        return 0
    return min(int(math.log2(nbytes)), HISTOGRAM_BUCKETS - 1)


@dataclass
class FlowSizeDistribution:
    """Network-wide (or per-switch) traffic mix for one interval."""

    elephant_weight: float = 0.0   # expected elephants (E + likelihood·PE)
    mice_weight: float = 0.0       # expected mice
    histogram: Tuple[float, ...] = field(
        default_factory=lambda: tuple([0.0] * HISTOGRAM_BUCKETS)
    )
    flow_states: Dict[int, TernaryState] = field(default_factory=dict)
    #: Memoized ``(histogram, epsilon, result)`` of the last
    #: :meth:`normalized_histogram` call.  The controller normalizes
    #: the same interval's histogram repeatedly (KL against previous,
    #: KL against pre-change reference, logging), and the histogram
    #: tuple is replaced wholesale when it changes, so identity of the
    #: tuple is a sound cache key.
    _norm_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        flow_ids: np.ndarray,
        cumulative_bytes: np.ndarray,
        state_codes: np.ndarray,
        tau: int = mb(1.0),
    ) -> "FlowSizeDistribution":
        """Build from columnar classifier output (tracking order).

        This is the single summation kernel for both monitoring modes:
        :meth:`from_entries` funnels through it too, so the scalar and
        batched pipelines reduce the same operand sequence with the same
        ``np.sum`` and produce bit-identical weights — a precondition
        for the cross-mode run-digest gate.
        """
        ids = np.asarray(flow_ids, dtype=np.int64)
        cum = np.asarray(cumulative_bytes, dtype=np.int64)
        codes = np.asarray(state_codes)
        if ids.size == 0:
            return cls()
        likelihood = np.where(
            codes == CODE_ELEPHANT,
            1.0,
            np.where(codes == CODE_MICE, 0.0, np.minimum(1.0, cum / tau)),
        )
        # log2 bucketing, vectorized twin of _bucket_index (both lean on
        # the platform libm log2, so the truncations agree bit-for-bit).
        buckets = np.zeros(ids.size, dtype=np.int64)
        positive = cum >= 1
        if positive.any():
            buckets[positive] = np.minimum(
                np.log2(cum[positive].astype(np.float64)).astype(np.int64),
                HISTOGRAM_BUCKETS - 1,
            )
        histogram = np.bincount(buckets, minlength=HISTOGRAM_BUCKETS).astype(float)
        states = {
            int(fid): STATE_OF_CODE[int(code)]
            for fid, code in zip(ids.tolist(), codes.tolist())
        }
        return cls(
            elephant_weight=float(np.sum(likelihood)),
            mice_weight=float(np.sum(1.0 - likelihood)),
            histogram=tuple(histogram.tolist()),
            flow_states=states,
        )

    @classmethod
    def from_entries(
        cls, entries: Iterable[FlowStateEntry], tau: int = mb(1.0)
    ) -> "FlowSizeDistribution":
        entries = list(entries)
        ids = np.fromiter(
            (e.flow_id for e in entries), dtype=np.int64, count=len(entries)
        )
        cum = np.fromiter(
            (e.cumulative_bytes for e in entries), dtype=np.int64, count=len(entries)
        )
        codes = np.fromiter(
            (CODE_OF_STATE[e.state] for e in entries), dtype=np.int8, count=len(entries)
        )
        return cls.from_columns(ids, cum, codes, tau=tau)

    @classmethod
    def from_sizes(
        cls, sizes: Mapping[int, int], tau: int = mb(1.0)
    ) -> "FlowSizeDistribution":
        """Build from exact per-flow sizes (ground truth / NetFlow)."""
        histogram = [0.0] * HISTOGRAM_BUCKETS
        elephant = 0.0
        mice = 0.0
        states: Dict[int, TernaryState] = {}
        for flow_id, size in sizes.items():
            if size <= 0:
                continue
            if size >= tau:
                elephant += 1.0
                states[flow_id] = TernaryState.ELEPHANT
            else:
                mice += 1.0
                states[flow_id] = TernaryState.MICE
            histogram[_bucket_index(size)] += 1.0
        return cls(
            elephant_weight=elephant,
            mice_weight=mice,
            histogram=tuple(histogram),
            flow_states=states,
        )

    # -- summaries ---------------------------------------------------------

    @property
    def total_flows(self) -> float:
        return self.elephant_weight + self.mice_weight

    def elephant_fraction(self) -> float:
        total = self.total_flows
        return self.elephant_weight / total if total > 0 else 0.0

    def dominant(self) -> Tuple[bool, float]:
        """``(dominant_is_elephant, µ)`` for the guided SA mutation."""
        frac = self.elephant_fraction()
        if frac >= 0.5:
            return True, frac
        return False, 1.0 - frac

    def normalized_histogram(self, epsilon: float = 1e-9) -> Tuple[float, ...]:
        cached = self._norm_cache
        if (
            cached is not None
            and cached[0] is self.histogram
            and cached[1] == epsilon
        ):
            return cached[2]
        total = sum(self.histogram)
        n = len(self.histogram)
        if total <= 0:
            result = tuple([1.0 / n] * n)
        else:
            result = tuple(
                (value + epsilon) / (total + epsilon * n)
                for value in self.histogram
            )
        self._norm_cache = (self.histogram, epsilon, result)
        return result

    # -- comparisons ---------------------------------------------------------

    def classification_accuracy(
        self, truth_labels: Mapping[int, bool]
    ) -> float:
        """Fraction of ground-truth flows whose class we got right.

        ``truth_labels`` maps flow id -> is-elephant by *eventual* flow
        size.  PE counts as elephant-leaning when its likelihood puts
        it over 0.5; flows we never saw count as wrong (NetFlow's
        sampling misses show up here).
        """
        if not truth_labels:
            return 1.0
        correct = 0
        for flow_id, is_elephant in truth_labels.items():
            state = self.flow_states.get(flow_id)
            if state is None:
                continue  # unseen -> wrong
            predicted_elephant = state in (
                TernaryState.ELEPHANT,
                TernaryState.POTENTIAL_ELEPHANT,
            )
            if predicted_elephant == is_elephant:
                correct += 1
        return correct / len(truth_labels)

    def distribution_accuracy(self, truth: "FlowSizeDistribution") -> float:
        """1 − total-variation distance between the two-way splits."""
        p = self.elephant_fraction()
        q = truth.elephant_fraction()
        return 1.0 - abs(p - q)


def kl_divergence(
    current: FlowSizeDistribution,
    previous: FlowSizeDistribution,
    epsilon: float = 1e-9,
) -> float:
    """``KL(R_t || R_{t-1})`` over the size histograms (≥ 0)."""
    p = current.normalized_histogram(epsilon)
    q = previous.normalized_histogram(epsilon)
    return sum(pi * math.log(pi / qi) for pi, qi in zip(p, q) if pi > 0)


def merge_distributions(
    parts: Iterable[FlowSizeDistribution],
) -> FlowSizeDistribution:
    """Aggregate disjoint local FSDs into the network-wide FSD.

    Correct only when each flow is measured at exactly one point —
    which is what the TOS-bit dedup marking guarantees (Keypoint 1).
    Without dedup, overlapping parts double count and the merged
    elephant share inflates (the ablation bench demonstrates this).
    """
    parts = list(parts)
    elephant = 0.0
    mice = 0.0
    states: Dict[int, TernaryState] = {}
    for part in parts:
        elephant += part.elephant_weight
        mice += part.mice_weight
        states.update(part.flow_states)
    if parts:
        # Bucket counts are small integers in float form, so the
        # vectorized column sum is exact and order-independent.
        summed = np.sum(
            np.asarray([part.histogram for part in parts], dtype=float),
            axis=0,
        )
        histogram = tuple(float(v) for v in summed)
    else:
        histogram = tuple([0.0] * HISTOGRAM_BUCKETS)
    return FlowSizeDistribution(
        elephant_weight=elephant,
        mice_weight=mice,
        histogram=histogram,
        flow_states=states,
    )
