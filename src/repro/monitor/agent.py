"""Switch control-plane agents.

Each ToR switch runs an agent that owns the local measurement
structure and, once per monitor interval, turns raw data-plane state
into a local flow-size distribution for the controller:

* :class:`SwitchAgent` — the full Paraleon pipeline: Elastic Sketch in
  the data plane, read-and-reset each interval, sliding-window ternary
  state update in the control plane (Keypoint 2), TOS-dedup insertion
  (Keypoint 1, enforced by the switch datapath).
* :class:`NaiveSketchAgent` — ablation: same sketch, but the naive
  single-interval elephant rule and no control-plane state.
* :class:`NetFlowAgent` — commodity baseline: 1:100 sampling with an
  O(seconds) export interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import env
from repro.monitor.fsd import FlowSizeDistribution
from repro.monitor.states import (
    ColumnarSlidingWindowClassifier,
    SingleIntervalClassifier,
    SlidingWindowClassifier,
)
from repro.telemetry import trace
from repro.simulator.switch import Switch
from repro.simulator.units import mb
from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig
from repro.sketch.netflow import NetFlowConfig, NetFlowMonitor

#: Environment switch for the vectorized monitoring data plane.  Unset
#: or truthy → batched; "0"/"false"/"no"/"off" → scalar per-packet path.
BATCHED_MONITOR_ENV = "REPRO_BATCHED_MONITOR"


def batched_monitor_default() -> bool:
    """Resolve the process-wide default monitoring mode.

    Read at agent construction time (not import time) so tests and the
    CLI can flip the mode per run, and so pool workers inheriting the
    environment resolve the same mode as the parent.
    """
    return env.get(BATCHED_MONITOR_ENV)


@dataclass
class LocalReport:
    """What one switch uploads to the controller each interval."""

    switch_name: str
    fsd: FlowSizeDistribution
    tracked_flows: int
    interval_bytes: int
    batched: bool = False

    def payload_bytes(self) -> int:
        """Approximate on-the-wire size (Table IV accounting).

        Histogram bins (4 B each) + elephant/mice weights (2 × 8 B) +
        header; per-flow state records are summarized, not shipped —
        matching the paper's ~520 B switch→controller transfer.  The
        bin count follows the FSD actually carried, so distributions
        built with custom bucketing are costed correctly.
        """
        return len(self.fsd.histogram) * 4 + 2 * 8 + 16


def _trace_report(report: LocalReport) -> LocalReport:
    """Emit the per-switch upload record when tracing is on."""
    if trace.active:
        trace.event(
            "monitor.report",
            {
                "switch": report.switch_name,
                "tracked_flows": report.tracked_flows,
                "interval_bytes": report.interval_bytes,
                "payload_bytes": report.payload_bytes(),
                "total_flows": report.fsd.total_flows,
                "batched": report.batched,
            },
        )
    return report


class SwitchAgent:
    """Paraleon agent: Elastic Sketch + sliding-window ternary states.

    With ``batched=True`` (the default, via ``REPRO_BATCHED_MONITOR``)
    the whole interval runs columnar: the switch rings observations
    into a preallocated buffer, the sketch is read and reset as flat
    arrays, flow states advance with masked numpy ops, and the FSD is
    summed by the same kernel the scalar path uses — so both modes
    yield bit-identical reports and run digests.
    """

    def __init__(
        self,
        switch: Switch,
        sketch_config: Optional[ElasticSketchConfig] = None,
        tau: int = mb(1.0),
        delta: int = 3,
        dedup_marking: bool = True,
        batched: Optional[bool] = None,
    ):
        self.switch = switch
        self.sketch = ElasticSketch(
            sketch_config
            or ElasticSketchConfig(seed=switch.switch_id)
        )
        self.batched = batched_monitor_default() if batched is None else batched
        if self.batched:
            self.classifier = ColumnarSlidingWindowClassifier(tau=tau, delta=delta)
        else:
            self.classifier = SlidingWindowClassifier(tau=tau, delta=delta)
        self.tau = tau
        switch.measurement = self.sketch
        switch.dedup_marking = dedup_marking
        if self.batched:
            switch.enable_batched_observation()
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        """One monitor interval: read+reset sketch, update states."""
        self.reports_made += 1
        if self.batched:
            self.switch.flush_observations()
            flow_ids, interval_vals = self.sketch.read_and_reset_arrays()
            self.classifier.update_arrays(flow_ids, interval_vals)
            ids, cum, codes = self.classifier.snapshot_columns()
            fsd = FlowSizeDistribution.from_columns(ids, cum, codes, tau=self.tau)
            total_bytes = int(interval_vals.sum()) if interval_vals.size else 0
        else:
            interval_bytes = self.sketch.read_and_reset()
            self.classifier.update(interval_bytes)
            fsd = FlowSizeDistribution.from_entries(
                self.classifier.flows.values(), tau=self.tau
            )
            total_bytes = sum(interval_bytes.values())
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(self.classifier),
                interval_bytes=total_bytes,
                batched=self.batched,
            )
        )


class NaiveSketchAgent:
    """Ablation: Elastic Sketch with single-interval classification."""

    def __init__(
        self,
        switch: Switch,
        sketch_config: Optional[ElasticSketchConfig] = None,
        tau: int = mb(1.0),
        dedup_marking: bool = True,
    ):
        self.switch = switch
        self.sketch = ElasticSketch(
            sketch_config or ElasticSketchConfig(seed=switch.switch_id)
        )
        self.classifier = SingleIntervalClassifier(tau=tau)
        self.tau = tau
        switch.measurement = self.sketch
        switch.dedup_marking = dedup_marking
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        interval_bytes = self.sketch.read_and_reset()
        self.classifier.update(interval_bytes)
        fsd = FlowSizeDistribution.from_entries(
            self.classifier.flows.values(), tau=self.tau
        )
        self.reports_made += 1
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(self.classifier),
                interval_bytes=sum(interval_bytes.values()),
            )
        )


class NetFlowAgent:
    """Commodity-switch baseline: sampled records, slow export."""

    def __init__(
        self,
        switch: Switch,
        config: Optional[NetFlowConfig] = None,
        tau: int = mb(1.0),
    ):
        self.switch = switch
        self.monitor = NetFlowMonitor(
            config or NetFlowConfig(seed=switch.switch_id)
        )
        self.tau = tau
        switch.measurement = self.monitor
        # NetFlow has no notion of the TOS protocol; every switch on
        # the path samples independently.
        switch.dedup_marking = False
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        sizes = self.monitor.maybe_export(now)
        fsd = FlowSizeDistribution.from_sizes(sizes, tau=self.tau)
        self.reports_made += 1
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(sizes),
                interval_bytes=sum(sizes.values()),
            )
        )
