"""Switch control-plane agents.

Each ToR switch runs an agent that owns the local measurement
structure and, once per monitor interval, turns raw data-plane state
into a local flow-size distribution for the controller:

* :class:`SwitchAgent` — the full Paraleon pipeline: Elastic Sketch in
  the data plane, read-and-reset each interval, sliding-window ternary
  state update in the control plane (Keypoint 2), TOS-dedup insertion
  (Keypoint 1, enforced by the switch datapath).
* :class:`NaiveSketchAgent` — ablation: same sketch, but the naive
  single-interval elephant rule and no control-plane state.
* :class:`NetFlowAgent` — commodity baseline: 1:100 sampling with an
  O(seconds) export interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.monitor.fsd import FlowSizeDistribution
from repro.monitor.states import (
    SingleIntervalClassifier,
    SlidingWindowClassifier,
)
from repro.telemetry import trace
from repro.simulator.switch import Switch
from repro.simulator.units import mb
from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig
from repro.sketch.netflow import NetFlowConfig, NetFlowMonitor


@dataclass
class LocalReport:
    """What one switch uploads to the controller each interval."""

    switch_name: str
    fsd: FlowSizeDistribution
    tracked_flows: int
    interval_bytes: int

    def payload_bytes(self) -> int:
        """Approximate on-the-wire size (Table IV accounting).

        Histogram (31 × 4 B) + elephant/mice weights (2 × 8 B) +
        per-flow state records are summarized, not shipped — matching
        the paper's ~520 B switch→controller transfer.
        """
        return 31 * 4 + 2 * 8 + 16


def _trace_report(report: LocalReport) -> LocalReport:
    """Emit the per-switch upload record when tracing is on."""
    if trace.active:
        trace.event(
            "monitor.report",
            {
                "switch": report.switch_name,
                "tracked_flows": report.tracked_flows,
                "interval_bytes": report.interval_bytes,
                "payload_bytes": report.payload_bytes(),
                "total_flows": report.fsd.total_flows,
            },
        )
    return report


class SwitchAgent:
    """Paraleon agent: Elastic Sketch + sliding-window ternary states."""

    def __init__(
        self,
        switch: Switch,
        sketch_config: Optional[ElasticSketchConfig] = None,
        tau: int = mb(1.0),
        delta: int = 3,
        dedup_marking: bool = True,
    ):
        self.switch = switch
        self.sketch = ElasticSketch(
            sketch_config
            or ElasticSketchConfig(seed=switch.switch_id)
        )
        self.classifier = SlidingWindowClassifier(tau=tau, delta=delta)
        self.tau = tau
        switch.measurement = self.sketch
        switch.dedup_marking = dedup_marking
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        """One monitor interval: read+reset sketch, update states."""
        interval_bytes = self.sketch.read_and_reset()
        self.classifier.update(interval_bytes)
        fsd = FlowSizeDistribution.from_entries(
            self.classifier.flows.values(), tau=self.tau
        )
        self.reports_made += 1
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(self.classifier),
                interval_bytes=sum(interval_bytes.values()),
            )
        )


class NaiveSketchAgent:
    """Ablation: Elastic Sketch with single-interval classification."""

    def __init__(
        self,
        switch: Switch,
        sketch_config: Optional[ElasticSketchConfig] = None,
        tau: int = mb(1.0),
        dedup_marking: bool = True,
    ):
        self.switch = switch
        self.sketch = ElasticSketch(
            sketch_config or ElasticSketchConfig(seed=switch.switch_id)
        )
        self.classifier = SingleIntervalClassifier(tau=tau)
        self.tau = tau
        switch.measurement = self.sketch
        switch.dedup_marking = dedup_marking
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        interval_bytes = self.sketch.read_and_reset()
        self.classifier.update(interval_bytes)
        fsd = FlowSizeDistribution.from_entries(
            self.classifier.flows.values(), tau=self.tau
        )
        self.reports_made += 1
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(self.classifier),
                interval_bytes=sum(interval_bytes.values()),
            )
        )


class NetFlowAgent:
    """Commodity-switch baseline: sampled records, slow export."""

    def __init__(
        self,
        switch: Switch,
        config: Optional[NetFlowConfig] = None,
        tau: int = mb(1.0),
    ):
        self.switch = switch
        self.monitor = NetFlowMonitor(
            config or NetFlowConfig(seed=switch.switch_id)
        )
        self.tau = tau
        switch.measurement = self.monitor
        # NetFlow has no notion of the TOS protocol; every switch on
        # the path samples independently.
        switch.dedup_marking = False
        self.reports_made = 0

    def collect(self, now: float) -> LocalReport:
        sizes = self.monitor.maybe_export(now)
        fsd = FlowSizeDistribution.from_sizes(sizes, tau=self.tau)
        self.reports_made += 1
        return _trace_report(
            LocalReport(
                switch_name=self.switch.name,
                fsd=fsd,
                tracked_flows=len(sizes),
                interval_bytes=sum(sizes.values()),
            )
        )
