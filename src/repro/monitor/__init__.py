"""Paraleon's Runtime Metric Monitor.

Layered flow-size-distribution measurement: Elastic Sketches in switch
data planes, sliding-window ternary state tracking in switch control
planes, and network-wide aggregation plus KL-divergence change
detection at the centralized controller.
"""

from repro.monitor.states import (
    TernaryState,
    FlowStateEntry,
    SlidingWindowClassifier,
)
from repro.monitor.fsd import FlowSizeDistribution, kl_divergence
from repro.monitor.agent import SwitchAgent, LocalReport, NetFlowAgent, NaiveSketchAgent
from repro.monitor.aggregate import FsdAggregator

__all__ = [
    "TernaryState",
    "FlowStateEntry",
    "SlidingWindowClassifier",
    "FlowSizeDistribution",
    "kl_divergence",
    "SwitchAgent",
    "LocalReport",
    "NetFlowAgent",
    "NaiveSketchAgent",
    "FsdAggregator",
]
