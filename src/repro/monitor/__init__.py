"""Paraleon's Runtime Metric Monitor.

Layered flow-size-distribution measurement: Elastic Sketches in switch
data planes, sliding-window ternary state tracking in switch control
planes, and network-wide aggregation plus KL-divergence change
detection at the centralized controller.
"""

from repro.monitor.states import (
    TernaryState,
    FlowStateEntry,
    SlidingWindowClassifier,
    ColumnarSlidingWindowClassifier,
)
from repro.monitor.fsd import FlowSizeDistribution, kl_divergence
from repro.monitor.agent import (
    SwitchAgent,
    LocalReport,
    NetFlowAgent,
    NaiveSketchAgent,
    batched_monitor_default,
)
from repro.monitor.aggregate import FsdAggregator

__all__ = [
    "TernaryState",
    "FlowStateEntry",
    "SlidingWindowClassifier",
    "ColumnarSlidingWindowClassifier",
    "batched_monitor_default",
    "FlowSizeDistribution",
    "kl_divergence",
    "SwitchAgent",
    "LocalReport",
    "NetFlowAgent",
    "NaiveSketchAgent",
    "FsdAggregator",
]
