"""Ternary flow states updated by a sliding window (Fig. 3 / Fig. 4).

Naive Elastic Sketch classifies a flow from a *single* monitor
interval: anything that moved less than the elephant threshold ``τ``
within one ``λ_MI`` looks like a mouse — including a congested
elephant crawling at low rate, or an elephant that arrived just before
the sketch reset.  Paraleon fixes this with:

* a third state, **potential elephant** (PE): a flow below ``τ`` that
  has stayed *active* (positive bytes) for at least ``δ`` consecutive
  monitor intervals;
* a sliding window of the last ``δ`` intervals' byte counts per flow,
  so state transitions use history instead of one sample.

Transition rules (Fig. 3):

1. ``Φ(f) ≥ τ``                          → **E** (elephant);
2. ``Φ(f) < τ`` but active ≥ δ intervals → **PE**;
3. otherwise                              → **M** (mice).

``Φ(f)`` is the flow's aggregated bytes since it started being
tracked.  A PE flow whose window gains a zero-activity interval falls
back to M (rule 2 no longer holds), and a flow silent for ``δ``
consecutive intervals is expired (it finished — like ``f₃`` in
Fig. 4).  Each PE flow contributes to the FSD proportionally to its
estimated likelihood of becoming an elephant, which we approximate as
``min(1, Φ(f)/τ)`` — it refines toward 1 as more intervals elapse,
matching the paper's description.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Tuple

import numpy as np

from repro.simulator.units import mb


class TernaryState(enum.Enum):
    MICE = "M"
    POTENTIAL_ELEPHANT = "PE"
    ELEPHANT = "E"


#: Integer codes for the ternary states in columnar storage.
CODE_MICE, CODE_PE, CODE_ELEPHANT = 0, 1, 2
STATE_OF_CODE = {
    CODE_MICE: TernaryState.MICE,
    CODE_PE: TernaryState.POTENTIAL_ELEPHANT,
    CODE_ELEPHANT: TernaryState.ELEPHANT,
}
CODE_OF_STATE = {state: code for code, state in STATE_OF_CODE.items()}


@dataclass
class FlowStateEntry:
    """Tracked per-flow monitoring state."""

    flow_id: int
    state: TernaryState
    cumulative_bytes: int                   # Φ(f)
    window: Deque[int] = field(default_factory=deque)
    active_streak: int = 0                  # consecutive active intervals
    idle_streak: int = 0                    # consecutive silent intervals
    intervals_seen: int = 0

    def elephant_likelihood(self, tau: int) -> float:
        """Estimated probability this flow ends up an elephant."""
        if self.state is TernaryState.ELEPHANT:
            return 1.0
        if self.state is TernaryState.MICE:
            return 0.0
        return min(1.0, self.cumulative_bytes / tau)


class SlidingWindowClassifier:
    """Per-switch control-plane flow state tracker.

    Call :meth:`update` once per monitor interval with the byte counts
    read (and reset) from the local sketch; it returns the current
    state table.  ``τ`` defaults to 1 MB and ``δ`` to 3, per Table III.
    """

    def __init__(self, tau: int = mb(1.0), delta: int = 3):
        if tau <= 0:
            raise ValueError("tau must be positive")
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.tau = tau
        self.delta = delta
        self.flows: Dict[int, FlowStateEntry] = {}
        self.expired_total = 0

    def update(self, interval_bytes: Mapping[int, int]) -> Dict[int, FlowStateEntry]:
        """Advance one monitor interval.

        ``interval_bytes`` maps flow id -> bytes observed this interval
        (flows absent from the mapping transmitted nothing).
        """
        # New flows enter tracking.
        for flow_id in interval_bytes:
            if flow_id not in self.flows and interval_bytes[flow_id] > 0:
                self.flows[flow_id] = FlowStateEntry(
                    flow_id=flow_id,
                    state=TernaryState.MICE,
                    cumulative_bytes=0,
                )

        expired = []
        for flow_id, entry in self.flows.items():
            nbytes = int(interval_bytes.get(flow_id, 0))
            entry.intervals_seen += 1
            entry.cumulative_bytes += nbytes
            entry.window.append(nbytes)
            if len(entry.window) > self.delta:
                entry.window.popleft()
            if nbytes > 0:
                entry.active_streak += 1
                entry.idle_streak = 0
            else:
                entry.active_streak = 0
                entry.idle_streak += 1
                if entry.idle_streak >= self.delta:
                    expired.append(flow_id)
                    continue
            entry.state = self._classify(entry)

        for flow_id in expired:
            del self.flows[flow_id]
        self.expired_total += len(expired)
        return self.flows

    def _classify(self, entry: FlowStateEntry) -> TernaryState:
        if entry.cumulative_bytes >= self.tau:
            return TernaryState.ELEPHANT
        if entry.active_streak >= self.delta:
            return TernaryState.POTENTIAL_ELEPHANT
        return TernaryState.MICE

    # -- summaries -------------------------------------------------------

    def state_counts(self) -> Dict[TernaryState, int]:
        counts = {state: 0 for state in TernaryState}
        for entry in self.flows.values():
            counts[entry.state] += 1
        return counts

    def elephant_weight(self) -> float:
        """Expected number of elephants among tracked flows."""
        return sum(e.elephant_likelihood(self.tau) for e in self.flows.values())

    def __len__(self) -> int:
        return len(self.flows)


class ColumnarSlidingWindowClassifier:
    """Struct-of-arrays twin of :class:`SlidingWindowClassifier`.

    Holds the flow table as parallel numpy columns (id, Φ, streaks,
    state code, sliding window) keyed by an id→row dict with a free
    list, so a monitor interval is a handful of masked array ops
    instead of a Python loop over dataclasses.  Semantics are exactly
    the scalar classifier's: same admission rule (new flows only when
    they moved bytes this interval, in mapping order), same streak and
    expiry arithmetic, same ``Φ ≥ τ`` / ``active ≥ δ`` transitions.
    :meth:`snapshot_columns` emits rows in tracking-insertion order —
    the same order the scalar ``flows`` dict iterates — so downstream
    float reductions (FSD weights) see identical operand sequences and
    produce bit-identical results.
    """

    _GROW_FACTOR = 2

    def __init__(self, tau: int = mb(1.0), delta: int = 3, capacity: int = 256):
        if tau <= 0:
            raise ValueError("tau must be positive")
        if delta < 1:
            raise ValueError("delta must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.tau = tau
        self.delta = delta
        self.expired_total = 0
        self._capacity = capacity
        self._flow_id = np.full(capacity, -1, dtype=np.int64)
        self._cum = np.zeros(capacity, dtype=np.int64)
        self._active = np.zeros(capacity, dtype=np.int64)
        self._idle = np.zeros(capacity, dtype=np.int64)
        self._seen = np.zeros(capacity, dtype=np.int64)
        self._state = np.zeros(capacity, dtype=np.int8)
        self._seq = np.zeros(capacity, dtype=np.int64)
        self._window = np.zeros((capacity, delta), dtype=np.int64)
        self._row_of: Dict[int, int] = {}
        # Pop order makes rows fill 0, 1, 2, ... — not semantically
        # required (snapshots sort by seq) but keeps layouts reproducible.
        self._free = list(range(capacity - 1, -1, -1))
        self._next_seq = 0

    # -- row management --------------------------------------------------

    def _grow(self) -> None:
        old = self._capacity
        new = old * self._GROW_FACTOR
        for name in ("_flow_id", "_cum", "_active", "_idle", "_seen", "_state", "_seq"):
            col = getattr(self, name)
            grown = np.full(new, -1, dtype=col.dtype) if name == "_flow_id" else np.zeros(new, dtype=col.dtype)
            grown[:old] = col
            setattr(self, name, grown)
        window = np.zeros((new, self.delta), dtype=np.int64)
        window[:old] = self._window
        self._window = window
        self._free.extend(range(new - 1, old - 1, -1))
        self._capacity = new

    def _alloc_row(self, flow_id: int) -> int:
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._flow_id[row] = flow_id
        self._cum[row] = 0
        self._active[row] = 0
        self._idle[row] = 0
        self._seen[row] = 0
        self._state[row] = CODE_MICE
        self._seq[row] = self._next_seq
        self._next_seq += 1
        self._window[row, :] = 0
        self._row_of[flow_id] = row
        return row

    # -- interval update -------------------------------------------------

    def update_arrays(self, flow_ids: np.ndarray, interval_bytes: np.ndarray) -> None:
        """Advance one monitor interval from columnar sketch output.

        ``flow_ids`` must be unique (a sketch read yields each flow at
        most once); ``interval_bytes`` are this interval's byte counts.
        Flows absent from ``flow_ids`` transmitted nothing.
        """
        ids = np.asarray(flow_ids, dtype=np.int64)
        vals = np.asarray(interval_bytes, dtype=np.int64)
        row_of = self._row_of
        # Admission in mapping order, mirroring the scalar dict walk.
        for flow_id, nbytes in zip(ids.tolist(), vals.tolist()):
            if nbytes > 0 and flow_id not in row_of:
                self._alloc_row(flow_id)

        occ = np.flatnonzero(self._flow_id >= 0)
        if occ.size == 0:
            return

        # Scatter this interval's bytes onto tracked rows; untracked
        # zero-byte flows in the input never get a row (scalar rule).
        per_row = np.zeros(self._capacity, dtype=np.int64)
        rows = np.fromiter(
            (row_of.get(fid, -1) for fid in ids.tolist()), dtype=np.int64, count=ids.size
        )
        tracked = rows >= 0
        per_row[rows[tracked]] = vals[tracked]

        nb = per_row[occ]
        self._seen[occ] += 1
        self._cum[occ] += nb
        self._window[occ, (self._seen[occ] - 1) % self.delta] = nb

        was_active = nb > 0
        self._active[occ] = np.where(was_active, self._active[occ] + 1, 0)
        self._idle[occ] = np.where(was_active, 0, self._idle[occ] + 1)

        expiring = ~was_active & (self._idle[occ] >= self.delta)
        survivors = occ[~expiring]
        self._state[survivors] = np.where(
            self._cum[survivors] >= self.tau,
            CODE_ELEPHANT,
            np.where(self._active[survivors] >= self.delta, CODE_PE, CODE_MICE),
        ).astype(np.int8)

        dead = occ[expiring]
        if dead.size:
            for row in dead.tolist():
                del row_of[int(self._flow_id[row])]
                self._flow_id[row] = -1
            self._free.extend(dead.tolist())
            self.expired_total += int(dead.size)

    def update(self, interval_bytes: Mapping[int, int]) -> None:
        """Mapping-based convenience wrapper (tests / ablations)."""
        ids = np.fromiter(interval_bytes.keys(), dtype=np.int64, count=len(interval_bytes))
        vals = np.fromiter(interval_bytes.values(), dtype=np.int64, count=len(interval_bytes))
        self.update_arrays(ids, vals)

    # -- snapshots -------------------------------------------------------

    def _ordered_rows(self) -> np.ndarray:
        occ = np.flatnonzero(self._flow_id >= 0)
        return occ[np.argsort(self._seq[occ], kind="stable")]

    def snapshot_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(flow_ids, cumulative_bytes, state_codes) in tracking order."""
        rows = self._ordered_rows()
        return self._flow_id[rows], self._cum[rows], self._state[rows]

    def entries(self) -> Dict[int, FlowStateEntry]:
        """Materialize scalar-style entries (test / ablation path only)."""
        out: Dict[int, FlowStateEntry] = {}
        for row in self._ordered_rows().tolist():
            seen = int(self._seen[row])
            length = min(seen, self.delta)
            window: Deque[int] = deque()
            for i in range(length):
                window.append(int(self._window[row, (seen - length + i) % self.delta]))
            out[int(self._flow_id[row])] = FlowStateEntry(
                flow_id=int(self._flow_id[row]),
                state=STATE_OF_CODE[int(self._state[row])],
                cumulative_bytes=int(self._cum[row]),
                window=window,
                active_streak=int(self._active[row]),
                idle_streak=int(self._idle[row]),
                intervals_seen=seen,
            )
        return out

    @property
    def flows(self) -> Dict[int, FlowStateEntry]:
        return self.entries()

    def state_counts(self) -> Dict[TernaryState, int]:
        occ = self._flow_id >= 0
        return {
            state: int(np.count_nonzero(occ & (self._state == code)))
            for code, state in STATE_OF_CODE.items()
        }

    def elephant_weight(self) -> float:
        rows = self._ordered_rows()
        codes = self._state[rows]
        likelihood = np.where(
            codes == CODE_ELEPHANT,
            1.0,
            np.where(codes == CODE_MICE, 0.0, np.minimum(1.0, self._cum[rows] / self.tau)),
        )
        # Sequential sum in tracking order — bit-identical to the scalar
        # classifier's generator sum over the same operand sequence.
        return float(sum(likelihood.tolist()))

    def __len__(self) -> int:
        return len(self._row_of)


class SingleIntervalClassifier:
    """The naive Elastic Sketch classification rule (ablation arm).

    A flow is an elephant iff it moved ``τ`` bytes *within one monitor
    interval* — exactly the behaviour Keypoint 2 criticises.  Exposes
    the same surface as :class:`SlidingWindowClassifier` so agents can
    swap one for the other.
    """

    def __init__(self, tau: int = mb(1.0), delta: int = 3):
        self.tau = tau
        self.delta = delta  # unused; kept for interface parity
        self.flows: Dict[int, FlowStateEntry] = {}

    def update(self, interval_bytes: Mapping[int, int]) -> Dict[int, FlowStateEntry]:
        self.flows = {}
        for flow_id, nbytes in interval_bytes.items():
            if nbytes <= 0:
                continue
            state = (
                TernaryState.ELEPHANT if nbytes >= self.tau else TernaryState.MICE
            )
            self.flows[flow_id] = FlowStateEntry(
                flow_id=flow_id,
                state=state,
                cumulative_bytes=int(nbytes),
                active_streak=1,
                intervals_seen=1,
            )
        return self.flows

    def state_counts(self) -> Dict[TernaryState, int]:
        counts = {state: 0 for state in TernaryState}
        for entry in self.flows.values():
            counts[entry.state] += 1
        return counts

    def elephant_weight(self) -> float:
        return sum(e.elephant_likelihood(self.tau) for e in self.flows.values())

    def __len__(self) -> int:
        return len(self.flows)
