"""Ternary flow states updated by a sliding window (Fig. 3 / Fig. 4).

Naive Elastic Sketch classifies a flow from a *single* monitor
interval: anything that moved less than the elephant threshold ``τ``
within one ``λ_MI`` looks like a mouse — including a congested
elephant crawling at low rate, or an elephant that arrived just before
the sketch reset.  Paraleon fixes this with:

* a third state, **potential elephant** (PE): a flow below ``τ`` that
  has stayed *active* (positive bytes) for at least ``δ`` consecutive
  monitor intervals;
* a sliding window of the last ``δ`` intervals' byte counts per flow,
  so state transitions use history instead of one sample.

Transition rules (Fig. 3):

1. ``Φ(f) ≥ τ``                          → **E** (elephant);
2. ``Φ(f) < τ`` but active ≥ δ intervals → **PE**;
3. otherwise                              → **M** (mice).

``Φ(f)`` is the flow's aggregated bytes since it started being
tracked.  A PE flow whose window gains a zero-activity interval falls
back to M (rule 2 no longer holds), and a flow silent for ``δ``
consecutive intervals is expired (it finished — like ``f₃`` in
Fig. 4).  Each PE flow contributes to the FSD proportionally to its
estimated likelihood of becoming an elephant, which we approximate as
``min(1, Φ(f)/τ)`` — it refines toward 1 as more intervals elapse,
matching the paper's description.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping

from repro.simulator.units import mb


class TernaryState(enum.Enum):
    MICE = "M"
    POTENTIAL_ELEPHANT = "PE"
    ELEPHANT = "E"


@dataclass
class FlowStateEntry:
    """Tracked per-flow monitoring state."""

    flow_id: int
    state: TernaryState
    cumulative_bytes: int                   # Φ(f)
    window: Deque[int] = field(default_factory=deque)
    active_streak: int = 0                  # consecutive active intervals
    idle_streak: int = 0                    # consecutive silent intervals
    intervals_seen: int = 0

    def elephant_likelihood(self, tau: int) -> float:
        """Estimated probability this flow ends up an elephant."""
        if self.state is TernaryState.ELEPHANT:
            return 1.0
        if self.state is TernaryState.MICE:
            return 0.0
        return min(1.0, self.cumulative_bytes / tau)


class SlidingWindowClassifier:
    """Per-switch control-plane flow state tracker.

    Call :meth:`update` once per monitor interval with the byte counts
    read (and reset) from the local sketch; it returns the current
    state table.  ``τ`` defaults to 1 MB and ``δ`` to 3, per Table III.
    """

    def __init__(self, tau: int = mb(1.0), delta: int = 3):
        if tau <= 0:
            raise ValueError("tau must be positive")
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.tau = tau
        self.delta = delta
        self.flows: Dict[int, FlowStateEntry] = {}
        self.expired_total = 0

    def update(self, interval_bytes: Mapping[int, int]) -> Dict[int, FlowStateEntry]:
        """Advance one monitor interval.

        ``interval_bytes`` maps flow id -> bytes observed this interval
        (flows absent from the mapping transmitted nothing).
        """
        # New flows enter tracking.
        for flow_id in interval_bytes:
            if flow_id not in self.flows and interval_bytes[flow_id] > 0:
                self.flows[flow_id] = FlowStateEntry(
                    flow_id=flow_id,
                    state=TernaryState.MICE,
                    cumulative_bytes=0,
                )

        expired = []
        for flow_id, entry in self.flows.items():
            nbytes = int(interval_bytes.get(flow_id, 0))
            entry.intervals_seen += 1
            entry.cumulative_bytes += nbytes
            entry.window.append(nbytes)
            if len(entry.window) > self.delta:
                entry.window.popleft()
            if nbytes > 0:
                entry.active_streak += 1
                entry.idle_streak = 0
            else:
                entry.active_streak = 0
                entry.idle_streak += 1
                if entry.idle_streak >= self.delta:
                    expired.append(flow_id)
                    continue
            entry.state = self._classify(entry)

        for flow_id in expired:
            del self.flows[flow_id]
        self.expired_total += len(expired)
        return self.flows

    def _classify(self, entry: FlowStateEntry) -> TernaryState:
        if entry.cumulative_bytes >= self.tau:
            return TernaryState.ELEPHANT
        if entry.active_streak >= self.delta:
            return TernaryState.POTENTIAL_ELEPHANT
        return TernaryState.MICE

    # -- summaries -------------------------------------------------------

    def state_counts(self) -> Dict[TernaryState, int]:
        counts = {state: 0 for state in TernaryState}
        for entry in self.flows.values():
            counts[entry.state] += 1
        return counts

    def elephant_weight(self) -> float:
        """Expected number of elephants among tracked flows."""
        return sum(e.elephant_likelihood(self.tau) for e in self.flows.values())

    def __len__(self) -> int:
        return len(self.flows)


class SingleIntervalClassifier:
    """The naive Elastic Sketch classification rule (ablation arm).

    A flow is an elephant iff it moved ``τ`` bytes *within one monitor
    interval* — exactly the behaviour Keypoint 2 criticises.  Exposes
    the same surface as :class:`SlidingWindowClassifier` so agents can
    swap one for the other.
    """

    def __init__(self, tau: int = mb(1.0), delta: int = 3):
        self.tau = tau
        self.delta = delta  # unused; kept for interface parity
        self.flows: Dict[int, FlowStateEntry] = {}

    def update(self, interval_bytes: Mapping[int, int]) -> Dict[int, FlowStateEntry]:
        self.flows = {}
        for flow_id, nbytes in interval_bytes.items():
            if nbytes <= 0:
                continue
            state = (
                TernaryState.ELEPHANT if nbytes >= self.tau else TernaryState.MICE
            )
            self.flows[flow_id] = FlowStateEntry(
                flow_id=flow_id,
                state=state,
                cumulative_bytes=int(nbytes),
                active_streak=1,
                intervals_seen=1,
            )
        return self.flows

    def state_counts(self) -> Dict[TernaryState, int]:
        counts = {state: 0 for state in TernaryState}
        for entry in self.flows.values():
            counts[entry.state] += 1
        return counts

    def elephant_weight(self) -> float:
        return sum(e.elephant_likelihood(self.tau) for e in self.flows.values())

    def __len__(self) -> int:
        return len(self.flows)
