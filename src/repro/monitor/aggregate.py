"""Network-wide FSD aggregation at the centralized controller.

The layered design of Fig. 2: each ToR agent computes a *local* flow
size distribution; the controller merges them into the network-wide
distribution.  With TOS-dedup marking each flow is measured at exactly
one switch, so the merge is a plain union — this is what keeps the
controller's compute and the switch→controller transfer small
(Table IV).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.monitor.agent import LocalReport
from repro.monitor.fsd import (
    FlowSizeDistribution,
    kl_divergence,
    merge_distributions,
)
from repro.telemetry import trace


class FsdAggregator:
    """Collects local reports and maintains the network-wide FSD."""

    def __init__(self, agents: Sequence[object]):
        if not agents:
            raise ValueError("need at least one monitoring agent")
        self.agents = list(agents)
        self.current: Optional[FlowSizeDistribution] = None
        self.previous: Optional[FlowSizeDistribution] = None
        self.last_reports: List[LocalReport] = []
        self.collections = 0

    def collect(self, now: float) -> FlowSizeDistribution:
        """One monitor interval: gather and merge all local FSDs."""
        self.last_reports = [agent.collect(now) for agent in self.agents]
        merged = merge_distributions(report.fsd for report in self.last_reports)
        self.previous = self.current
        self.current = merged
        self.collections += 1
        if trace.active:
            trace.event(
                "monitor.fsd_upload",
                {
                    "t": now,
                    "agents": len(self.agents),
                    "payload_bytes": self.upload_bytes_per_interval(),
                    "total_flows": merged.total_flows,
                    "elephant_fraction": merged.elephant_fraction(),
                },
            )
        return merged

    def kl_from_previous(self) -> float:
        """``KL(R_t, R_{t-1})``; 0 until two intervals have been seen."""
        if self.current is None or self.previous is None:
            return 0.0
        return kl_divergence(self.current, self.previous)

    def upload_bytes_per_interval(self) -> int:
        """Total switch→controller transfer per interval (Table IV)."""
        return sum(report.payload_bytes() for report in self.last_reports)
