"""Hybrid flow/packet engine: fluid elephants over packet-level mice.

The pure DES charges one event per packet per hop, so long-lived
elephants — which carry most bytes but need the least per-packet
fidelity — dominate the heap.  This module moves them to a flow-level
fast path built from the same DCQCN fluid equations the surrogate
integrates (:func:`repro.simulator.fluid.fluid_rate_step`), while
mice, queue occupancy, ECN marking of packet traffic, and PFC stay at
packet level.

Engine modes (``REPRO_HYBRID_ENGINE`` / ``--hybrid-engine``):

* ``off`` — pure DES.  Digest-identical to the seed behaviour; the
  default, and what Tier-1 and the eval cache run against.
* ``lanes`` — scalar per-QP DCQCN timers are replaced by the
  vectorized :class:`~repro.simulator.dcqcn.DcqcnLaneBank`.  Same
  arithmetic, same per-packet interface; run digests are bit-identical
  (the ``REPRO_BATCHED_MONITOR`` gating pattern).
* ``hybrid`` — ``lanes`` plus the fluid fast path for flows at or
  above ``elephant_threshold``.  Approximate: utilities must land
  within the committed band, digests are *not* comparable.

Sync-point model: every ``sync_interval`` the fluid plane integrates
its lanes (internally sub-stepped at the surrogate's ``DEFAULT_DT``
for Euler stability) and then *publishes* into the packet world —
per-edge virtual queue depths onto each traversed
:class:`~repro.simulator.link.QueuedEgress` (``virtual_bytes``, which
the switch adds to its ECN marking depth so packet-level mice see the
elephants' load), transmitted bytes onto host egress counters and the
stats collector (so ``O_TP`` and the oracle FSD see fluid traffic),
and synthetic RTT probe samples along fluid paths (so ``O_RTT``
reflects fluid queueing).  PFC for fluid flows is approximated by
capacity capping — fluid senders never emit XOFF, which is the main
documented fidelity gap of ``hybrid`` mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro import env
from repro.simulator.engine import EventHandle
from repro.simulator.fluid import (
    DEFAULT_DT,
    _param_arrays,
    fluid_rate_cols,
    fluid_rate_step,
)
from repro.simulator.flow import Flow
from repro.simulator.units import HEADER_BYTES, mb, us
from repro.telemetry import trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.network import Network

#: Environment knob / CLI flag selecting the engine mode.
HYBRID_ENGINE_ENV = "REPRO_HYBRID_ENGINE"

#: QP-count floor below which ``lanes`` falls back to ``off``.
LANES_MIN_QPS_ENV = "REPRO_LANES_MIN_QPS"

#: Recognized engine modes, least to most approximate.
HYBRID_MODES = ("off", "lanes", "hybrid")


def resolve_hybrid_mode(mode: Optional[str] = None) -> str:
    """Effective engine mode: explicit argument beats the environment."""
    if mode is None:
        mode = env.get(HYBRID_ENGINE_ENV)
    if mode not in HYBRID_MODES:
        raise ValueError(
            f"hybrid engine mode must be one of {HYBRID_MODES}, got {mode!r}"
        )
    return mode


def lanes_floor(mode: str, expected_qps: Optional[int]) -> str:
    """Resolve ``lanes`` down to ``off`` for tiny QP populations.

    The lane bank's batched rate-update arithmetic only pays for itself
    once enough QPs share a coalesced timer deadline; on small fabrics
    the numpy dispatch overhead loses to the scalar path (BENCH
    measured ``lanes_speedup = 0.92`` on a 16-worker alltoall).  Below
    ``REPRO_LANES_MIN_QPS`` expected concurrent QPs the requested
    ``lanes`` mode is resolved to ``off`` — invisible to results, since
    the two modes are digest-identical by construction.  An unknown
    population (``expected_qps is None``) keeps the requested mode, as
    does any mode other than ``lanes``.
    """
    if mode != "lanes" or expected_qps is None:
        return mode
    threshold = env.get(LANES_MIN_QPS_ENV)
    if expected_qps >= threshold:
        return mode
    if trace.active:
        trace.event(
            "engine.lanes_fallback",
            {"expected_qps": expected_qps, "threshold": threshold},
        )
    return "off"


@dataclass(frozen=True)
class HybridConfig:
    """Static configuration of the fluid fast path."""

    #: Interval between fluid->packet sync points.  One engine event
    #: per interval replaces ~BDP packet events per elephant.
    sync_interval: float = us(50.0)
    #: Flows at/above this size take the fluid path in ``hybrid`` mode.
    elephant_threshold: int = mb(1.0)

    def validate(self) -> None:
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        if self.elephant_threshold <= 0:
            raise ValueError("elephant_threshold must be positive")


class _Edge:
    """One traversed egress: capacity plus (for switch ports) the
    virtual queue the fluid plane publishes into ECN marking."""

    __slots__ = ("egress", "capacity", "switch", "vq", "buffer_bytes")

    def __init__(self, egress, capacity: float, switch=None):
        self.egress = egress
        self.capacity = capacity
        self.switch = switch          # None for host uplinks (no marking)
        self.vq = 0.0                 # virtual queue depth (bytes)
        self.buffer_bytes = (
            float(switch.config.buffer_bytes) if switch is not None else 0.0
        )


class FluidFlowLanes:
    """Flow-level fast path: elephants as DCQCN fluid lanes.

    One lane per active fluid flow; per-lane rate state advances with
    :func:`fluid_rate_step` against ECN marking probabilities computed
    from the *combined* (packet + virtual) depth of every switch egress
    the flow traverses, using each owner switch's live parameters — so
    controller dispatches steer fluid flows exactly like packet flows.
    """

    def __init__(self, network: "Network", config: Optional[HybridConfig] = None):
        self.network = network
        self.config = config or HybridConfig()
        self.config.validate()
        self.sim = network.sim

        # Per-lane state (parallel arrays; order = insertion).
        self._flows: List[Flow] = []
        self.rc = np.zeros(0)
        self.rt = np.zeros(0)
        self.alpha = np.zeros(0)
        self.byte_stage = np.zeros(0)
        self.time_stage = np.zeros(0)
        self.incr_iter = np.zeros(0)
        self.line_rate = np.zeros(0)
        self._wire_f = np.zeros(0)        # cumulative wire bytes (float)
        self._sent_f = np.zeros(0)        # cumulative payload bytes (float)
        self._wire_int: List[int] = []    # wire bytes already published
        self._sent_int: List[int] = []    # payload bytes already published

        # Edge registry and flattened flow->edge incidence.
        self._edges: List[_Edge] = []
        self._edge_of: Dict[int, int] = {}      # id(egress) -> edge index
        self._flow_edges: List[List[int]] = []  # per lane, edge indices
        self._use_flow = np.zeros(0, dtype=np.intp)   # flattened incidence
        self._use_edge = np.zeros(0, dtype=np.intp)
        self._topo_dirty = True
        # Static per-edge columns, rebuilt only on topology changes;
        # the sync loop must not rebuild arrays per step.
        self._cap = np.zeros(0)
        self._markable = np.zeros(0, dtype=bool)
        self._buffer_cap = np.zeros(0)
        self._vq = np.zeros(0)
        self._size_arr = np.zeros(0)
        self._mark_key = None
        self._mark_cols = None

        self._event: Optional[EventHandle] = None
        self._last_sync = 0.0
        self._cols_key = None
        self._cols = None

        # Synthetic probe plane (dedicated RNG: fluid sampling must not
        # perturb the network RNG that off/lanes digests depend on).
        self._probe_rng = random.Random(
            (network.config.seed << 8) ^ 0x9E3779B1
        )
        self._last_probe = 0.0
        # (src, dst) -> (edge indices, base_rtt, hops); topology-static.
        self._probe_cache: Dict[tuple, tuple] = {}

        # Diagnostics.
        self.syncs = 0
        self.fluid_flows_total = 0
        self.fluid_bytes_total = 0

    # ------------------------------------------------------------------
    # Path resolution (mirrors Switch._route's ECMP hash)
    # ------------------------------------------------------------------

    def _edge_index(self, egress, capacity: float, switch=None) -> int:
        key = id(egress)
        idx = self._edge_of.get(key)
        if idx is None:
            idx = len(self._edges)
            self._edges.append(_Edge(egress, capacity, switch))
            self._edge_of[key] = idx
            # New edges appear mid-run (probe paths, late flows); the
            # static per-edge columns must be rebuilt before next use.
            self._topo_dirty = True
        return idx

    @staticmethod
    def _ecmp_pick(flow_id: int, src: int, dst: int, n_ports: int) -> int:
        h = (flow_id * 2654435761 + src * 40503 + dst) & 0xFFFFFFFF
        return h % n_ports

    def _path_edges(self, flow_id: int, src: int, dst: int) -> List[int]:
        """Edge indices a flow traverses, source uplink included."""
        net = self.network
        spec = net.spec
        host = net.hosts[src]
        edges = [self._edge_index(host.egress, host.line_rate)]
        tor_s = net.tors[spec.tor_of(src)]
        ports = tor_s.forward_table[dst]
        if len(ports) == 1:
            port = ports[0]
            edges.append(
                self._edge_index(
                    tor_s.egress[port], tor_s.egress[port].link.rate_bps, tor_s
                )
            )
            return edges
        k = self._ecmp_pick(flow_id, src, dst, len(ports))
        port = ports[k]
        edges.append(
            self._edge_index(
                tor_s.egress[port], tor_s.egress[port].link.rate_bps, tor_s
            )
        )
        # Uplink port lists are built in spine order, so position k IS
        # the spine index (see Network._build_forwarding).
        spine = net.spines[k]
        sport = spine.forward_table[dst][0]
        edges.append(
            self._edge_index(
                spine.egress[sport], spine.egress[sport].link.rate_bps, spine
            )
        )
        tor_d = net.tors[spec.tor_of(dst)]
        dport = tor_d.forward_table[dst][0]
        edges.append(
            self._edge_index(
                tor_d.egress[dport], tor_d.egress[dport].link.rate_bps, tor_d
            )
        )
        return edges

    # ------------------------------------------------------------------
    # Lane lifecycle
    # ------------------------------------------------------------------

    @property
    def n_lanes(self) -> int:
        return len(self._flows)

    def qp_sample(self) -> dict:
        """Aggregate rate/alpha state over fluid lanes (read-only).

        Fluid lanes react to an ECN-marking *probability* rather than
        discrete CNP packets, so the CNP count is always zero here.
        """
        n = len(self._flows)
        if n == 0:
            return {
                "n": 0, "rate_sum": 0.0, "rate_min": 0.0,
                "alpha_sum": 0.0, "alpha_max": 0.0, "cnps": 0,
            }
        return {
            "n": n,
            "rate_sum": float(self.rc.sum()),
            "rate_min": float(self.rc.min()),
            "alpha_sum": float(self.alpha.sum()),
            "alpha_max": float(self.alpha.max()),
            "cnps": 0,
        }

    def add_flow(self, flow: Flow) -> None:
        """Admit a flow to the fluid plane (starts transmitting now)."""
        host = self.network.hosts[flow.src]
        params = host.params
        self._flows.append(flow)
        self.rc = np.append(self.rc, host.line_rate)
        self.rt = np.append(self.rt, host.line_rate)
        self.alpha = np.append(self.alpha, params.initial_alpha)
        self.byte_stage = np.append(self.byte_stage, 0.0)
        self.time_stage = np.append(self.time_stage, 0.0)
        self.incr_iter = np.append(self.incr_iter, 0.0)
        self.line_rate = np.append(self.line_rate, host.line_rate)
        self._wire_f = np.append(self._wire_f, 0.0)
        self._sent_f = np.append(self._sent_f, 0.0)
        self._wire_int.append(0)
        self._sent_int.append(0)
        self._flow_edges.append(
            self._path_edges(flow.flow_id, flow.src, flow.dst)
        )
        self._topo_dirty = True
        self.fluid_flows_total += 1
        if self._event is None:
            self._last_sync = self.sim.now
            self._event = self.sim.schedule(
                self.config.sync_interval, self._sync
            )

    def _compact(self, keep: np.ndarray) -> None:
        """Drop completed lanes (boolean keep mask, order-preserving)."""
        self._flows = [f for f, k in zip(self._flows, keep) if k]
        for name in (
            "rc", "rt", "alpha", "byte_stage", "time_stage", "incr_iter",
            "line_rate", "_wire_f", "_sent_f",
        ):
            setattr(self, name, getattr(self, name)[keep])
        self._wire_int = [v for v, k in zip(self._wire_int, keep) if k]
        self._sent_int = [v for v, k in zip(self._sent_int, keep) if k]
        self._flow_edges = [e for e, k in zip(self._flow_edges, keep) if k]
        self._topo_dirty = True

    def _rebuild_topology(self) -> None:
        pairs = [
            (lane, edge)
            for lane, edges in enumerate(self._flow_edges)
            for edge in edges
        ]
        if pairs:
            self._use_flow = np.array([p[0] for p in pairs], dtype=np.intp)
            self._use_edge = np.array([p[1] for p in pairs], dtype=np.intp)
        else:
            self._use_flow = np.zeros(0, dtype=np.intp)
            self._use_edge = np.zeros(0, dtype=np.intp)
        self._cap = np.array([e.capacity for e in self._edges])
        self._markable = np.array([e.switch is not None for e in self._edges])
        self._buffer_cap = np.array([e.buffer_bytes for e in self._edges])
        self._size_arr = np.array([float(f.size) for f in self._flows])
        n_edges = len(self._edges)
        if self._vq.size < n_edges:
            self._vq = np.concatenate(
                [self._vq, np.zeros(n_edges - self._vq.size)]
            )
        self._topo_dirty = False

    def _marking_cols(self):
        """Per-edge ECN columns from each owner switch's live params."""
        key = tuple(
            id(e.switch.params) if e.switch else None for e in self._edges
        )
        if key != self._mark_key:
            k_min = np.array(
                [e.switch.params.k_min if e.switch else 0.0 for e in self._edges]
            )
            k_max = np.array(
                [e.switch.params.k_max if e.switch else 1.0 for e in self._edges]
            )
            p_max = np.array(
                [e.switch.params.p_max if e.switch else 0.0 for e in self._edges]
            )
            k_span = np.maximum(k_max - k_min, 1.0)
            self._mark_cols = (k_min, k_max, k_span, p_max)
            self._mark_key = key
        return self._mark_cols

    def _param_cols(self, dt: float) -> dict:
        """Per-lane DCQCN parameter columns, cached by identity.

        Hosts swap their ``params`` *object* on dispatch, so the tuple
        of object ids is a correct cache key for the derived columns.
        """
        key = (
            dt,
            tuple(id(self.network.hosts[f.src].params) for f in self._flows),
        )
        if key != self._cols_key:
            p = _param_arrays(
                [self.network.hosts[f.src].params for f in self._flows]
            )
            self._cols = fluid_rate_cols(p, dt)
            self._cols_key = key
        return self._cols

    # ------------------------------------------------------------------
    # The sync point
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        self._event = None
        now = self.sim.now
        window = now - self._last_sync
        self._last_sync = now
        n = len(self._flows)
        if n == 0 or window <= 0.0:
            return
        self.syncs += 1
        if self._topo_dirty:
            self._rebuild_topology()

        n_sub = max(1, int(round(window / DEFAULT_DT)))
        dt = window / n_sub
        dt8 = dt / 8.0
        cols = self._param_cols(dt)
        n_edges = len(self._edges)
        cap = self._cap
        markable = self._markable
        buffer_cap = self._buffer_cap
        vq = self._vq[:n_edges]
        k_min, k_max, k_span, p_max = self._marking_cols()
        # Packet-level data queue depth is frozen for the window: no
        # packet events run between our sub-steps.  Host uplinks are
        # pull-paced (no queue) and never mark.
        pkt_q = np.array(
            [
                float(e.egress.data_queue_bytes) if e.switch is not None else 0.0
                for e in self._edges
            ]
        )

        mtu = self.network.config.mtu
        payload_frac = mtu / float(mtu + HEADER_BYTES)
        mtu_bits = (mtu + HEADER_BYTES) * 8.0
        use_flow, use_edge = self._use_flow, self._use_edge

        wire_before = self._wire_f.copy()
        # Scratch buffers reused across sub-steps (``.at`` accumulators
        # must be re-filled, not re-allocated, each iteration).
        escape = np.empty(n)
        share = np.empty(n)
        for _ in range(n_sub):
            # Aggregate offered load per edge.
            demand = np.bincount(
                use_edge, weights=self.rc[use_flow], minlength=n_edges
            )

            # Virtual queues integrate the overload on switch edges.
            # (min/max ufuncs instead of np.clip: identical values,
            # no dispatch wrapper — this runs tens of thousands of
            # times per simulated second.)
            vq = np.where(
                markable,
                np.minimum(
                    np.maximum(vq + (demand - cap) * dt8, 0.0), buffer_cap
                ),
                0.0,
            )

            # ECN marking at the combined packet+virtual depth.
            depth = pkt_q + vq
            edge_p = (
                np.minimum(np.maximum((depth - k_min) / k_span, 0.0), 1.0)
                * p_max
            )
            edge_p = np.where(depth >= k_max, 1.0, edge_p)
            # A packet escapes unmarked only if every hop declines.
            escape.fill(1.0)
            np.multiply.at(escape, use_flow, 1.0 - edge_p[use_edge])
            mark_p = 1.0 - escape

            # Capacity sharing: each flow sends at most its fair share
            # of every traversed edge (PFC approximated by this cap).
            edge_share = np.minimum(1.0, cap / np.maximum(demand, 1e-9))
            share.fill(1.0)
            np.minimum.at(share, use_flow, edge_share[use_edge])

            (
                self.rc, self.rt, self.alpha,
                self.byte_stage, self.time_stage, self.incr_iter,
            ) = fluid_rate_step(
                self.rc, self.rt, self.alpha,
                self.byte_stage, self.time_stage, self.incr_iter,
                mark_p, self.line_rate, dt, mtu_bits, cols,
            )

            self._wire_f = self._wire_f + self.rc * share * dt8

        # -- publish into the packet world -----------------------------
        self._vq[:n_edges] = vq
        for idx, e in enumerate(self._edges):
            q = vq[idx]
            e.vq = q
            e.egress.virtual_bytes = int(q)

        sent_f = np.minimum(
            self._sent_f + (self._wire_f - wire_before) * payload_frac,
            self._size_arr,
        )
        self._sent_f = sent_f

        stats = self.network.stats
        sync_bytes = 0
        done = np.zeros(n, dtype=bool)
        for i, flow in enumerate(self._flows):
            new_sent = int(sent_f[i])
            delta = new_sent - self._sent_int[i]
            if delta > 0:
                self._sent_int[i] = new_sent
                flow.bytes_sent = new_sent
                flow.bytes_received = new_sent
                stats.record_flow_bytes(flow.flow_id, delta)
                self.network.hosts[flow.dst].rx_bytes += delta
                sync_bytes += delta
            new_wire = int(self._wire_f[i])
            wire_delta = new_wire - self._wire_int[i]
            if wire_delta > 0:
                self._wire_int[i] = new_wire
                self.network.hosts[flow.src].egress.data_tx_bytes += wire_delta
            if sent_f[i] >= flow.size:
                flow.bytes_sent = flow.size
                flow.bytes_received = flow.size
                done[i] = True
        self.fluid_bytes_total += sync_bytes

        self._emit_probes(now, vq, cap)

        if trace.active:
            trace.event(
                "engine.hybrid",
                {
                    "t": round(now, 9),
                    "fluid_flows": n,
                    "fluid_bytes": sync_bytes,
                    "virtual_queue_max": int(vq.max()) if n_edges else 0,
                },
            )

        if done.any():
            finished = [f for f, d in zip(self._flows, done) if d]
            self._compact(~done)
            # Completion callbacks may add new flows (ON-OFF rounds),
            # which re-arms the sync event via add_flow.
            for flow in finished:
                self.network._complete_flow(flow)

        if self._flows and self._event is None:
            self._event = self.sim.schedule(
                self.config.sync_interval, self._sync
            )
        elif not self._flows:
            # Idle plane: retract the published load.
            for e in self._edges:
                e.vq = 0.0
                e.egress.virtual_bytes = 0

    # ------------------------------------------------------------------
    # Synthetic RTT probes
    # ------------------------------------------------------------------

    def _emit_probes(self, now: float, vq: np.ndarray, cap: np.ndarray) -> None:
        """Emulate the DES prober for fluid-only senders.

        Hosts whose only traffic is fluid have no QPs, so the packet
        prober skips them and ``O_RTT`` would read an idle network.
        Instead, sample the same peer distribution and charge each
        forward hop its combined queueing delay.
        """
        interval = self.network.config.probe_interval
        if not self.network.config.probing_enabled:
            return
        if now - self._last_probe < interval - 1e-12:
            return
        self._last_probe = now
        spec = self.network.spec
        n_hosts = spec.n_hosts
        senders = sorted(
            {f.src for f in self._flows},
        )
        for src in senders:
            host = self.network.hosts[src]
            if host.active_qp_count() > 0:
                continue  # the packet prober already covers this host
            peer = self._probe_rng.randrange(n_hosts - 1)
            if peer >= src:
                peer += 1
            path, base, hops = self._probe_path(src, peer)
            rtt = base
            for edge_idx in path:
                edge = self._edges[edge_idx]
                depth = edge.egress.data_queue_bytes + edge.vq
                rtt += depth * 8.0 / edge.capacity
            self.network.stats.record_rtt(src, peer, rtt, hops)

    def _probe_path(self, src: int, dst: int):
        """Forward path of a probe (flow id -1, like the DES prober).

        Cached: paths, base RTTs and hop counts are topology-static.
        Host uplinks are excluded (pull-paced, no queue to charge).
        """
        cached = self._probe_cache.get((src, dst))
        if cached is None:
            spec = self.network.spec
            edges = [
                idx
                for idx in self._path_edges(-1, src, dst)
                if self._edges[idx].switch is not None
            ]
            cached = (
                edges, spec.base_rtt(src, dst), spec.path_hops(src, dst)
            )
            self._probe_cache[(src, dst)] = cached
        return cached

    # ------------------------------------------------------------------
    # Warm rebuild
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all lanes and published load (warm-rebuild path)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        for e in self._edges:
            e.vq = 0.0
            e.egress.virtual_bytes = 0
        self._flows = []
        for name in (
            "rc", "rt", "alpha", "byte_stage", "time_stage", "incr_iter",
            "line_rate", "_wire_f", "_sent_f",
        ):
            setattr(self, name, np.zeros(0))
        self._wire_int = []
        self._sent_int = []
        self._edges = []
        self._edge_of = {}
        self._flow_edges = []
        self._topo_dirty = True
        self._probe_cache = {}
        self._cap = np.zeros(0)
        self._markable = np.zeros(0, dtype=bool)
        self._buffer_cap = np.zeros(0)
        self._vq = np.zeros(0)
        self._size_arr = np.zeros(0)
        self._mark_key = None
        self._mark_cols = None
        self._cols_key = None
        self._cols = None
        self._last_sync = 0.0
        self._last_probe = 0.0
        self._probe_rng = random.Random(
            (self.network.config.seed << 8) ^ 0x9E3779B1
        )
        self.syncs = 0
        self.fluid_flows_total = 0
        self.fluid_bytes_total = 0
