"""Swift-style RTT-based congestion control (related-work substrate).

Section VI notes that TIMELY and Swift replace DCQCN's ECN signal with
RTT measurements, and that Paraleon's monitoring-tuning philosophy
applies to them as well.  This module provides a rate-based Swift-like
reaction point so the fabric can run delay-based CC end to end:

* the receiver ACKs every data packet on the control class, echoing
  the sender's transmit timestamp;
* the sender compares the measured delay against ``target_delay``
  (optionally scaled per hop, Swift's topology-aware target);
* below target → additive increase once per RTT; above target →
  multiplicative decrease proportional to the overshoot, capped by
  ``max_mdf`` and applied at most once per RTT.

The per-QP surface matches :class:`~repro.simulator.dcqcn.DcqcnRp`
(``rc``, ``start``/``stop``, ``on_packet_sent``, ``on_cnp``,
``on_ack``), so hosts can run either controller via
``NetworkConfig.cc``.  Swift ignores CNPs (ECN plays no role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.simulator.engine import Simulator
from repro.simulator.units import mbps, us


@dataclass
class SwiftParams:
    """Swift knobs at the 10 Gbps reference fabric."""

    base_target_delay: float = us(50.0)   # fabric base target (s)
    hop_scaling: float = us(5.0)          # extra target per hop (s)
    ai_rate: float = mbps(100.0)          # additive increase per RTT (bps)
    beta: float = 0.8                     # MD responsiveness
    max_mdf: float = 0.5                  # max fractional cut per RTT
    min_rate: float = mbps(10.0)

    def validate(self) -> None:
        if self.base_target_delay <= 0:
            raise ValueError("base_target_delay must be positive")
        if self.hop_scaling < 0:
            raise ValueError("hop_scaling must be >= 0")
        if self.ai_rate <= 0:
            raise ValueError("ai_rate must be positive")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if not 0.0 < self.max_mdf < 1.0:
            raise ValueError("max_mdf must be in (0, 1)")
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")

    def target_for_hops(self, hops: int) -> float:
        return self.base_target_delay + self.hop_scaling * max(hops, 0)


class SwiftCc:
    """Rate-based Swift reaction point for one sender QP."""

    def __init__(
        self,
        sim: Simulator,
        line_rate_bps: float,
        params_ref: Callable[[], SwiftParams],
        on_rate_change: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.line_rate = line_rate_bps
        self.params_ref = params_ref
        self.on_rate_change = on_rate_change

        self.rc = line_rate_bps
        self._active = False
        self._last_increase = -float("inf")
        self._last_decrease = -float("inf")
        self._smoothed_rtt: Optional[float] = None

        self.acks_received = 0
        self.increases = 0
        self.decreases = 0

    # -- lifecycle (same surface as DcqcnRp) -----------------------------

    def start(self) -> None:
        self._active = True

    def stop(self) -> None:
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def on_packet_sent(self, wire_bytes: int) -> None:
        """Swift needs no byte counter; kept for interface parity."""

    def on_cnp(self) -> None:
        """ECN plays no role in delay-based CC."""

    # -- the delay control law --------------------------------------------

    def on_ack(self, delay: float, hops: int = 3) -> None:
        """React to one ACK carrying the measured one-way delay."""
        if not self._active or delay <= 0:
            return
        self.acks_received += 1
        params = self.params_ref()
        if self._smoothed_rtt is None:
            self._smoothed_rtt = delay
        else:
            self._smoothed_rtt = 0.875 * self._smoothed_rtt + 0.125 * delay
        target = params.target_for_hops(hops)
        now = self.sim.now
        pacing_gap = max(self._smoothed_rtt, 1e-9)

        if delay <= target:
            if now - self._last_increase >= pacing_gap:
                self.rc = min(self.rc + params.ai_rate, self.line_rate)
                self._last_increase = now
                self.increases += 1
                if self.on_rate_change is not None:
                    self.on_rate_change()
        else:
            if now - self._last_decrease >= pacing_gap:
                overshoot = (delay - target) / delay
                factor = max(1.0 - params.beta * overshoot, 1.0 - params.max_mdf)
                self.rc = max(self.rc * factor, params.min_rate)
                self._last_decrease = now
                self.decreases += 1
                if self.on_rate_change is not None:
                    self.on_rate_change()
