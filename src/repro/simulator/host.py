"""Host with an RDMA NIC: sender QPs, Notification Point, probes.

The host's single uplink is served by a *pull-based* egress: instead of
letting QPs push packets into an unbounded NIC queue, the serializer
asks the set of active QPs for the next packet whose DCQCN pacing time
has arrived.  This mirrors how an RNIC's rate limiters actually gate
the DMA engine and keeps the event count proportional to packets sent.

Roles implemented here:

* **RP** (sender): one :class:`~repro.simulator.dcqcn.DcqcnRp` per QP;
  pacing interval is ``wire_bits / rc`` measured from the start of each
  transmission.
* **NP** (receiver): on an ECN-marked data packet, send a CNP back to
  the sender, at most once per ``min_time_between_cnps`` per flow.
* **Prober**: emits small PROBE packets that ride the *data* class (so
  measured RTT sees queueing and PFC) and are echoed as high-priority
  PROBE_ACKs carrying the forward hop count, Swift-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.simulator.dcqcn import DcqcnParams, DcqcnRp
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.flow import Flow
from repro.simulator.link import Link, PauseState
from repro.simulator.packet import Packet, PacketKind, data_packet, cnp_packet
from repro.simulator.units import DEFAULT_MTU


@dataclass
class HostConfig:
    """Per-host NIC configuration."""

    mtu: int = DEFAULT_MTU

    def validate(self) -> None:
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")


class SenderQp:
    """Sender-side queue pair: a flow plus its DCQCN reaction point."""

    __slots__ = ("flow", "rp", "next_allowed")

    def __init__(self, flow: Flow, rp: DcqcnRp, now: float):
        self.flow = flow
        self.rp = rp
        self.next_allowed = now


class HostEgress:
    """Pull-based serializer for the host uplink."""

    def __init__(self, sim: Simulator, link: Link, mtu: int):
        self.sim = sim
        self.link = link
        self.mtu = mtu
        # Bound-method caches for the per-packet serialization loop.
        self._schedule = sim.schedule
        self._deliver = link.deliver
        self.pause = PauseState(sim)
        self.control: list[Packet] = []
        self.qps: Dict[int, SenderQp] = {}
        self.busy = False
        self._wake: Optional[EventHandle] = None
        self._on_sender_done: Optional[Callable[[SenderQp], None]] = None
        # Data-plane bytes only (excludes CNPs/probes); feeds O_TP.
        self.data_tx_bytes = 0

    # -- admission -----------------------------------------------------

    def send_control(self, packet: Packet) -> None:
        self.control.append(packet)
        self.kick()

    def add_qp(self, qp: SenderQp) -> None:
        self.qps[qp.flow.flow_id] = qp
        self.kick()

    def set_paused(self, paused: bool) -> None:
        changed = self.pause.set_paused(paused)
        if changed and not paused:
            self.kick()

    # -- scheduling ----------------------------------------------------

    def kick(self) -> None:
        """Try to start a transmission if the serializer is idle."""
        if self.busy:
            return
        if self.control:
            packet = self.control.pop(0)
            self._transmit(packet, None)
            return
        if self.pause.paused or not self.qps:
            return
        now = self.sim.now
        best: Optional[SenderQp] = None
        earliest = float("inf")
        for qp in self.qps.values():
            if qp.next_allowed < earliest:
                earliest = qp.next_allowed
                best = qp
        if best is None:
            return
        if earliest > now:
            self._schedule_wake(earliest)
            return
        self._transmit(self._build_data(best), best)

    def _schedule_wake(self, at_time: float) -> None:
        if self._wake is not None:
            if self._wake.time <= at_time:
                return  # an earlier (or equal) wake is already pending
            self._wake.cancel()
        self._wake = self.sim.at(at_time, self._wake_fired)

    def _wake_fired(self) -> None:
        self._wake = None
        self.kick()

    def _build_data(self, qp: SenderQp) -> Packet:
        flow = qp.flow
        payload = min(self.mtu, flow.remaining_to_send)
        packet = data_packet(
            flow.flow_id,
            flow.src,
            flow.dst,
            payload=payload,
            seq=flow.bytes_sent,
            last=(payload == flow.remaining_to_send),
        )
        packet.sent_at = self.sim.now  # echoed by Swift-style ACKs
        flow.bytes_sent += payload
        return packet

    def _transmit(self, packet: Packet, qp: Optional[SenderQp]) -> None:
        self.busy = True
        start = self.sim.now
        delay = self.link.serialization_delay(packet)
        self._schedule(delay, self._finish, packet, qp, start)

    def reset(self) -> None:
        """Drop all QPs, queued control traffic and pacing state."""
        for packet in self.control:
            packet.release()
        self.control.clear()
        for qp in self.qps.values():
            qp.rp.stop()
        self.qps.clear()
        self.busy = False
        if self._wake is not None:
            self._wake.cancel()
            self._wake = None
        self.pause.reset()
        self.data_tx_bytes = 0
        self.link.reset()

    def _finish(self, packet: Packet, qp: Optional[SenderQp], start: float) -> None:
        self._deliver(packet)
        if qp is not None:
            self.data_tx_bytes += packet.wire_size
            qp.rp.on_packet_sent(packet.wire_size)
            # Pace from the start of this transmission at the current rate.
            qp.next_allowed = start + packet.wire_size * 8.0 / qp.rp.rc
            if qp.flow.remaining_to_send == 0:
                qp.rp.stop()
                self.qps.pop(qp.flow.flow_id, None)
                if self._on_sender_done is not None:
                    self._on_sender_done(qp)
        self.busy = False
        self.kick()


class Host:
    """A server with one RNIC attached to its ToR switch."""

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        name: str,
        params: DcqcnParams,
        config: Optional[HostConfig] = None,
        cc_mode: str = "dcqcn",
        swift_params=None,
    ):
        if cc_mode not in ("dcqcn", "swift"):
            raise ValueError(f"unknown cc_mode {cc_mode!r}")
        self.sim = sim
        self.host_id = host_id
        self.name = name
        self.params = params
        self.config = config or HostConfig()
        self.config.validate()
        self.cc_mode = cc_mode
        self.swift_params = swift_params

        self.egress: Optional[HostEgress] = None
        self.line_rate = 0.0

        # Vectorized RP lane bank (hybrid-engine `lanes`/`hybrid`
        # modes).  Installed by the Network; when set, DCQCN QPs draw
        # their reaction point from the bank instead of allocating a
        # scalar DcqcnRp with its own timer events.
        self.lane_bank = None

        # Notification Point state: flow id -> last CNP emission time.
        self._np_last_cnp: Dict[int, float] = {}

        # Callbacks wired by the Network.
        self.on_data: Optional[Callable[[Packet], None]] = None
        self.on_rtt_sample: Optional[Callable[[int, int, float, int], None]] = None

        # Counters.
        self.rx_bytes = 0
        self.rx_data_packets = 0
        self.cnps_sent = 0
        self.probes_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_link(self, link: Link) -> int:
        """Attach the uplink; a host has exactly one port (index 0)."""
        if self.egress is not None:
            raise RuntimeError(f"{self.name} already has an uplink")
        self.egress = HostEgress(self.sim, link, self.config.mtu)
        self.line_rate = link.rate_bps
        return 0

    def reset(self, params: DcqcnParams) -> None:
        """Return the host to its just-built state (warm-rebuild path).

        ``params`` replaces the installed parameter object — the
        network passes a fresh copy of its configured default, undoing
        whatever the previous evaluation's tuner dispatched.
        """
        self.params = params
        self._np_last_cnp.clear()
        self.rx_bytes = 0
        self.rx_data_packets = 0
        self.cnps_sent = 0
        self.probes_sent = 0
        if self.egress is not None:
            self.egress.reset()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def start_flow(self, flow: Flow) -> SenderQp:
        """Create a QP for ``flow`` and begin transmitting now."""
        if self.egress is None:
            raise RuntimeError(f"{self.name} has no uplink")
        if flow.src != self.host_id:
            raise ValueError(
                f"flow {flow.flow_id} has src {flow.src}, not {self.host_id}"
            )
        if self.cc_mode == "swift":
            from repro.simulator.swift import SwiftCc, SwiftParams

            swift_params = self.swift_params or SwiftParams()
            rp = SwiftCc(self.sim, self.line_rate, lambda: swift_params)
        elif self.lane_bank is not None:
            rp = self.lane_bank.new_rp(self.line_rate, lambda: self.params)
        else:
            rp = DcqcnRp(self.sim, self.line_rate, lambda: self.params)
        rp.start()
        qp = SenderQp(flow, rp, self.sim.now)
        self.egress.add_qp(qp)
        return qp

    def send_probe(self, dst: int) -> None:
        """Emit one RTT probe toward ``dst`` (data-class, small)."""
        if self.egress is None:
            raise RuntimeError(f"{self.name} has no uplink")
        probe = Packet(
            PacketKind.PROBE, -1, self.host_id, dst, sent_at=self.sim.now
        )
        self.probes_sent += 1
        self.egress.send_control(probe)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        if packet.kind == PacketKind.DATA:
            self._receive_data(packet)
        elif packet.kind == PacketKind.CNP:
            self._receive_cnp(packet)
        elif packet.kind == PacketKind.PROBE:
            self._receive_probe(packet)
        elif packet.kind == PacketKind.PROBE_ACK:
            self._receive_probe_ack(packet)
        elif packet.kind == PacketKind.ACK:
            self._receive_ack(packet)

    def _receive_data(self, packet: Packet) -> None:
        self.rx_bytes += packet.payload
        self.rx_data_packets += 1
        if self.cc_mode == "swift":
            self._send_ack(packet)
        elif packet.ecn:
            self._maybe_send_cnp(packet)
        if packet.last:
            self._np_last_cnp.pop(packet.flow_id, None)
        if self.on_data is not None:
            self.on_data(packet)
        # The destination host is the packet's final consumer.
        packet.release()

    def _send_ack(self, packet: Packet) -> None:
        """Swift NP role: echo the transmit timestamp per data packet."""
        ack = Packet(
            PacketKind.ACK,
            packet.flow_id,
            self.host_id,
            packet.src,
            sent_at=packet.sent_at,
        )
        ack.probe_hops = packet.hops_taken()
        self.egress.send_control(ack)

    def _receive_ack(self, packet: Packet) -> None:
        qp = self.egress.qps.get(packet.flow_id) if self.egress else None
        if qp is not None:
            delay = self.sim.now - packet.sent_at
            qp.rp.on_ack(delay, packet.probe_hops)
        packet.release()

    def _maybe_send_cnp(self, packet: Packet) -> None:
        """NP role: per-flow CNP pacing at ``min_time_between_cnps``."""
        now = self.sim.now
        last = self._np_last_cnp.get(packet.flow_id)
        if last is not None and now - last < self.params.min_time_between_cnps:
            return
        self._np_last_cnp[packet.flow_id] = now
        self.cnps_sent += 1
        self.egress.send_control(cnp_packet(packet.flow_id, self.host_id, packet.src))

    def _receive_cnp(self, packet: Packet) -> None:
        qp = self.egress.qps.get(packet.flow_id) if self.egress else None
        if qp is not None:
            qp.rp.on_cnp()
        # CNPs for already-finished flows are silently ignored, like a
        # real RNIC tearing down the rate limiter with the QP.
        packet.release()

    def _receive_probe(self, packet: Packet) -> None:
        ack = Packet(
            PacketKind.PROBE_ACK,
            -1,
            self.host_id,
            packet.src,
            sent_at=packet.sent_at,
        )
        ack.probe_hops = packet.hops_taken()
        self.egress.send_control(ack)
        packet.release()

    def _receive_probe_ack(self, packet: Packet) -> None:
        if self.on_rtt_sample is not None:
            rtt = self.sim.now - packet.sent_at
            self.on_rtt_sample(self.host_id, packet.src, rtt, packet.probe_hops)
        packet.release()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_paused_time(self) -> float:
        if self.egress is None:
            return 0.0
        return self.egress.pause.paused_time_until_now()

    def active_qp_count(self) -> int:
        return 0 if self.egress is None else len(self.egress.qps)

    def qp_sample(self) -> dict:
        """Aggregate DCQCN state across this host's QPs (read-only).

        ``getattr`` defaults keep this safe for non-DCQCN reaction
        points (e.g. Swift) that carry no alpha or CNP counters.
        """
        n = 0
        rate_sum = alpha_sum = alpha_max = 0.0
        rate_min = 0.0
        cnps = 0
        if self.egress is not None:
            for qp in self.egress.qps.values():
                rp = qp.rp
                if not getattr(rp, "active", True):
                    continue
                rc = float(getattr(rp, "rc", self.line_rate))
                rate_sum += rc
                rate_min = rc if n == 0 else min(rate_min, rc)
                alpha = float(getattr(rp, "alpha", 0.0))
                alpha_sum += alpha
                alpha_max = max(alpha_max, alpha)
                cnps += int(getattr(rp, "cnps_received", 0))
                n += 1
        return {
            "n": n, "rate_sum": rate_sum, "rate_min": rate_min,
            "alpha_sum": alpha_sum, "alpha_max": alpha_max, "cnps": cnps,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name}, qps={self.active_qp_count()})"
