"""PFC parameter planning (Section V, "PFC parameters").

The paper treats PFC's buffer knob ``α`` as *stable*: once the
topology and link/buffer capacities are fixed, α can be computed in
advance so that PFC triggers early enough for lossless operation, and
it then stays out of the DCQCN tuning loop (α = 1/8 in their
deployments).  This module implements that precomputation:

* :func:`required_headroom_bytes` — worst-case bytes an upstream
  sender can land *after* XOFF is signalled (two propagation legs, the
  in-flight serialization on both ends, plus the pause frame itself
  waiting behind one MTU).
* :func:`max_safe_alpha` — the largest dynamic-threshold α such that
  even with every port paused simultaneously, the shared buffer still
  holds the XOFF-threshold bytes *and* the per-port headroom.
* :func:`plan_pfc` — turn a :class:`~repro.simulator.topology.ClosSpec`
  and a buffer size into a validated :class:`PfcPlan` (used by tests
  and by operators sizing :class:`~repro.simulator.switch.SwitchConfig`).

The lossless guarantee is checked empirically by the integration tests
(no drops under worst-case incast at the planned α).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulator.topology import ClosSpec
from repro.simulator.units import DEFAULT_MTU, HEADER_BYTES


def required_headroom_bytes(
    rate_bps: float, prop_delay_s: float, mtu: int = DEFAULT_MTU
) -> int:
    """Worst-case post-XOFF arrival bytes for one ingress port.

    After the congested switch decides to pause, bytes keep arriving
    for: the packet currently serializing upstream (one MTU), the
    pause frame's propagation upstream, everything already on the wire
    (one propagation leg's worth of bits), and the packet that may
    have just started serializing when the pause lands.
    """
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    if prop_delay_s < 0:
        raise ValueError("propagation delay must be >= 0")
    wire_mtu = mtu + HEADER_BYTES
    in_flight = rate_bps * (2.0 * prop_delay_s) / 8.0
    return int(math.ceil(in_flight + 2 * wire_mtu))


def max_safe_alpha(
    buffer_bytes: int,
    n_ports: int,
    headroom_per_port: int,
) -> float:
    """Largest DT α that is still lossless with all ports congested.

    With the dynamic threshold, a port pauses its upstream when its
    buffered bytes exceed ``α × free``.  In the worst case all ``n``
    ports sit exactly at threshold simultaneously, having consumed
    ``n·α/(1+n·α)`` of the buffer, and each then absorbs its headroom.
    Solve ``buffer × n·α/(1+n·α) + n×headroom <= buffer`` for α.
    """
    if buffer_bytes <= 0 or n_ports < 1:
        raise ValueError("buffer and port count must be positive")
    if headroom_per_port < 0:
        raise ValueError("headroom must be >= 0")
    total_headroom = n_ports * headroom_per_port
    if total_headroom >= buffer_bytes:
        raise ValueError(
            f"buffer ({buffer_bytes} B) cannot hold PFC headroom for "
            f"{n_ports} ports ({total_headroom} B); use a bigger buffer"
        )
    usable_fraction = 1.0 - total_headroom / buffer_bytes
    # n*alpha/(1+n*alpha) <= usable_fraction
    return usable_fraction / (n_ports * (1.0 - usable_fraction))


@dataclass(frozen=True)
class PfcPlan:
    """A precomputed, validated PFC provisioning for one fabric."""

    alpha: float
    headroom_per_port: int
    buffer_bytes: int
    n_ports: int

    def validate(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        total = self.n_ports * self.headroom_per_port
        threshold_mass = (
            self.buffer_bytes
            * self.n_ports
            * self.alpha
            / (1 + self.n_ports * self.alpha)
        )
        if threshold_mass + total > self.buffer_bytes * (1 + 1e-9):
            raise ValueError("plan is not lossless under worst-case incast")


def plan_pfc(
    spec: ClosSpec,
    buffer_bytes: int,
    mtu: int = DEFAULT_MTU,
    alpha_cap: float = 1.0 / 8.0,
) -> PfcPlan:
    """Compute the stable PFC setting for a fabric.

    The returned α is the smaller of the analytically safe value and
    the operational cap (the paper's empirical 1/8), so conservative
    deployments stay conservative even when the math would allow more.
    """
    rate = max(spec.host_rate_bps, spec.uplink_rate_bps)
    headroom = required_headroom_bytes(rate, spec.prop_delay_s, mtu)
    # A ToR's port count: its hosts plus one uplink per spine.
    n_ports = spec.hosts_per_tor + spec.n_spine
    alpha = min(max_safe_alpha(buffer_bytes, n_ports, headroom), alpha_cap)
    plan = PfcPlan(
        alpha=alpha,
        headroom_per_port=headroom,
        buffer_bytes=buffer_bytes,
        n_ports=n_ports,
    )
    plan.validate()
    return plan


def min_buffer_for_alpha(
    spec: ClosSpec,
    alpha: float = 1.0 / 8.0,
    mtu: int = DEFAULT_MTU,
) -> int:
    """Smallest shared buffer that is lossless at the given α."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rate = max(spec.host_rate_bps, spec.uplink_rate_bps)
    headroom = required_headroom_bytes(rate, spec.prop_delay_s, mtu)
    n_ports = spec.hosts_per_tor + spec.n_spine
    usable_fraction = n_ports * alpha / (1 + n_ports * alpha)
    # buffer * usable + n*headroom <= buffer
    return int(math.ceil(n_ports * headroom / (1.0 - usable_fraction)))
