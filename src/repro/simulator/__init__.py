"""Discrete-event, packet-level RoCEv2 network simulator.

This package is the ns-3 substitute used by the Paraleon reproduction:
an event-driven simulator with serializing links, shared-buffer
switches (ECN marking + PFC), ECMP CLOS routing, and RNIC hosts running
the full DCQCN AIMD state machine.
"""

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet, PacketKind
from repro.simulator.link import Link
from repro.simulator.switch import Switch, SwitchConfig
from repro.simulator.host import Host, HostConfig
from repro.simulator.dcqcn import DcqcnRp, DcqcnParams
from repro.simulator.topology import ClosTopology, ClosSpec
from repro.simulator.flow import Flow, FlowRecord
from repro.simulator.network import Network, NetworkConfig
from repro.simulator.stats import IntervalStats, StatsCollector

__all__ = [
    "Simulator",
    "Packet",
    "PacketKind",
    "Link",
    "Switch",
    "SwitchConfig",
    "Host",
    "HostConfig",
    "DcqcnRp",
    "DcqcnParams",
    "ClosTopology",
    "ClosSpec",
    "Flow",
    "FlowRecord",
    "Network",
    "NetworkConfig",
    "IntervalStats",
    "StatsCollector",
]
