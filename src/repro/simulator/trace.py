"""Observability: queue/rate sampling and flow event tracing.

The evaluation figures need time series beyond the per-interval
aggregates (queue depth at the congested port, per-QP rates during SA
rounds).  :class:`FabricTracer` samples those on a fixed period
without touching the datapath, and :class:`FlowEventLog` records flow
lifecycle events for post-run analysis — the moral equivalent of the
per-run traces an ns-3 campaign dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simulator.network import Network


@dataclass(frozen=True)
class QueueSample:
    time: float
    switch: str
    port: int
    queue_bytes: int


@dataclass(frozen=True)
class RateSample:
    time: float
    host: int
    flow_id: int
    rate_bps: float


@dataclass(frozen=True)
class FlowEvent:
    time: float
    flow_id: int
    kind: str          # "start" | "complete"
    src: int
    dst: int
    size: int


class FabricTracer:
    """Periodic sampler of queue depths and QP rates."""

    def __init__(
        self,
        network: Network,
        period: float = 1e-3,
        max_samples: int = 200_000,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.network = network
        self.period = period
        self.max_samples = max_samples
        self.queue_samples: List[QueueSample] = []
        self.rate_samples: List[RateSample] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        if len(self.queue_samples) < self.max_samples:
            for switch in self.network.switches:
                for port, egress in enumerate(switch.egress):
                    if egress.data_queue_bytes > 0:
                        self.queue_samples.append(
                            QueueSample(
                                now, switch.name, port, egress.data_queue_bytes
                            )
                        )
        if len(self.rate_samples) < self.max_samples:
            for host in self.network.hosts:
                if host.egress is None:
                    continue
                for flow_id, qp in host.egress.qps.items():
                    self.rate_samples.append(
                        RateSample(now, host.host_id, flow_id, qp.rp.rc)
                    )
        self.network.sim.schedule(self.period, self._tick)

    # -- analysis helpers -------------------------------------------------

    def max_queue_bytes(self) -> int:
        if not self.queue_samples:
            return 0
        return max(sample.queue_bytes for sample in self.queue_samples)

    def queue_series(self, switch: str, port: int) -> List[Tuple[float, int]]:
        return [
            (sample.time, sample.queue_bytes)
            for sample in self.queue_samples
            if sample.switch == switch and sample.port == port
        ]

    def rate_series(self, flow_id: int) -> List[Tuple[float, float]]:
        return [
            (sample.time, sample.rate_bps)
            for sample in self.rate_samples
            if sample.flow_id == flow_id
        ]


class FlowEventLog:
    """Flow start/complete event recorder."""

    def __init__(self, network: Network):
        self.network = network
        self.events: List[FlowEvent] = []
        self._seen_started: set = set()
        network.on_flow_complete(self._on_complete)

    def poll_starts(self) -> None:
        """Record start events for flows created since the last poll."""
        for flow_id, flow in self.network.flows.items():
            if flow_id not in self._seen_started:
                self._seen_started.add(flow_id)
                self.events.append(
                    FlowEvent(
                        flow.start_time, flow_id, "start",
                        flow.src, flow.dst, flow.size,
                    )
                )

    def _on_complete(self, flow) -> None:
        self.events.append(
            FlowEvent(
                self.network.sim.now, flow.flow_id, "complete",
                flow.src, flow.dst, flow.size,
            )
        )

    def completions(self) -> List[FlowEvent]:
        return [e for e in self.events if e.kind == "complete"]

    def concurrent_flows(self, at_time: float) -> int:
        """How many flows were in flight at ``at_time``."""
        self.poll_starts()
        active = 0
        ends: Dict[int, float] = {
            e.flow_id: e.time for e in self.events if e.kind == "complete"
        }
        for event in self.events:
            if event.kind != "start" or event.time > at_time:
                continue
            end = ends.get(event.flow_id)
            if end is None or end >= at_time:
                active += 1
        return active
