"""DCQCN: parameter set and per-QP Reaction Point state machine.

The implementation follows Zhu et al., *Congestion Control for
Large-Scale RDMA Deployments* (SIGCOMM 2015), with the parameter
surface named after the NVIDIA ConnectX knobs the paper tunes
(``rpg_ai_rate``, ``rpg_hai_rate``, ``rate_reduce_monitor_period``,
``min_time_between_cnps``, ECN thresholds ``k_min``/``k_max``/``p_max``
and friends).

Reaction Point (sender QP) state:

* ``rc`` — current sending rate, ``rt`` — target rate, ``alpha`` —
  congestion estimate in ``(0, 1]``.
* On a CNP: ``alpha ← (1-g)·alpha + g`` always; a *rate cut*
  (``rt ← rc``, ``rc ← rc·(1 − alpha/2)``) happens at most once per
  ``rate_reduce_monitor_period``; all increase stages reset on a cut.
* Alpha decay timer (``dce_tcp_rtt``): each interval without a CNP,
  ``alpha ← (1-g)·alpha``.
* Rate increase is driven by a byte counter (``rpg_byte_reset``) and a
  timer (``rpg_time_reset``).  Each expiry bumps its stage counter and
  triggers an increase event: *fast recovery* while
  ``max(stages) < rpg_threshold`` (``rc ← (rc+rt)/2``), *additive*
  while only one stage crossed (``rt += rpg_ai_rate``), and *hyper*
  once both crossed (``rt += i·rpg_hai_rate``).

The Notification Point (receiver) and Congestion Point (switch) logic
live in :mod:`repro.simulator.host` and :mod:`repro.simulator.switch`;
both read their knobs from the same :class:`DcqcnParams` object so a
tuner can swap one object per device and affect all three roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Optional

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.units import kb, mbps, us


@dataclass
class DcqcnParams:
    """Full DCQCN parameter set (RNIC and switch sides).

    Defaults approximate the NVIDIA out-of-box configuration scaled to
    this simulator's 10 Gbps reference fabric; see
    ``repro.tuning.parameters`` for the tuning space, the expert
    setting (Table I of the paper), and the scale-down rationale.
    """

    # --- Rate increase (RP) ---
    rpg_ai_rate: float = mbps(20.0)      # additive increase step (bps)
    rpg_hai_rate: float = mbps(200.0)    # hyper increase step (bps)
    rpg_time_reset: float = us(300.0)    # increase timer period (s)
    rpg_byte_reset: int = kb(32.0)       # increase byte counter (bytes)
    rpg_threshold: int = 5               # stages before AI/HAI
    rpg_min_rate: float = mbps(10.0)     # rate floor (bps)

    # --- Rate decrease (RP) ---
    rate_reduce_monitor_period: float = us(50.0)  # min gap between cuts (s)
    min_dec_fac: float = 0.5             # max fractional cut per event

    # --- Alpha update (RP) ---
    dce_tcp_g: float = 1.0 / 256.0       # EWMA gain g
    dce_tcp_rtt: float = us(55.0)        # alpha decay timer (s)
    initial_alpha: float = 1.0

    # --- Notification point (receiver RNIC) ---
    min_time_between_cnps: float = us(50.0)  # per-flow CNP pacing (s)

    # --- Congestion point (switch ECN marking) ---
    k_min: int = kb(20.0)                # start-marking threshold (bytes)
    k_max: int = kb(200.0)               # all-marking threshold (bytes)
    p_max: float = 0.1                   # marking probability at k_max

    def validate(self) -> None:
        """Raise ValueError on an internally inconsistent setting."""
        if self.rpg_ai_rate <= 0 or self.rpg_hai_rate <= 0:
            raise ValueError("increase rates must be positive")
        if self.rpg_time_reset <= 0 or self.rpg_byte_reset <= 0:
            raise ValueError("increase timer/byte counter must be positive")
        if self.rpg_threshold < 1:
            raise ValueError("rpg_threshold must be >= 1")
        if not 0.0 < self.dce_tcp_g <= 1.0:
            raise ValueError("dce_tcp_g must be in (0, 1]")
        if not 0.0 < self.initial_alpha <= 1.0:
            raise ValueError("initial_alpha must be in (0, 1]")
        if not 0.0 < self.min_dec_fac <= 1.0:
            raise ValueError("min_dec_fac must be in (0, 1]")
        if self.k_min < 0 or self.k_max <= 0:
            raise ValueError("ECN thresholds must be non-negative")
        if self.k_min >= self.k_max:
            raise ValueError(f"k_min ({self.k_min}) must be < k_max ({self.k_max})")
        if not 0.0 < self.p_max <= 1.0:
            raise ValueError("p_max must be in (0, 1]")
        if self.min_time_between_cnps < 0:
            raise ValueError("min_time_between_cnps must be >= 0")
        if self.rate_reduce_monitor_period < 0:
            raise ValueError("rate_reduce_monitor_period must be >= 0")

    def copy(self, **overrides) -> "DcqcnParams":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, values: dict) -> "DcqcnParams":
        return cls(**values)


class DcqcnRp:
    """Reaction Point state for one sender QP.

    The QP reads its knobs through ``params_ref`` (a zero-argument
    callable returning the host's current :class:`DcqcnParams`) so that
    a controller dispatching new parameters affects live QPs
    immediately, as on real RNICs.
    """

    def __init__(
        self,
        sim: Simulator,
        line_rate_bps: float,
        params_ref: Callable[[], DcqcnParams],
        on_rate_change: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.line_rate = line_rate_bps
        self.params_ref = params_ref
        self.on_rate_change = on_rate_change

        params = params_ref()
        self.rc = line_rate_bps          # current rate
        self.rt = line_rate_bps          # target rate
        self.alpha = params.initial_alpha

        self._byte_counter = 0
        self._byte_stage = 0
        self._time_stage = 0
        self._increase_iter = 0          # consecutive hyper-increase count
        self._last_cut_time = -float("inf")
        self._cnp_seen_since_alpha_timer = False

        self._alpha_timer: Optional[EventHandle] = None
        self._increase_timer: Optional[EventHandle] = None
        self._active = False

        # Counters for diagnostics / tests.
        self.cnps_received = 0
        self.rate_cuts = 0
        self.increase_events = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Activate timers when the QP begins transmitting."""
        if self._active:
            return
        self._active = True
        self._arm_alpha_timer()
        self._arm_increase_timer()

    def stop(self) -> None:
        """Cancel timers when the flow finishes."""
        self._active = False
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
            self._alpha_timer = None
        if self._increase_timer is not None:
            self._increase_timer.cancel()
            self._increase_timer = None

    @property
    def active(self) -> bool:
        return self._active

    # ------------------------------------------------------------------
    # CNP handling (rate decrease + alpha increase)
    # ------------------------------------------------------------------

    def on_ack(self, delay: float, hops: int = 0) -> None:
        """DCQCN is ECN-driven; delay feedback is a no-op.

        Present for interface parity with delay-based controllers
        (:class:`repro.simulator.swift.SwiftCc`).
        """

    def on_cnp(self) -> None:
        """React to a congestion notification packet."""
        if not self._active:
            return
        params = self.params_ref()
        g = params.dce_tcp_g
        self.alpha = (1.0 - g) * self.alpha + g
        self._cnp_seen_since_alpha_timer = True
        self.cnps_received += 1

        now = self.sim.now
        if now - self._last_cut_time >= params.rate_reduce_monitor_period:
            self._cut_rate(params)
            self._last_cut_time = now

    def _cut_rate(self, params: DcqcnParams) -> None:
        self.rt = self.rc
        factor = max(1.0 - self.alpha / 2.0, 1.0 - params.min_dec_fac)
        self.rc = max(self.rc * factor, params.rpg_min_rate)
        self.rate_cuts += 1
        # A cut resets the whole increase state machine.
        self._byte_counter = 0
        self._byte_stage = 0
        self._time_stage = 0
        self._increase_iter = 0
        self._arm_increase_timer()
        if self.on_rate_change is not None:
            self.on_rate_change()

    # ------------------------------------------------------------------
    # Alpha decay timer
    # ------------------------------------------------------------------

    def _arm_alpha_timer(self) -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        params = self.params_ref()
        self._alpha_timer = self.sim.schedule(params.dce_tcp_rtt, self._alpha_tick)

    def _alpha_tick(self) -> None:
        if not self._active:
            return
        if not self._cnp_seen_since_alpha_timer:
            g = self.params_ref().dce_tcp_g
            self.alpha = (1.0 - g) * self.alpha
        self._cnp_seen_since_alpha_timer = False
        self._arm_alpha_timer()

    # ------------------------------------------------------------------
    # Rate increase: byte counter and timer stages
    # ------------------------------------------------------------------

    def on_packet_sent(self, wire_bytes: int) -> None:
        """Account transmitted bytes toward the increase byte counter."""
        if not self._active:
            return
        self._byte_counter += wire_bytes
        params = self.params_ref()
        while self._byte_counter >= params.rpg_byte_reset:
            self._byte_counter -= params.rpg_byte_reset
            self._byte_stage += 1
            self._increase_event(params)

    def _arm_increase_timer(self) -> None:
        if self._increase_timer is not None:
            self._increase_timer.cancel()
        params = self.params_ref()
        self._increase_timer = self.sim.schedule(
            params.rpg_time_reset, self._increase_tick
        )

    def _increase_tick(self) -> None:
        if not self._active:
            return
        self._time_stage += 1
        self._increase_event(self.params_ref())
        self._arm_increase_timer()

    def _increase_event(self, params: DcqcnParams) -> None:
        """One fast-recovery / additive / hyper increase step."""
        self.increase_events += 1
        threshold = params.rpg_threshold
        if max(self._byte_stage, self._time_stage) < threshold:
            pass  # fast recovery: rt unchanged
        elif min(self._byte_stage, self._time_stage) < threshold:
            self.rt += params.rpg_ai_rate
        else:
            self._increase_iter += 1
            self.rt += self._increase_iter * params.rpg_hai_rate
        self.rt = min(self.rt, self.line_rate)
        self.rc = min((self.rc + self.rt) / 2.0, self.line_rate)
        self.rc = max(self.rc, params.rpg_min_rate)
        if self.on_rate_change is not None:
            self.on_rate_change()


def ecn_mark_probability(queue_bytes: int, params: DcqcnParams) -> float:
    """RED-style marking curve used at the Congestion Point.

    0 below ``k_min``; linear up to ``p_max`` at ``k_max``; 1 above
    ``k_max`` (every packet marked), per the DCQCN paper.
    """
    if queue_bytes <= params.k_min:
        return 0.0
    if queue_bytes >= params.k_max:
        return 1.0
    span = params.k_max - params.k_min
    return params.p_max * (queue_bytes - params.k_min) / span
