"""DCQCN: parameter set and per-QP Reaction Point state machine.

The implementation follows Zhu et al., *Congestion Control for
Large-Scale RDMA Deployments* (SIGCOMM 2015), with the parameter
surface named after the NVIDIA ConnectX knobs the paper tunes
(``rpg_ai_rate``, ``rpg_hai_rate``, ``rate_reduce_monitor_period``,
``min_time_between_cnps``, ECN thresholds ``k_min``/``k_max``/``p_max``
and friends).

Reaction Point (sender QP) state:

* ``rc`` — current sending rate, ``rt`` — target rate, ``alpha`` —
  congestion estimate in ``(0, 1]``.
* On a CNP: ``alpha ← (1-g)·alpha + g`` always; a *rate cut*
  (``rt ← rc``, ``rc ← rc·(1 − alpha/2)``) happens at most once per
  ``rate_reduce_monitor_period``; all increase stages reset on a cut.
* Alpha decay timer (``dce_tcp_rtt``): each interval without a CNP,
  ``alpha ← (1-g)·alpha``.
* Rate increase is driven by a byte counter (``rpg_byte_reset``) and a
  timer (``rpg_time_reset``).  Each expiry bumps its stage counter and
  triggers an increase event: *fast recovery* while
  ``max(stages) < rpg_threshold`` (``rc ← (rc+rt)/2``), *additive*
  while only one stage crossed (``rt += rpg_ai_rate``), and *hyper*
  once both crossed (``rt += i·rpg_hai_rate``).

The Notification Point (receiver) and Congestion Point (switch) logic
live in :mod:`repro.simulator.host` and :mod:`repro.simulator.switch`;
both read their knobs from the same :class:`DcqcnParams` object so a
tuner can swap one object per device and affect all three roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, List, Optional

import numpy as np

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.units import kb, mbps, us


@dataclass
class DcqcnParams:
    """Full DCQCN parameter set (RNIC and switch sides).

    Defaults approximate the NVIDIA out-of-box configuration scaled to
    this simulator's 10 Gbps reference fabric; see
    ``repro.tuning.parameters`` for the tuning space, the expert
    setting (Table I of the paper), and the scale-down rationale.
    """

    # --- Rate increase (RP) ---
    rpg_ai_rate: float = mbps(20.0)      # additive increase step (bps)
    rpg_hai_rate: float = mbps(200.0)    # hyper increase step (bps)
    rpg_time_reset: float = us(300.0)    # increase timer period (s)
    rpg_byte_reset: int = kb(32.0)       # increase byte counter (bytes)
    rpg_threshold: int = 5               # stages before AI/HAI
    rpg_min_rate: float = mbps(10.0)     # rate floor (bps)

    # --- Rate decrease (RP) ---
    rate_reduce_monitor_period: float = us(50.0)  # min gap between cuts (s)
    min_dec_fac: float = 0.5             # max fractional cut per event

    # --- Alpha update (RP) ---
    dce_tcp_g: float = 1.0 / 256.0       # EWMA gain g
    dce_tcp_rtt: float = us(55.0)        # alpha decay timer (s)
    initial_alpha: float = 1.0

    # --- Notification point (receiver RNIC) ---
    min_time_between_cnps: float = us(50.0)  # per-flow CNP pacing (s)

    # --- Congestion point (switch ECN marking) ---
    k_min: int = kb(20.0)                # start-marking threshold (bytes)
    k_max: int = kb(200.0)               # all-marking threshold (bytes)
    p_max: float = 0.1                   # marking probability at k_max

    def validate(self) -> None:
        """Raise ValueError on an internally inconsistent setting."""
        if self.rpg_ai_rate <= 0 or self.rpg_hai_rate <= 0:
            raise ValueError("increase rates must be positive")
        if self.rpg_time_reset <= 0 or self.rpg_byte_reset <= 0:
            raise ValueError("increase timer/byte counter must be positive")
        if self.rpg_threshold < 1:
            raise ValueError("rpg_threshold must be >= 1")
        if not 0.0 < self.dce_tcp_g <= 1.0:
            raise ValueError("dce_tcp_g must be in (0, 1]")
        if not 0.0 < self.initial_alpha <= 1.0:
            raise ValueError("initial_alpha must be in (0, 1]")
        if not 0.0 < self.min_dec_fac <= 1.0:
            raise ValueError("min_dec_fac must be in (0, 1]")
        if self.k_min < 0 or self.k_max <= 0:
            raise ValueError("ECN thresholds must be non-negative")
        if self.k_min >= self.k_max:
            raise ValueError(f"k_min ({self.k_min}) must be < k_max ({self.k_max})")
        if not 0.0 < self.p_max <= 1.0:
            raise ValueError("p_max must be in (0, 1]")
        if self.min_time_between_cnps < 0:
            raise ValueError("min_time_between_cnps must be >= 0")
        if self.rate_reduce_monitor_period < 0:
            raise ValueError("rate_reduce_monitor_period must be >= 0")

    def copy(self, **overrides) -> "DcqcnParams":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, values: dict) -> "DcqcnParams":
        return cls(**values)


class DcqcnRp:
    """Reaction Point state for one sender QP.

    The QP reads its knobs through ``params_ref`` (a zero-argument
    callable returning the host's current :class:`DcqcnParams`) so that
    a controller dispatching new parameters affects live QPs
    immediately, as on real RNICs.
    """

    def __init__(
        self,
        sim: Simulator,
        line_rate_bps: float,
        params_ref: Callable[[], DcqcnParams],
        on_rate_change: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.line_rate = line_rate_bps
        self.params_ref = params_ref
        self.on_rate_change = on_rate_change

        params = params_ref()
        self.rc = line_rate_bps          # current rate
        self.rt = line_rate_bps          # target rate
        self.alpha = params.initial_alpha

        self._byte_counter = 0
        self._byte_stage = 0
        self._time_stage = 0
        self._increase_iter = 0          # consecutive hyper-increase count
        self._last_cut_time = -float("inf")
        self._cnp_seen_since_alpha_timer = False

        self._alpha_timer: Optional[EventHandle] = None
        self._increase_timer: Optional[EventHandle] = None
        self._active = False

        # Counters for diagnostics / tests.
        self.cnps_received = 0
        self.rate_cuts = 0
        self.increase_events = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Activate timers when the QP begins transmitting."""
        if self._active:
            return
        self._active = True
        self._arm_alpha_timer()
        self._arm_increase_timer()

    def stop(self) -> None:
        """Cancel timers when the flow finishes."""
        self._active = False
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
            self._alpha_timer = None
        if self._increase_timer is not None:
            self._increase_timer.cancel()
            self._increase_timer = None

    @property
    def active(self) -> bool:
        return self._active

    # ------------------------------------------------------------------
    # CNP handling (rate decrease + alpha increase)
    # ------------------------------------------------------------------

    def on_ack(self, delay: float, hops: int = 0) -> None:
        """DCQCN is ECN-driven; delay feedback is a no-op.

        Present for interface parity with delay-based controllers
        (:class:`repro.simulator.swift.SwiftCc`).
        """

    def on_cnp(self) -> None:
        """React to a congestion notification packet."""
        if not self._active:
            return
        params = self.params_ref()
        g = params.dce_tcp_g
        self.alpha = (1.0 - g) * self.alpha + g
        self._cnp_seen_since_alpha_timer = True
        self.cnps_received += 1

        now = self.sim.now
        if now - self._last_cut_time >= params.rate_reduce_monitor_period:
            self._cut_rate(params)
            self._last_cut_time = now

    def _cut_rate(self, params: DcqcnParams) -> None:
        self.rt = self.rc
        factor = max(1.0 - self.alpha / 2.0, 1.0 - params.min_dec_fac)
        self.rc = max(self.rc * factor, params.rpg_min_rate)
        self.rate_cuts += 1
        # A cut resets the whole increase state machine.
        self._byte_counter = 0
        self._byte_stage = 0
        self._time_stage = 0
        self._increase_iter = 0
        self._arm_increase_timer()
        if self.on_rate_change is not None:
            self.on_rate_change()

    # ------------------------------------------------------------------
    # Alpha decay timer
    # ------------------------------------------------------------------

    def _arm_alpha_timer(self) -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        params = self.params_ref()
        self._alpha_timer = self.sim.schedule(params.dce_tcp_rtt, self._alpha_tick)

    def _alpha_tick(self) -> None:
        if not self._active:
            return
        if not self._cnp_seen_since_alpha_timer:
            g = self.params_ref().dce_tcp_g
            self.alpha = (1.0 - g) * self.alpha
        self._cnp_seen_since_alpha_timer = False
        self._arm_alpha_timer()

    # ------------------------------------------------------------------
    # Rate increase: byte counter and timer stages
    # ------------------------------------------------------------------

    def on_packet_sent(self, wire_bytes: int) -> None:
        """Account transmitted bytes toward the increase byte counter."""
        if not self._active:
            return
        self._byte_counter += wire_bytes
        params = self.params_ref()
        while self._byte_counter >= params.rpg_byte_reset:
            self._byte_counter -= params.rpg_byte_reset
            self._byte_stage += 1
            self._increase_event(params)

    def _arm_increase_timer(self) -> None:
        if self._increase_timer is not None:
            self._increase_timer.cancel()
        params = self.params_ref()
        self._increase_timer = self.sim.schedule(
            params.rpg_time_reset, self._increase_tick
        )

    def _increase_tick(self) -> None:
        if not self._active:
            return
        self._time_stage += 1
        self._increase_event(self.params_ref())
        self._arm_increase_timer()

    def _increase_event(self, params: DcqcnParams) -> None:
        """One fast-recovery / additive / hyper increase step."""
        self.increase_events += 1
        threshold = params.rpg_threshold
        if max(self._byte_stage, self._time_stage) < threshold:
            pass  # fast recovery: rt unchanged
        elif min(self._byte_stage, self._time_stage) < threshold:
            self.rt += params.rpg_ai_rate
        else:
            self._increase_iter += 1
            self.rt += self._increase_iter * params.rpg_hai_rate
        self.rt = min(self.rt, self.line_rate)
        self.rc = min((self.rc + self.rt) / 2.0, self.line_rate)
        self.rc = max(self.rc, params.rpg_min_rate)
        if self.on_rate_change is not None:
            self.on_rate_change()


class DcqcnLaneBank:
    """Vectorized RP timer plane: all QPs' timers in numpy lanes.

    The scalar :class:`DcqcnRp` schedules two engine events per QP per
    timer period (alpha decay at ``dce_tcp_rtt``, rate increase at
    ``rpg_time_reset``) plus one cancel-and-rearm per rate cut — the
    dominant event population on a busy host.  The bank keeps the same
    state in float64/int64 arrays, one lane per QP, and schedules a
    *single* engine event at the minimum pending deadline; every lane
    whose deadline equals that exact float advances in one array step.

    Bit-identity contract (the ``lanes`` gating mode): every arithmetic
    operation below is the same IEEE-double expression the scalar class
    evaluates, element-wise, and coalesced same-time ticks only touch
    per-lane state, so lane-mode runs produce byte-identical digests.
    Parameters are read through each lane's ``params_ref`` at tick time,
    exactly like the scalar timers, so controller dispatches take effect
    immediately.
    """

    def __init__(self, sim: Simulator, capacity: int = 16):
        self.sim = sim
        self._cap = max(4, capacity)
        n = self._cap
        self.rc = np.zeros(n)
        self.rt = np.zeros(n)
        self.alpha = np.zeros(n)
        self.line_rate = np.zeros(n)
        self.byte_counter = np.zeros(n, dtype=np.int64)
        self.byte_stage = np.zeros(n, dtype=np.int64)
        self.time_stage = np.zeros(n, dtype=np.int64)
        self.incr_iter = np.zeros(n, dtype=np.int64)
        self.last_cut = np.full(n, -np.inf)
        self.cnp_seen = np.zeros(n, dtype=bool)
        self.active = np.zeros(n, dtype=bool)
        # inf = timer disarmed; the engine event sits at the global min.
        self.alpha_deadline = np.full(n, np.inf)
        self.incr_deadline = np.full(n, np.inf)
        self.cnps_received = np.zeros(n, dtype=np.int64)
        self.rate_cuts = np.zeros(n, dtype=np.int64)
        self.increase_events = np.zeros(n, dtype=np.int64)
        self.params_ref: List[Optional[Callable[[], DcqcnParams]]] = [None] * n
        self.on_rate_change: List[Optional[Callable[[], None]]] = [None] * n
        self._free: List[int] = list(range(n - 1, -1, -1))
        self._n = 0                      # high-water mark of lanes in use
        self._event: Optional[EventHandle] = None
        # Diagnostics: coalesced ticks vs lanes advanced.
        self.ticks = 0
        self.lanes_fired = 0

    # -- lane lifecycle -------------------------------------------------

    def _grow(self) -> None:
        old = self._cap
        new = old * 2
        for name in (
            "rc", "rt", "alpha", "line_rate", "byte_counter", "byte_stage",
            "time_stage", "incr_iter", "last_cut", "cnp_seen", "active",
            "alpha_deadline", "incr_deadline", "cnps_received", "rate_cuts",
            "increase_events",
        ):
            arr = getattr(self, name)
            fill = np.inf if name in ("alpha_deadline", "incr_deadline") else (
                -np.inf if name == "last_cut" else 0
            )
            grown = np.full(new, fill, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self.params_ref.extend([None] * old)
        self.on_rate_change.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))
        self._cap = new

    def new_rp(
        self,
        line_rate_bps: float,
        params_ref: Callable[[], DcqcnParams],
        on_rate_change: Optional[Callable[[], None]] = None,
    ) -> "LanedDcqcnRp":
        """Allocate a lane initialized exactly like ``DcqcnRp.__init__``."""
        if not self._free:
            self._grow()
        i = self._free.pop()
        self._n = max(self._n, i + 1)
        params = params_ref()
        self.rc[i] = line_rate_bps
        self.rt[i] = line_rate_bps
        self.alpha[i] = params.initial_alpha
        self.line_rate[i] = line_rate_bps
        self.byte_counter[i] = 0
        self.byte_stage[i] = 0
        self.time_stage[i] = 0
        self.incr_iter[i] = 0
        self.last_cut[i] = -np.inf
        self.cnp_seen[i] = False
        self.active[i] = False
        self.alpha_deadline[i] = np.inf
        self.incr_deadline[i] = np.inf
        self.cnps_received[i] = 0
        self.rate_cuts[i] = 0
        self.increase_events[i] = 0
        self.params_ref[i] = params_ref
        self.on_rate_change[i] = on_rate_change
        return LanedDcqcnRp(self, i)

    def start(self, i: int) -> None:
        if self.active[i]:
            return
        self.active[i] = True
        params = self.params_ref[i]()
        now = self.sim.now
        self.alpha_deadline[i] = now + params.dce_tcp_rtt
        self.incr_deadline[i] = now + params.rpg_time_reset
        self._refresh_event()

    def stop(self, i: int) -> None:
        self.active[i] = False
        self.alpha_deadline[i] = np.inf
        self.incr_deadline[i] = np.inf
        self._free.append(i)
        self.params_ref[i] = None
        self.on_rate_change[i] = None

    # -- per-packet paths (scalar, one lane) ----------------------------

    def on_cnp(self, i: int) -> None:
        if not self.active[i]:
            return
        params = self.params_ref[i]()
        g = params.dce_tcp_g
        self.alpha[i] = (1.0 - g) * self.alpha[i] + g
        self.cnp_seen[i] = True
        self.cnps_received[i] += 1
        now = self.sim.now
        if now - self.last_cut[i] >= params.rate_reduce_monitor_period:
            self._cut_rate(i, params, now)
            self.last_cut[i] = now

    def _cut_rate(self, i: int, params: DcqcnParams, now: float) -> None:
        rc = self.rc[i]
        self.rt[i] = rc
        factor = max(1.0 - self.alpha[i] / 2.0, 1.0 - params.min_dec_fac)
        self.rc[i] = max(rc * factor, params.rpg_min_rate)
        self.rate_cuts[i] += 1
        self.byte_counter[i] = 0
        self.byte_stage[i] = 0
        self.time_stage[i] = 0
        self.incr_iter[i] = 0
        self.incr_deadline[i] = now + params.rpg_time_reset
        self._refresh_event()
        callback = self.on_rate_change[i]
        if callback is not None:
            callback()

    def on_packet_sent(self, i: int, wire_bytes: int) -> None:
        if not self.active[i]:
            return
        counter = int(self.byte_counter[i]) + wire_bytes
        params = self.params_ref[i]()
        reset = params.rpg_byte_reset
        while counter >= reset:
            counter -= reset
            self.byte_stage[i] += 1
            self._increase_event_scalar(i, params)
        self.byte_counter[i] = counter

    def _increase_event_scalar(self, i: int, params: DcqcnParams) -> None:
        self.increase_events[i] += 1
        threshold = params.rpg_threshold
        byte_stage = self.byte_stage[i]
        time_stage = self.time_stage[i]
        rt = self.rt[i]
        if max(byte_stage, time_stage) < threshold:
            pass  # fast recovery: rt unchanged
        elif min(byte_stage, time_stage) < threshold:
            rt = rt + params.rpg_ai_rate
        else:
            self.incr_iter[i] += 1
            rt = rt + self.incr_iter[i] * params.rpg_hai_rate
        line = self.line_rate[i]
        rt = min(rt, line)
        rc = min((self.rc[i] + rt) / 2.0, line)
        rc = max(rc, params.rpg_min_rate)
        self.rt[i] = rt
        self.rc[i] = rc
        callback = self.on_rate_change[i]
        if callback is not None:
            callback()

    # -- coalesced timer plane ------------------------------------------

    def _refresh_event(self) -> None:
        """Keep one engine event pending at the minimum deadline."""
        n = self._n
        if n == 0:
            next_t = np.inf
        else:
            next_t = min(
                self.alpha_deadline[:n].min(), self.incr_deadline[:n].min()
            )
        event = self._event
        if next_t == np.inf:
            if event is not None:
                event.cancel()
                self._event = None
            return
        if event is not None:
            if event.time <= next_t:
                return  # fires at/before the min; spurious wakes re-arm
            event.cancel()
        self._event = self.sim.at(float(next_t), self._tick)

    def _tick(self) -> None:
        self._event = None
        now = self.sim.now
        n = self._n
        self.ticks += 1
        alpha_fired = np.flatnonzero(self.alpha_deadline[:n] == now)
        incr_fired = np.flatnonzero(self.incr_deadline[:n] == now)
        # Alpha before increase: the two planes touch disjoint state
        # (alpha/cnp flag vs rc/rt/stages), so same-time order between
        # them — and among coalesced lanes — cannot change the outcome.
        if alpha_fired.size:
            self._alpha_fire(alpha_fired, now)
        if incr_fired.size:
            self._incr_fire(incr_fired, now)
        self.lanes_fired += int(alpha_fired.size + incr_fired.size)
        self._refresh_event()

    def _gather(self, idx: np.ndarray, names: tuple) -> List[np.ndarray]:
        """Live per-lane parameter columns for the fired lanes."""
        refs = self.params_ref
        cols = [np.empty(idx.size) for _ in names]
        for k, i in enumerate(idx):
            params = refs[i]()
            for c, name in enumerate(names):
                cols[c][k] = getattr(params, name)
        return cols

    def _alpha_fire(self, idx: np.ndarray, now: float) -> None:
        if idx.size == 1:
            # Scalar fast path: staggered start times make one-lane
            # ticks the common case, where array temporaries cost more
            # than the work.  Same IEEE-double expressions as below.
            i = int(idx[0])
            params = self.params_ref[i]()
            if not self.cnp_seen[i]:
                self.alpha[i] = (1.0 - params.dce_tcp_g) * self.alpha[i]
            self.cnp_seen[i] = False
            self.alpha_deadline[i] = now + params.dce_tcp_rtt
            return
        g, period = self._gather(idx, ("dce_tcp_g", "dce_tcp_rtt"))
        alpha = self.alpha[idx]
        quiet = ~self.cnp_seen[idx]
        # Same expression as the scalar `_alpha_tick`, element-wise.
        self.alpha[idx] = np.where(quiet, (1.0 - g) * alpha, alpha)
        self.cnp_seen[idx] = False
        self.alpha_deadline[idx] = now + period

    def _incr_fire(self, idx: np.ndarray, now: float) -> None:
        if idx.size == 1:
            # Scalar fast path; mirrors `_increase_event_scalar` plus
            # the timer re-arm, exactly like `DcqcnRp._increase_tick`.
            i = int(idx[0])
            params = self.params_ref[i]()
            self.time_stage[i] += 1
            self._increase_event_scalar(i, params)
            self.incr_deadline[i] = now + params.rpg_time_reset
            return
        ai, hai, threshold, period, line_min = self._gather(
            idx,
            (
                "rpg_ai_rate", "rpg_hai_rate", "rpg_threshold",
                "rpg_time_reset", "rpg_min_rate",
            ),
        )
        self.time_stage[idx] += 1
        self.increase_events[idx] += 1
        byte_stage = self.byte_stage[idx]
        time_stage = self.time_stage[idx]
        hi = np.maximum(byte_stage, time_stage)
        lo = np.minimum(byte_stage, time_stage)
        additive = (hi >= threshold) & (lo < threshold)
        hyper = lo >= threshold
        rt = self.rt[idx]
        # x + 0.0 == x for the positive rates involved, so masked adds
        # are bit-identical to the scalar branchy version.
        rt = rt + np.where(additive, ai, 0.0)
        incr_iter = self.incr_iter[idx] + hyper
        rt = rt + np.where(hyper, incr_iter * hai, 0.0)
        line = self.line_rate[idx]
        rt = np.minimum(rt, line)
        rc = np.minimum((self.rc[idx] + rt) / 2.0, line)
        rc = np.maximum(rc, line_min)
        self.incr_iter[idx] = incr_iter
        self.rt[idx] = rt
        self.rc[idx] = rc
        self.incr_deadline[idx] = now + period
        callbacks = self.on_rate_change
        for i in idx:
            callback = callbacks[i]
            if callback is not None:
                callback()

    def qp_sample(self) -> dict:
        """Aggregate rate/alpha/CNP state over active lanes (read-only).

        One masked numpy reduction per field — the flight recorder's
        vectorized alternative to walking every host's QP table.
        """
        n = self._n
        mask = self.active[:n]
        count = int(np.count_nonzero(mask))
        if count == 0:
            return {
                "n": 0, "rate_sum": 0.0, "rate_min": 0.0,
                "alpha_sum": 0.0, "alpha_max": 0.0, "cnps": 0,
            }
        rc = self.rc[:n][mask]
        alpha = self.alpha[:n][mask]
        return {
            "n": count,
            "rate_sum": float(rc.sum()),
            "rate_min": float(rc.min()),
            "alpha_sum": float(alpha.sum()),
            "alpha_max": float(alpha.max()),
            "cnps": int(self.cnps_received[:n][mask].sum()),
        }

    def reset(self) -> None:
        """Drop every lane and the pending tick (warm-rebuild path)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.active[:] = False
        self.alpha_deadline[:] = np.inf
        self.incr_deadline[:] = np.inf
        self.params_ref = [None] * self._cap
        self.on_rate_change = [None] * self._cap
        self._free = list(range(self._cap - 1, -1, -1))
        self._n = 0
        self.ticks = 0
        self.lanes_fired = 0


class LanedDcqcnRp:
    """``DcqcnRp``-compatible view over one :class:`DcqcnLaneBank` lane.

    Hosts hand these to :class:`~repro.simulator.host.SenderQp` in
    ``lanes``/``hybrid`` engine modes; the per-packet interface is
    identical to the scalar class, only timer bookkeeping moves into
    the bank's coalesced event.
    """

    __slots__ = ("bank", "lane")

    def __init__(self, bank: DcqcnLaneBank, lane: int):
        self.bank = bank
        self.lane = lane

    # -- rate state -----------------------------------------------------

    @property
    def rc(self) -> float:
        return float(self.bank.rc[self.lane])

    @property
    def rt(self) -> float:
        return float(self.bank.rt[self.lane])

    @property
    def alpha(self) -> float:
        return float(self.bank.alpha[self.lane])

    @property
    def active(self) -> bool:
        return bool(self.bank.active[self.lane])

    # -- counters (diagnostics / tests) ---------------------------------

    @property
    def cnps_received(self) -> int:
        return int(self.bank.cnps_received[self.lane])

    @property
    def rate_cuts(self) -> int:
        return int(self.bank.rate_cuts[self.lane])

    @property
    def increase_events(self) -> int:
        return int(self.bank.increase_events[self.lane])

    # -- lifecycle / events ---------------------------------------------

    def start(self) -> None:
        self.bank.start(self.lane)

    def stop(self) -> None:
        if self.bank.active[self.lane]:
            self.bank.stop(self.lane)

    def on_ack(self, delay: float, hops: int = 0) -> None:
        """ECN-driven like the scalar RP; delay feedback is a no-op."""

    def on_cnp(self) -> None:
        self.bank.on_cnp(self.lane)

    def on_packet_sent(self, wire_bytes: int) -> None:
        self.bank.on_packet_sent(self.lane, wire_bytes)


def ecn_mark_probability(queue_bytes: int, params: DcqcnParams) -> float:
    """RED-style marking curve used at the Congestion Point.

    0 below ``k_min``; linear up to ``p_max`` at ``k_max``; 1 above
    ``k_max`` (every packet marked), per the DCQCN paper.
    """
    if queue_bytes <= params.k_min:
        return 0.0
    if queue_bytes >= params.k_max:
        return 1.0
    span = params.k_max - params.k_min
    return params.p_max * (queue_bytes - params.k_min) / span
