"""Network: devices, links, routing, flows and metric plumbing.

This is the top of the simulator substrate: it instantiates hosts and
switches from a :class:`~repro.simulator.topology.ClosSpec`, wires the
bidirectional links (including the reverse-direction PFC peering),
installs forwarding tables, runs the RTT prober, tracks flows from
start to completion, and exposes the parameter-dispatch operations the
tuners use (:meth:`set_all_params`, :meth:`set_switch_ecn`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Union

from repro.simulator.dcqcn import DcqcnLaneBank, DcqcnParams
from repro.simulator.engine import Simulator
from repro.simulator.flow import Flow, FlowRecord
from repro.simulator.host import Host, HostConfig
from repro.simulator.link import Link
from repro.simulator.packet import Packet
from repro.simulator.stats import StatsCollector
from repro.simulator.switch import Switch, SwitchConfig
from repro.simulator.topology import ClosSpec, ClosTopology
from repro.simulator.units import DEFAULT_MTU, us


class Device(Protocol):
    """Anything packets can be delivered to."""

    def receive(self, packet: Packet, in_port: int) -> None:  # pragma: no cover
        ...


@dataclass
class NetworkConfig:
    """Everything needed to stand up a simulated fabric."""

    spec: ClosSpec = field(default_factory=ClosSpec)
    params: DcqcnParams = field(default_factory=DcqcnParams)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    mtu: int = DEFAULT_MTU
    seed: int = 1
    # RTT probing: every interval each host probes one random peer.
    probe_interval: float = us(100.0)
    probing_enabled: bool = True
    # Congestion control run by the RNICs: "dcqcn" (default, tunable by
    # Paraleon) or "swift" (delay-based, Section VI related work).
    cc: str = "dcqcn"
    swift_params: object = None
    # Hybrid engine mode ("off" | "lanes" | "hybrid"); None resolves
    # REPRO_HYBRID_ENGINE at construction time.  Only meaningful for
    # cc="dcqcn" — other controllers silently run the scalar path.
    hybrid_engine: Optional[str] = None


class Network:
    """A running simulated RDMA fabric."""

    def __init__(self, config: Optional[NetworkConfig] = None):
        self.config = config or NetworkConfig()
        self.config.params.validate()
        self.spec = self.config.spec
        self.topology = ClosTopology(self.spec)
        self.sim = Simulator()
        self._rng = random.Random(self.config.seed)

        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.tors: List[Switch] = []
        self.spines: List[Switch] = []

        self.flows: Dict[int, Flow] = {}
        self.active_flows: Dict[int, Flow] = {}
        self.records: List[FlowRecord] = []
        self._next_flow_id = 0
        self._completion_callbacks: List[Callable[[Flow], None]] = []

        self._build_devices()
        self._build_links()
        self._build_forwarding()

        # Hybrid engine wiring.  In "off" mode nothing below exists and
        # the datapath is byte-identical to the pre-hybrid simulator.
        from repro.simulator.hybrid import FluidFlowLanes, resolve_hybrid_mode

        mode = resolve_hybrid_mode(self.config.hybrid_engine)
        if self.config.cc != "dcqcn":
            mode = "off"  # lanes vectorize DcqcnRp only
        self.hybrid_mode = mode
        self.lane_bank: Optional[DcqcnLaneBank] = None
        self.fluid_lanes: Optional[FluidFlowLanes] = None
        if mode != "off":
            self.lane_bank = DcqcnLaneBank(self.sim)
            for host in self.hosts:
                host.lane_bank = self.lane_bank
        if mode == "hybrid":
            self.fluid_lanes = FluidFlowLanes(self)

        self.stats = StatsCollector(self)
        for host in self.hosts:
            host.on_data = self._on_data
            host.on_rtt_sample = self.stats.record_rtt

        if self.config.probing_enabled:
            self.sim.schedule(self.config.probe_interval, self._probe_tick)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_devices(self) -> None:
        spec, topo, cfg = self.spec, self.topology, self.config
        for h in range(spec.n_hosts):
            self.hosts.append(
                Host(
                    self.sim,
                    h,
                    topo.host_name(h),
                    cfg.params.copy(),
                    HostConfig(mtu=cfg.mtu),
                    cc_mode=cfg.cc,
                    swift_params=cfg.swift_params,
                )
            )
        for t in range(spec.n_tor):
            switch = Switch(
                self.sim,
                topo.tor_switch_id(t),
                topo.tor_name(t),
                cfg.switch,
                cfg.params.copy(),
                seed=cfg.seed,
            )
            self.switches.append(switch)
            self.tors.append(switch)
        for s in range(spec.n_spine):
            switch = Switch(
                self.sim,
                topo.spine_switch_id(s),
                topo.spine_name(s),
                cfg.switch,
                cfg.params.copy(),
                seed=cfg.seed,
            )
            self.switches.append(switch)
            self.spines.append(switch)

    def _connect(
        self,
        dev_a: Union[Host, Switch],
        dev_b: Union[Host, Switch],
        rate: float,
        delay: float,
        name_a: str,
        name_b: str,
    ) -> tuple:
        """Create the bidirectional link pair and PFC peering."""
        # Reserve port indices first: egress port index on each device
        # doubles as the ingress index for the reverse direction.
        port_a = len(dev_a.egress) if isinstance(dev_a, Switch) else 0
        port_b = len(dev_b.egress) if isinstance(dev_b, Switch) else 0
        link_ab = Link(self.sim, f"{name_a}->{name_b}", dev_a, dev_b, port_b, rate, delay)
        link_ba = Link(self.sim, f"{name_b}->{name_a}", dev_b, dev_a, port_a, rate, delay)
        dev_a.attach_link(link_ab)
        dev_b.attach_link(link_ba)
        egress_a = dev_a.egress[port_a] if isinstance(dev_a, Switch) else dev_a.egress
        egress_b = dev_b.egress[port_b] if isinstance(dev_b, Switch) else dev_b.egress
        if isinstance(dev_a, Switch):
            dev_a.set_ingress_peer(port_a, egress_b, delay)
        if isinstance(dev_b, Switch):
            dev_b.set_ingress_peer(port_b, egress_a, delay)
        return port_a, port_b

    def _build_links(self) -> None:
        spec, topo = self.spec, self.topology
        # host <-> ToR
        self._tor_host_port: Dict[int, int] = {}  # host id -> port on its ToR
        for h in range(spec.n_hosts):
            tor = self.tors[spec.tor_of(h)]
            host = self.hosts[h]
            _, tor_port = self._connect(
                host,
                tor,
                spec.host_rate_bps,
                spec.prop_delay_s,
                host.name,
                tor.name,
            )
            self._tor_host_port[h] = tor_port
        # ToR <-> spine (full bipartite)
        self._tor_spine_port: Dict[tuple, int] = {}   # (tor, spine) -> tor port
        self._spine_tor_port: Dict[tuple, int] = {}   # (spine, tor) -> spine port
        for t in range(spec.n_tor):
            for s in range(spec.n_spine):
                tor_port, spine_port = self._connect(
                    self.tors[t],
                    self.spines[s],
                    spec.uplink_rate_bps,
                    spec.prop_delay_s,
                    topo.tor_name(t),
                    topo.spine_name(s),
                )
                self._tor_spine_port[(t, s)] = tor_port
                self._spine_tor_port[(s, t)] = spine_port

    def _build_forwarding(self) -> None:
        spec = self.spec
        for t in range(spec.n_tor):
            tor = self.tors[t]
            uplinks = [self._tor_spine_port[(t, s)] for s in range(spec.n_spine)]
            for h in range(spec.n_hosts):
                if spec.tor_of(h) == t:
                    tor.set_forwarding(h, [self._tor_host_port[h]])
                else:
                    tor.set_forwarding(h, uplinks)
        for s in range(spec.n_spine):
            spine = self.spines[s]
            for h in range(spec.n_hosts):
                spine.set_forwarding(h, [self._spine_tor_port[(s, spec.tor_of(h))]])

    # ------------------------------------------------------------------
    # Warm rebuild
    # ------------------------------------------------------------------

    def reset(self, seed: Optional[int] = None) -> None:
        """Return the fabric to its just-built state without rebuilding.

        Topology construction (device graphs, link wiring, forwarding
        tables) dominates per-evaluation setup cost; everything else is
        counters and per-run state.  ``reset`` clears the latter and
        keeps the former, so a worker evaluating many candidates on the
        same scenario pays construction once.

        Determinism contract: a reset network followed by the same
        schedule of ``add_flow`` calls produces byte-identical flow
        records and interval digests to a freshly constructed one.
        Device resets run *before* the engine reset so event-handle
        cancellations keep the engine's bookkeeping consistent; the
        engine then restarts its sequence counter from zero, which
        restores identical tie-breaking among same-time events.
        """
        if seed is not None:
            self.config.seed = seed
        cfg = self.config
        # Devices first (cancelling their pending timers), engine second.
        for host in self.hosts:
            host.reset(cfg.params.copy())
        for switch in self.switches:
            switch.reset(cfg.params.copy(), seed=cfg.seed)
        if self.fluid_lanes is not None:
            self.fluid_lanes.reset()
        self.sim.reset()
        if self.lane_bank is not None:
            self.lane_bank.reset()
        self._rng = random.Random(cfg.seed)

        self.flows.clear()
        self.active_flows.clear()
        self.records.clear()
        self._next_flow_id = 0
        self._completion_callbacks.clear()

        self.stats = StatsCollector(self)
        for host in self.hosts:
            host.on_rtt_sample = self.stats.record_rtt

        if cfg.probing_enabled:
            self.sim.schedule(cfg.probe_interval, self._probe_tick)

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------

    def add_flow(
        self, src: int, dst: int, size: int, start_time: float, tag: str = ""
    ) -> Flow:
        """Register a flow; transmission begins at ``start_time``."""
        flow = Flow(
            flow_id=self._next_flow_id,
            src=src,
            dst=dst,
            size=size,
            start_time=start_time,
            tag=tag,
        )
        self._next_flow_id += 1
        self.flows[flow.flow_id] = flow
        self.active_flows[flow.flow_id] = flow
        self.sim.at(start_time, self._start_flow, flow)
        return flow

    def _start_flow(self, flow: Flow) -> None:
        if (
            self.fluid_lanes is not None
            and flow.size >= self.fluid_lanes.config.elephant_threshold
        ):
            self.fluid_lanes.add_flow(flow)
        else:
            self.hosts[flow.src].start_flow(flow)

    def on_flow_complete(self, callback: Callable[[Flow], None]) -> None:
        """Register a completion callback (used by ON-OFF workloads)."""
        self._completion_callbacks.append(callback)

    def _on_data(self, packet: Packet) -> None:
        flow = self.flows.get(packet.flow_id)
        if flow is None:
            return
        flow.bytes_received += packet.payload
        self.stats.record_flow_bytes(packet.flow_id, packet.payload)
        if flow.finish_time is None and flow.bytes_received >= flow.size:
            self._complete_flow(flow)

    def _complete_flow(self, flow: Flow) -> None:
        """Record a finished flow; shared by packet and fluid paths."""
        flow.finish_time = self.sim.now
        self.active_flows.pop(flow.flow_id, None)
        self.records.append(FlowRecord.from_flow(flow))
        self.stats.record_flow_complete()
        for callback in self._completion_callbacks:
            callback(flow)

    # ------------------------------------------------------------------
    # Parameter dispatch (what the controller does over gRPC in the paper)
    # ------------------------------------------------------------------

    def set_all_params(self, params: DcqcnParams) -> None:
        """Apply a full DCQCN setting to every RNIC and switch."""
        params.validate()
        for host in self.hosts:
            host.params = params.copy()
        for switch in self.switches:
            switch.params = params.copy()

    def set_switch_ecn(
        self, switch: Switch, k_min: int, k_max: int, p_max: float
    ) -> None:
        """Per-switch ECN threshold update (used by the ACC baseline)."""
        switch.params = switch.params.copy(k_min=k_min, k_max=k_max, p_max=p_max)
        switch.params.validate()

    def current_params(self) -> DcqcnParams:
        """The parameter set currently installed on host 0."""
        return self.hosts[0].params

    # ------------------------------------------------------------------
    # RTT probing
    # ------------------------------------------------------------------

    def _probe_tick(self) -> None:
        n = self.spec.n_hosts
        for host in self.hosts:
            # Only probe from hosts that are actually sending: idle
            # pairs would dilute O_RTT toward 1 regardless of tuning.
            if host.active_qp_count() == 0:
                continue
            peer = self._rng.randrange(n - 1)
            if peer >= host.host_id:
                peer += 1
            host.send_probe(peer)
        self.sim.schedule(self.config.probe_interval, self._probe_tick)

    # ------------------------------------------------------------------
    # Execution and global accounting
    # ------------------------------------------------------------------

    def run_until(self, end_time: float) -> int:
        return self.sim.run_until(end_time)

    def total_dropped_packets(self) -> int:
        return sum(s.dropped_packets for s in self.switches)

    def total_ecn_marked(self) -> int:
        return sum(s.ecn_marked_packets for s in self.switches)

    def total_pfc_pauses(self) -> int:
        return sum(s.pfc_pauses_sent for s in self.switches)

    def completed_flow_count(self) -> int:
        return len(self.records)

    def qp_sample(self) -> dict:
        """Aggregate DCQCN state across active QPs (read-only).

        Pulls from whichever congestion-control plane is live: the
        vectorized lane bank in ``lanes``/``hybrid`` mode (one numpy
        reduction instead of a per-QP walk), the scalar per-host RPs
        otherwise, plus the fluid elephant lanes in ``hybrid`` mode.
        """
        if self.lane_bank is not None:
            sample = self.lane_bank.qp_sample()
        else:
            sample = {
                "n": 0, "rate_sum": 0.0, "rate_min": 0.0,
                "alpha_sum": 0.0, "alpha_max": 0.0, "cnps": 0,
            }
            for host in self.hosts:
                part = host.qp_sample()
                if part["n"]:
                    sample["rate_min"] = (
                        min(sample["rate_min"], part["rate_min"])
                        if sample["n"] else part["rate_min"]
                    )
                    sample["n"] += part["n"]
                    sample["rate_sum"] += part["rate_sum"]
                    sample["alpha_sum"] += part["alpha_sum"]
                    sample["alpha_max"] = max(sample["alpha_max"], part["alpha_max"])
                    sample["cnps"] += part["cnps"]
        if self.fluid_lanes is not None:
            part = self.fluid_lanes.qp_sample()
            if part["n"]:
                sample["rate_min"] = (
                    min(sample["rate_min"], part["rate_min"])
                    if sample["n"] else part["rate_min"]
                )
                sample["n"] += part["n"]
                sample["rate_sum"] += part["rate_sum"]
                sample["alpha_sum"] += part["alpha_sum"]
                sample["alpha_max"] = max(sample["alpha_max"], part["alpha_max"])
                sample["cnps"] += part["cnps"]
        return sample

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(hosts={len(self.hosts)}, switches={len(self.switches)}, "
            f"flows={len(self.flows)})"
        )
