"""Links and egress ports.

A :class:`Link` is a unidirectional wire between two devices with a
fixed rate and propagation delay.  The *sending* side owns an egress
structure that serializes packets onto the link one at a time:

* :class:`QueuedEgress` — used by switches: a two-level strict-priority
  queue (control above data) with PFC pause on the data level and a
  dequeue callback so the owning switch can run buffer accounting.
* Hosts implement their own pull-based egress (see
  :mod:`repro.simulator.host`) but reuse :class:`Link` for delivery and
  the shared pause bookkeeping in :class:`PauseState`.

Packets of the same flow traverse a given link in FIFO order within
their priority level; the simulator never reorders same-priority
packets on a link.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, TYPE_CHECKING

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.network import Device


class Link:
    """Unidirectional link descriptor plus delivery helper."""

    __slots__ = (
        "sim",
        "name",
        "src",
        "dst",
        "dst_port",
        "rate_bps",
        "prop_delay",
        "tx_bytes",
        "tx_packets",
        "_bits_per_rate",
        "_schedule",
        "_dst_receive",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        src: "Device",
        dst: "Device",
        dst_port: int,
        rate_bps: float,
        prop_delay: float,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps!r}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay!r}")
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.tx_bytes = 0
        self.tx_packets = 0
        # Hot-path caches: the per-packet delivery path runs once per
        # packet per hop, so precompute the serialization divisor and
        # bind the scheduler / receiver methods once.  ``dst`` never
        # changes after construction.
        self._bits_per_rate = 8.0 / rate_bps
        self._schedule = sim.schedule
        self._dst_receive = dst.receive

    def serialization_delay(self, packet: Packet) -> float:
        return packet.wire_size * self._bits_per_rate

    def deliver(self, packet: Packet) -> None:
        """Schedule arrival at the far end after the propagation delay.

        Called by the egress side at the instant serialization ends.
        """
        self.tx_bytes += packet.wire_size
        self.tx_packets += 1
        self._schedule(self.prop_delay, self._dst_receive, packet, self.dst_port)

    def reset(self) -> None:
        """Zero the transfer counters (warm-rebuild path)."""
        self.tx_bytes = 0
        self.tx_packets = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.rate_bps / 1e9:.1f}Gbps, {self.prop_delay * 1e6:.1f}us)"


class PauseState:
    """PFC pause bookkeeping shared by switch and host egress.

    Tracks whether the data level is paused and accumulates total
    paused wall-time, which feeds the ``O_PFC`` term of the Paraleon
    utility function.
    """

    __slots__ = ("sim", "paused", "_paused_since", "total_paused_time", "pause_events")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.paused = False
        self._paused_since = 0.0
        self.total_paused_time = 0.0
        self.pause_events = 0

    def set_paused(self, paused: bool) -> bool:
        """Update pause state; returns True if the state changed."""
        if paused == self.paused:
            return False
        if paused:
            self._paused_since = self.sim.now
            self.pause_events += 1
        else:
            self.total_paused_time += self.sim.now - self._paused_since
        self.paused = paused
        return True

    def paused_time_until_now(self) -> float:
        """Cumulative paused time including any in-progress pause."""
        total = self.total_paused_time
        if self.paused:
            total += self.sim.now - self._paused_since
        return total

    def reset(self) -> None:
        """Forget all pause history (warm-rebuild path)."""
        self.paused = False
        self._paused_since = 0.0
        self.total_paused_time = 0.0
        self.pause_events = 0


class QueuedEgress:
    """Egress port with strict-priority control/data queues (switches).

    The owning switch supplies ``on_dequeue`` for shared-buffer and PFC
    accounting.  Control packets are never paused; data packets are
    held while ``pause.paused`` is set.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        on_dequeue: Optional[Callable[[Packet], None]] = None,
    ):
        self.sim = sim
        self.link = link
        self.on_dequeue = on_dequeue
        self.control_queue: deque[Packet] = deque()
        self.data_queue: deque[Packet] = deque()
        self.data_queue_bytes = 0
        # Fluid-plane load published at hybrid-engine sync points; the
        # switch adds it to the ECN marking depth.  Always 0 outside
        # "hybrid" mode, keeping marking arithmetic byte-identical.
        self.virtual_bytes = 0
        self.busy = False
        self.pause = PauseState(sim)
        # Running maxima/counters for stats.
        self.max_data_queue_bytes = 0
        # Bound-method caches for the serialization loop (one schedule
        # plus one deliver per packet through this port).
        self._schedule = sim.schedule
        self._deliver = link.deliver
        self._ser_delay = link.serialization_delay

    # -- queue state -------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self.data_queue_bytes + sum(p.wire_size for p in self.control_queue)

    def enqueue(self, packet: Packet) -> None:
        """Queue a packet and kick the serializer if idle."""
        if packet.is_control:
            self.control_queue.append(packet)
        else:
            self.data_queue.append(packet)
            self.data_queue_bytes += packet.wire_size
            if self.data_queue_bytes > self.max_data_queue_bytes:
                self.max_data_queue_bytes = self.data_queue_bytes
        if not self.busy:
            self._start_next()

    # -- PFC ----------------------------------------------------------

    def set_paused(self, paused: bool) -> None:
        changed = self.pause.set_paused(paused)
        if changed and not paused and not self.busy:
            self._start_next()

    # -- serialization loop -------------------------------------------

    def _pick(self) -> Optional[Packet]:
        if self.control_queue:
            return self.control_queue.popleft()
        if self.data_queue and not self.pause.paused:
            packet = self.data_queue.popleft()
            self.data_queue_bytes -= packet.wire_size
            return packet
        return None

    def _start_next(self) -> None:
        packet = self._pick()
        if packet is None:
            return
        self.busy = True
        self._schedule(self._ser_delay(packet), self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self._deliver(packet)
        if self.on_dequeue is not None:
            self.on_dequeue(packet)
        self.busy = False
        self._start_next()

    def reset(self) -> None:
        """Drop queued packets and all accounting (warm-rebuild path).

        Queued packets go back to the free-list; in-flight
        serialization events belong to the engine heap, which the
        owning network resets in the same pass.
        """
        for packet in self.control_queue:
            packet.release()
        for packet in self.data_queue:
            packet.release()
        self.control_queue.clear()
        self.data_queue.clear()
        self.data_queue_bytes = 0
        self.virtual_bytes = 0
        self.busy = False
        self.max_data_queue_bytes = 0
        self.pause.reset()
        self.link.reset()
