"""Shared-buffer output-queued switch with ECN marking and PFC.

The switch is the DCQCN *Congestion Point*: it RED-marks data packets
against its per-egress queue depth using the ``k_min``/``k_max``/
``p_max`` knobs of its :class:`~repro.simulator.dcqcn.DcqcnParams`.

Buffering follows the commodity shared-buffer model:

* All egress queues draw from one shared buffer pool.
* Per-*ingress-port* byte accounting drives PFC with the Dynamic
  Threshold (DT) algorithm: an ingress port whose buffered bytes
  exceed ``pfc_alpha × (buffer − occupied)`` sends XOFF to its
  upstream neighbour; XON is sent once occupancy falls below half the
  instantaneous threshold (hysteresis).  ``pfc_alpha = 1/8`` by
  default, matching the paper's discussion of PFC parameters.
* Packets that would overflow the shared buffer are dropped (PFC with
  sane headroom prevents this; tests assert losslessness).

Paraleon's measurement hook is the ``measurement`` attribute: when set
(typically only on ToR switches), every data packet is offered to it on
ingress.  With ``dedup_marking`` enabled the switch honours the
TOS-bit protocol (Keypoint 1): insert only unmarked packets and mark
them, so each packet lands in exactly one sketch network-wide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.simulator.dcqcn import DcqcnParams, ecn_mark_probability
from repro.simulator.engine import Simulator
from repro.simulator.link import Link, QueuedEgress
from repro.simulator.packet import Packet, PacketKind
from repro.simulator.units import mb
from repro.telemetry.registry import get_registry

_OBS_FLUSHES = get_registry().counter(
    "repro_monitor_flushes_total",
    "Observation-buffer flushes into a batched measurement point",
)
_OBS_FULL_FLUSHES = get_registry().counter(
    "repro_monitor_flushes_full_total",
    "Observation-buffer flushes forced by the ring buffer filling",
)

#: Default observation buffer flush threshold (packets). 4096 packets is
#: ~6 MB of 1500 B traffic — far more than one 1 ms monitor interval
#: moves through a scaled-down ToR, so in steady state the buffer
#: flushes once per interval at ``SwitchAgent.collect()``.
OBS_BUFFER_CAPACITY = 4096


class MeasurementPoint(Protocol):
    """Anything that can observe packets at a switch (e.g. a sketch)."""

    def observe(self, flow_id: int, wire_bytes: int) -> None:  # pragma: no cover
        ...


@dataclass
class SwitchConfig:
    """Static switch provisioning (not tuned at runtime)."""

    buffer_bytes: int = mb(2.0)
    pfc_enabled: bool = True
    pfc_alpha: float = 1.0 / 8.0  # DT aggressiveness; paper uses 1/8
    ecn_enabled: bool = True

    def validate(self) -> None:
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.pfc_alpha <= 0:
            raise ValueError("pfc_alpha must be positive")


class Switch:
    """An output-queued shared-buffer switch."""

    def __init__(
        self,
        sim: Simulator,
        switch_id: int,
        name: str,
        config: SwitchConfig,
        params: DcqcnParams,
        seed: int = 0,
    ):
        config.validate()
        self.sim = sim
        self.switch_id = switch_id
        self.name = name
        self.config = config
        self.params = params
        self._rng = random.Random((seed << 16) ^ switch_id ^ 0x5A17C4)

        self.egress: List[QueuedEgress] = []
        # Per-port forwarding: dst host id -> list of candidate egress ports.
        self.forward_table: Dict[int, List[int]] = {}
        # Reverse wiring for PFC: ingress port -> (peer egress, prop delay).
        self.ingress_peer: Dict[int, Tuple[object, float]] = {}

        self.occupied_bytes = 0
        self.ingress_bytes: Dict[int, int] = {}
        self._upstream_paused: Dict[int, bool] = {}

        self.measurement: Optional[MeasurementPoint] = None
        self.dedup_marking = True

        # Batched observation buffer (off until an agent enables it):
        # two append-only columns accumulating (flow_id, wire_bytes)
        # per data packet, flushed into ``measurement.observe_batch``
        # when the capacity threshold is hit or at collect().  Plain
        # lists beat preallocated ndarrays here: a list append is a
        # fraction of a numpy item-store, and the flush converts the
        # whole column in one C pass.
        self._obs_flow: List[int] = []
        self._obs_bytes: List[int] = []
        self._obs_capacity = 0
        self._obs_batched = False
        self.obs_flushes = 0

        # Counters.
        self.rx_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.ecn_marked_packets = 0
        self.data_packets_forwarded = 0
        self.pfc_pauses_sent = 0

    # ------------------------------------------------------------------
    # Wiring (done by the topology builder)
    # ------------------------------------------------------------------

    def attach_link(self, link: Link) -> int:
        """Add an egress link; returns the new port index."""
        port = len(self.egress)
        self.egress.append(QueuedEgress(self.sim, link, self._on_dequeue))
        self.ingress_bytes[port] = 0
        self._upstream_paused[port] = False
        return port

    def set_ingress_peer(self, port: int, peer_egress: object, prop_delay: float) -> None:
        """Record who to XOFF when ingress ``port`` congests."""
        self.ingress_peer[port] = (peer_egress, prop_delay)

    def set_forwarding(self, dst_host: int, ports: List[int]) -> None:
        if not ports:
            raise ValueError(f"no egress ports toward host {dst_host}")
        self.forward_table[dst_host] = list(ports)

    def reset(self, params: DcqcnParams, seed: int = 0) -> None:
        """Return the switch to its just-built state (warm-rebuild path).

        Re-seeds the marking RNG with the same derivation used at
        construction so a reset switch draws the identical random
        sequence as a freshly built one — required for digest-identical
        re-evaluation.  Wiring (egress list, forwarding, ingress peers)
        is topology state and survives untouched.
        """
        self.params = params
        self._rng = random.Random((seed << 16) ^ self.switch_id ^ 0x5A17C4)
        for egress in self.egress:
            egress.reset()
        self.occupied_bytes = 0
        for port in self.ingress_bytes:
            self.ingress_bytes[port] = 0
        for port in self._upstream_paused:
            self._upstream_paused[port] = False
        self.measurement = None
        self.dedup_marking = True
        self._obs_flow.clear()
        self._obs_bytes.clear()
        self._obs_batched = False
        self.obs_flushes = 0
        self.rx_packets = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.ecn_marked_packets = 0
        self.data_packets_forwarded = 0
        self.pfc_pauses_sent = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        """Ingress processing: measure, route, admit, mark, enqueue."""
        self.rx_packets += 1
        packet.ttl -= 1
        if packet.ttl <= 0:
            self._drop(packet)
            return

        if packet.kind == PacketKind.DATA and self.measurement is not None:
            self._observe(packet)

        out_port = self._route(packet)
        egress = self.egress[out_port]

        # Shared-buffer admission.
        if self.occupied_bytes + packet.wire_size > self.config.buffer_bytes:
            self._drop(packet)
            return
        self.occupied_bytes += packet.wire_size
        packet.ingress_port = in_port
        self.ingress_bytes[in_port] += packet.wire_size

        # ECN marking against the egress data-queue depth (CP role).
        if (
            self.config.ecn_enabled
            and packet.kind == PacketKind.DATA
        ):
            # virtual_bytes is the fluid plane's published load (hybrid
            # engine); 0 in off/lanes modes, so the depth — and every
            # downstream RNG draw — is unchanged there.
            prob = ecn_mark_probability(
                egress.data_queue_bytes + egress.virtual_bytes, self.params
            )
            if prob > 0.0 and self._rng.random() < prob:
                packet.ecn = True
                self.ecn_marked_packets += 1
            self.data_packets_forwarded += 1

        egress.enqueue(packet)

        if self.config.pfc_enabled:
            self._pfc_check_ingress(in_port)

    def _observe(self, packet: Packet) -> None:
        if self.dedup_marking:
            if packet.sketch_marked:
                return
            packet.sketch_marked = True
        if self._obs_batched:
            # Append to the buffer; the sketch sees the packets in this
            # exact order at the next flush, so batched state is
            # bit-identical to per-packet insertion.
            buffered = self._obs_flow
            buffered.append(packet.flow_id)
            self._obs_bytes.append(packet.wire_size)
            if len(buffered) >= self._obs_capacity:
                _OBS_FULL_FLUSHES.inc()
                self.flush_observations()
        else:
            self.measurement.observe(packet.flow_id, packet.wire_size)

    # ------------------------------------------------------------------
    # Batched observation buffer (Paraleon agents opt in)
    # ------------------------------------------------------------------

    def enable_batched_observation(
        self, capacity: int = OBS_BUFFER_CAPACITY
    ) -> None:
        """Buffer data-packet observations and flush them in batches.

        Requires a ``measurement`` that implements ``observe_batch``
        (e.g. :class:`~repro.sketch.elastic.ElasticSketch`); scalar
        monitors such as NetFlow keep the per-packet ``observe`` path.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.measurement is None or not hasattr(
            self.measurement, "observe_batch"
        ):
            raise ValueError(
                "batched observation needs a measurement point with "
                "observe_batch()"
            )
        self._obs_capacity = capacity
        self._obs_flow.clear()
        self._obs_bytes.clear()
        self._obs_batched = True

    @property
    def obs_buffered(self) -> int:
        """Observations currently waiting in the batch buffer."""
        return len(self._obs_flow)

    def flush_observations(self) -> int:
        """Drain the observation buffer into the measurement point.

        Returns the number of packets flushed.  Agents call this right
        before reading the sketch so the register state at read time is
        identical to the scalar per-packet path.
        """
        n = len(self._obs_flow)
        if n == 0:
            return 0
        flows = np.asarray(self._obs_flow, dtype=np.int64)
        nbytes = np.asarray(self._obs_bytes, dtype=np.int64)
        self._obs_flow.clear()
        self._obs_bytes.clear()
        self.measurement.observe_batch(flows, nbytes)
        self.obs_flushes += 1
        _OBS_FLUSHES.inc()
        return n

    def _route(self, packet: Packet) -> int:
        ports = self.forward_table.get(packet.dst)
        if ports is None:
            raise KeyError(
                f"{self.name}: no route to host {packet.dst} "
                f"(packet {packet!r})"
            )
        if len(ports) == 1:
            return ports[0]
        # ECMP: deterministic per-flow hash so a flow never reorders.
        h = (packet.flow_id * 2654435761 + packet.src * 40503 + packet.dst) & 0xFFFFFFFF
        return ports[h % len(ports)]

    def _drop(self, packet: Packet) -> None:
        self.dropped_packets += 1
        self.dropped_bytes += packet.wire_size
        packet.release()

    def _on_dequeue(self, packet: Packet) -> None:
        """Egress serialization finished: release buffer, maybe XON."""
        self.occupied_bytes -= packet.wire_size
        in_port = packet.ingress_port
        self.ingress_bytes[in_port] -= packet.wire_size
        if self.config.pfc_enabled:
            self._pfc_check_ingress(in_port)

    # ------------------------------------------------------------------
    # PFC (per-ingress-port dynamic threshold)
    # ------------------------------------------------------------------

    def _dt_threshold(self) -> float:
        free = self.config.buffer_bytes - self.occupied_bytes
        return self.config.pfc_alpha * max(free, 0)

    def _pfc_check_ingress(self, port: int) -> None:
        peer = self.ingress_peer.get(port)
        if peer is None:
            return
        threshold = self._dt_threshold()
        buffered = self.ingress_bytes[port]
        if not self._upstream_paused[port] and buffered > threshold:
            self._send_pfc(port, paused=True)
        elif self._upstream_paused[port] and buffered <= threshold / 2.0:
            self._send_pfc(port, paused=False)

    def _send_pfc(self, port: int, paused: bool) -> None:
        peer_egress, prop_delay = self.ingress_peer[port]
        self._upstream_paused[port] = paused
        if paused:
            self.pfc_pauses_sent += 1
        # PFC frames are tiny and ride the highest priority; model them
        # as a pure propagation-delay signal.
        self.sim.schedule(prop_delay, peer_egress.set_paused, paused)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_paused_time(self) -> float:
        """Cumulative time this switch's egress ports spent PFC-paused."""
        return sum(e.pause.paused_time_until_now() for e in self.egress)

    def queue_bytes(self, port: int) -> int:
        return self.egress[port].data_queue_bytes

    def telemetry_sample(self) -> dict:
        """Read-only counters for the flight recorder.

        ``queue_bytes`` is the deepest egress backlog (data plus the
        hybrid engine's virtual fluid bytes, the same depth the ECN
        marker sees); the rest are cumulative since construction.
        """
        deepest = 0
        for egress in self.egress:
            depth = egress.data_queue_bytes + egress.virtual_bytes
            if depth > deepest:
                deepest = depth
        return {
            "queue_bytes": deepest,
            "ecn_marked": self.ecn_marked_packets,
            "pfc_pauses": self.pfc_pauses_sent,
            "dropped": self.dropped_packets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={len(self.egress)})"
