"""Packet model for the RoCEv2 simulator.

A single ``Packet`` class covers data and control traffic; the
``kind`` field selects behaviour at the receiving device.  Control
packets (CNP, probe, probe-ack) ride a separate strict-priority queue
and are *not* subject to PFC pause, mirroring the usual deployment
where congestion notifications use a dedicated traffic class.

The ``sketch_marked`` flag models the unused TOS bit Paraleon uses to
guarantee each packet is inserted into exactly one sketch along its
path (DESIGN.md, Keypoint 1).
"""

from __future__ import annotations

import itertools
from enum import IntEnum

from repro import env
from repro.simulator.units import CONTROL_PACKET_BYTES, HEADER_BYTES

INITIAL_TTL = 64

#: Free-list of recycled Packet objects.  A packet-level simulator
#: allocates and discards one object per packet per flow; recycling
#: them cuts a measurable slice of allocator work out of the hot path.
#: The pool only ever yields a packet whose every field has been
#: re-initialised, so recycled packets are indistinguishable from fresh
#: ones (including a fresh ``pkt_id``).  Disable with
#: ``REPRO_PACKET_FREELIST=0`` when debugging object identity.
_FREELIST: list = []
_FREELIST_MAX = 8192
_FREELIST_ENABLED = env.get("REPRO_PACKET_FREELIST")


def freelist_occupancy() -> int:
    """Packets currently parked in the free-list (telemetry gauge)."""
    return len(_FREELIST)


class PacketKind(IntEnum):
    """What a packet is, which decides how devices treat it."""

    DATA = 0
    CNP = 1
    PROBE = 2
    PROBE_ACK = 3
    ACK = 4  # per-packet delay feedback (Swift-style CC only)


_packet_ids = itertools.count()


class Packet:
    """A packet in flight.

    Attributes
    ----------
    flow_id:
        Flow (QP) the packet belongs to; -1 for probes.
    src, dst:
        Host ids of the original sender and the final destination.
    seq:
        Byte offset of the first payload byte within the flow.
    payload:
        Payload bytes carried (0 for control packets).
    wire_size:
        Bytes occupying links and buffers (payload + header).
    ecn:
        Congestion Experienced mark set by a switch.
    sketch_marked:
        TOS bit: the packet has already been inserted into a sketch.
    ttl:
        Decremented at each switch hop; used for hop counting.
    sent_at:
        Time the packet left the source NIC (probe RTT measurement).
    last:
        True for the final packet of a flow (completion detection).
    """

    __slots__ = (
        "pkt_id",
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "payload",
        "wire_size",
        "ecn",
        "sketch_marked",
        "ttl",
        "sent_at",
        "last",
        "ingress_port",
        "probe_hops",
        "_pooled",
    )

    def __init__(
        self,
        kind: PacketKind,
        flow_id: int,
        src: int,
        dst: int,
        payload: int = 0,
        seq: int = 0,
        sent_at: float = 0.0,
        last: bool = False,
    ):
        self.pkt_id = next(_packet_ids)
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload = payload
        if kind == PacketKind.DATA:
            self.wire_size = payload + HEADER_BYTES
        else:
            self.wire_size = CONTROL_PACKET_BYTES
        self.ecn = False
        self.sketch_marked = False
        self.ttl = INITIAL_TTL
        self.sent_at = sent_at
        self.last = last
        # Transient per-hop state: which port the packet entered the
        # current switch on (for shared-buffer / PFC accounting).
        self.ingress_port = -1
        # Forward-path hop count copied into a PROBE_ACK so the prober
        # can compute the Swift-style base path delay.
        self.probe_hops = 0
        self._pooled = False

    def release(self) -> None:
        """Return this packet to the free-list.

        Only the device that finally consumes a packet (the destination
        host, or a switch dropping it) may call this; after release the
        object can be handed out again by :func:`data_packet` with all
        fields re-initialised.  Idempotent.
        """
        if self._pooled or not _FREELIST_ENABLED:
            return
        if len(_FREELIST) < _FREELIST_MAX:
            self._pooled = True
            _FREELIST.append(self)

    @property
    def is_control(self) -> bool:
        """Control packets use the unpausable strict-priority queue.

        CNPs, ACKs and probe replies ride the lossless high-priority
        class; PROBE packets deliberately share the *data* class so
        measured RTT reflects data-path queueing and PFC pauses.
        """
        return self.kind in (PacketKind.CNP, PacketKind.PROBE_ACK, PacketKind.ACK)

    def hops_taken(self) -> int:
        """Switch hops traversed so far (TTL decrements)."""
        return INITIAL_TTL - self.ttl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind.name}, flow={self.flow_id}, "
            f"{self.src}->{self.dst}, seq={self.seq}, wire={self.wire_size})"
        )


def data_packet(
    flow_id: int, src: int, dst: int, payload: int, seq: int, last: bool
) -> Packet:
    """Convenience constructor for a DATA packet (free-list backed)."""
    if _FREELIST:
        packet = _FREELIST.pop()
        packet.pkt_id = next(_packet_ids)
        packet.kind = PacketKind.DATA
        packet.flow_id = flow_id
        packet.src = src
        packet.dst = dst
        packet.seq = seq
        packet.payload = payload
        packet.wire_size = payload + HEADER_BYTES
        packet.ecn = False
        packet.sketch_marked = False
        packet.ttl = INITIAL_TTL
        packet.sent_at = 0.0
        packet.last = last
        packet.ingress_port = -1
        packet.probe_hops = 0
        packet._pooled = False
        return packet
    return Packet(
        PacketKind.DATA, flow_id, src, dst, payload=payload, seq=seq, last=last
    )


def cnp_packet(flow_id: int, src: int, dst: int) -> Packet:
    """CNP from the notification point back to the reaction point.

    ``src`` is the NP (receiver of the marked data), ``dst`` the RP.
    """
    return Packet(PacketKind.CNP, flow_id, src, dst)
