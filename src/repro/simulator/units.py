"""Unit helpers and physical constants for the simulator.

All simulator code uses SI base units internally: seconds for time,
bytes for sizes, and bits-per-second for rates.  These helpers exist so
configuration code can be written in the units the paper uses
(microseconds, KB/MB, Gbps) without sprinkling conversion factors.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICROSECONDS


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLISECONDS


# ---------------------------------------------------------------------------
# Sizes (bytes)
# ---------------------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1 << 10
MIB = 1 << 20


def kb(value: float) -> int:
    """Kilobytes (decimal) to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Megabytes (decimal) to bytes."""
    return int(value * MB)


# ---------------------------------------------------------------------------
# Rates (bits per second)
# ---------------------------------------------------------------------------

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * MBPS


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * GBPS


def serialization_delay(size_bytes: int, rate_bps: float) -> float:
    """Time to put ``size_bytes`` on the wire at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    return (size_bytes * 8.0) / rate_bps


def bytes_in_flight(rate_bps: float, delay_s: float) -> float:
    """Bandwidth-delay product in bytes."""
    return rate_bps * delay_s / 8.0


# ---------------------------------------------------------------------------
# Packet framing constants
# ---------------------------------------------------------------------------

# RoCEv2 per-packet overhead: Ethernet (14) + IP (20) + UDP (8) + BTH (12)
# + ICRC/FCS (8).  We fold it into a single constant.
HEADER_BYTES = 62

# Default payload per data packet ("cell").  Real RoCEv2 MTUs are 1024 or
# 4096; a 4 KB cell keeps pure-Python event counts tractable at the
# simulated link rates while preserving queueing behaviour in BDP units.
DEFAULT_MTU = 4000

# Control packets (CNP, ACK, probes) are small and queue at high priority.
CONTROL_PACKET_BYTES = 64
