"""Event scheduler for the discrete-event simulator.

The engine is a classic calendar built on :mod:`heapq`.  Events are
callables scheduled at an absolute simulated time; ties are broken by a
monotonically increasing sequence number so dispatch order is
deterministic and FIFO among same-time events.

Time is kept in *seconds* as a float.  All of the network code derives
its delays from rates and sizes, so the only requirement on the unit is
consistency; see :mod:`repro.simulator.units` for helpers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped at
    dispatch time.  This keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it at dispatch time."""
        self.cancelled = True
        # Drop references eagerly; a cancelled event can linger in the
        # heap for a while and we do not want it pinning packet objects.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation engine.

    Usage::

        sim = Simulator()
        sim.schedule(1e-6, callback, arg1, arg2)   # relative delay
        sim.at(0.5, callback)                      # absolute time
        sim.run_until(1.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._events_dispatched = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_dispatched

    @property
    def pending_events(self) -> int:
        """Events still in the heap, including lazily cancelled ones."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now={self._now!r}"
            )
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Dispatch the next event.  Returns False if none remain."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        self._events_dispatched += 1
        ev.fn(*ev.args)
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``.

        Returns the number of events dispatched by this call.  The clock
        is advanced to ``end_time`` on return even if the heap drained
        early, so back-to-back ``run_until`` calls see consistent time.
        ``max_events`` is a safety valve against runaway event storms.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time!r}) is before now={self._now!r}"
            )
        dispatched = 0
        self._running = True
        try:
            while True:
                self._drop_cancelled_head()
                if not self._heap or self._heap[0].time > end_time:
                    break
                ev = heapq.heappop(self._heap)
                self._now = ev.time
                self._events_dispatched += 1
                dispatched += 1
                ev.fn(*ev.args)
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
        if self._now < end_time:
            self._now = end_time
        return dispatched

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events``)."""
        dispatched = 0
        while self.step():
            dispatched += 1
            if max_events is not None and dispatched >= max_events:
                break
        return dispatched

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
