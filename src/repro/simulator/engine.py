"""Event scheduler for the discrete-event simulator.

The engine is a classic calendar built on :mod:`heapq`.  Events are
callables scheduled at an absolute simulated time; ties are broken by a
monotonically increasing sequence number so dispatch order is
deterministic and FIFO among same-time events.

Time is kept in *seconds* as a float.  All of the network code derives
its delays from rates and sizes, so the only requirement on the unit is
consistency; see :mod:`repro.simulator.units` for helpers.

Performance notes
-----------------

The heap stores ``(time, seq, handle)`` tuples rather than bare
handles: every sift inside :func:`heapq.heappush`/``heappop`` then
compares C-level tuples instead of calling ``EventHandle.__lt__``,
which is the single hottest comparison in the simulator.

Cancellation stays lazy (O(1)), but the engine now tracks how many
cancelled entries are parked in the heap and compacts — an in-place
filter plus :func:`heapq.heapify` — once they are the majority.  This
bounds memory under workloads that cancel and re-arm timers at a high
rate (the host egress wake timer does exactly that), where previously
cancelled handles could linger until their scheduled time arrived.
Compaction preserves dispatch order exactly: the ordering key
``(time, seq)`` is unique per event, so heapify rebuilds the same
total order the lazy heap would have produced.
"""

from __future__ import annotations

import heapq
import itertools
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

#: Compact the heap once more than this many cancelled entries are
#: parked in it *and* they outnumber the live ones (>50% cancelled).
_COMPACT_MIN_CANCELLED = 64


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped at
    dispatch time.  This keeps cancellation O(1); the owning simulator
    counts cancellations and compacts the heap when they dominate.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so the engine skips it at dispatch time."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly; a cancelled event can linger in the
        # heap for a while and we do not want it pinning packet objects.
        self.fn = _noop
        self.args = ()
        sim = self.sim
        if sim is not None:
            sim._cancelled += 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation engine.

    Usage::

        sim = Simulator()
        sim.schedule(1e-6, callback, arg1, arg2)   # relative delay
        sim.at(0.5, callback)                      # absolute time
        sim.run_until(1.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Heap of (time, seq, EventHandle) — see module docstring.
        self._heap: list = []
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._events_dispatched = 0
        self._cancelled = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_dispatched

    @property
    def pending_events(self) -> int:
        """Events still in the heap, including lazily cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still parked in the heap."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Heap compaction passes performed so far."""
        return self._compactions

    def telemetry_snapshot(self) -> dict:
        """Engine health counters for the telemetry layer.

        Cheap (four attribute reads); sampled at monitor-interval
        boundaries rather than per event so the dispatch loop stays
        untouched.
        """
        return {
            "events_dispatched": self._events_dispatched,
            "heap_size": len(self._heap),
            "cancelled_pending": self._cancelled,
            "compactions": self._compactions,
        }

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        time = self._now + delay
        handle = EventHandle(time, self._next_seq(), fn, args, self)
        _heappush(self._heap, (time, handle.seq, handle))
        if self._cancelled > _COMPACT_MIN_CANCELLED:
            self._maybe_compact()
        return handle

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now={self._now!r}"
            )
        handle = EventHandle(time, self._next_seq(), fn, args, self)
        _heappush(self._heap, (time, handle.seq, handle))
        if self._cancelled > _COMPACT_MIN_CANCELLED:
            self._maybe_compact()
        return handle

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Dispatch the next event.  Returns False if none remain."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        _time, _seq, ev = _heappop(self._heap)
        self._now = _time
        self._events_dispatched += 1
        ev.fn(*ev.args)
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``.

        Returns the number of events dispatched by this call.  The clock
        is advanced to ``end_time`` on return even if the heap drained
        early, so back-to-back ``run_until`` calls see consistent time.
        ``max_events`` is a safety valve against runaway event storms.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time!r}) is before now={self._now!r}"
            )
        dispatched = 0
        # Hot loop: bind everything to locals.  ``self._heap`` is only
        # ever mutated in place (push/pop/compact), so the local alias
        # stays valid across callbacks that schedule or cancel.
        heap = self._heap
        pop = _heappop
        self._running = True
        try:
            while heap:
                head = heap[0]
                time = head[0]
                if time > end_time:
                    break
                ev = head[2]
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                pop(heap)
                self._now = time
                dispatched += 1
                ev.fn(*ev.args)
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
            self._events_dispatched += dispatched
        if self._now < end_time:
            self._now = end_time
        return dispatched

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains (or ``max_events``).

        Shares the hot-loop structure of :meth:`run_until` so cancelled
        entries are skipped with the same ``_cancelled`` bookkeeping and
        the heap is compacted on the same threshold — previously this
        path popped cancelled entries one at a time via :meth:`step`
        and never compacted, so a cancel-heavy drain could hold the
        whole dead backlog in memory until it was reached.
        """
        dispatched = 0
        heap = self._heap
        pop = _heappop
        self._running = True
        try:
            while heap:
                ev = heap[0][2]
                if ev.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    if self._cancelled > _COMPACT_MIN_CANCELLED:
                        self._maybe_compact()
                    continue
                pop(heap)
                self._now = ev.time
                dispatched += 1
                ev.fn(*ev.args)
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
            self._events_dispatched += dispatched
        return dispatched

    def reset(self) -> None:
        """Return the engine to its just-constructed state.

        Part of the warm-rebuild path: a worker that evaluates many
        candidates on the same scenario resets the engine (and the
        network on top of it) instead of constructing new objects.
        The event sequence counter restarts from zero so tie-breaking
        among same-time events — and therefore dispatch order — is
        identical to a freshly built simulator.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._heap.clear()
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._events_dispatched = 0
        self._cancelled = 0
        self._compactions = 0

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _heappop(heap)
            self._cancelled -= 1

    def _maybe_compact(self) -> None:
        """Rebuild the heap in place once cancelled entries dominate."""
        heap = self._heap
        if self._cancelled * 2 < len(heap):
            return
        # In-place so aliases held by a running ``run_until`` stay live.
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1
