"""Two-tier CLOS (leaf-spine) topology builder.

The paper's simulations use a two-tier CLOS of 8 ToR switches, 4 leaf
(spine) switches and 128 servers at 4:1 oversubscription; the testbed
uses 8 ToR / 4 leaf / 32 servers at 1:1.  :class:`ClosSpec` captures
that family: ``hosts_per_tor`` hosts attach to each of ``n_tor`` ToR
switches, and every ToR connects to every one of ``n_spine`` spine
switches.

Host ids are dense integers ``0 .. n_hosts-1`` laid out ToR-major, so
``tor_of(h) == h // hosts_per_tor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.simulator.units import gbps, us


@dataclass(frozen=True)
class ClosSpec:
    """Shape and link provisioning of a two-tier CLOS fabric."""

    n_tor: int = 4
    n_spine: int = 2
    hosts_per_tor: int = 4
    host_rate_bps: float = gbps(10.0)
    uplink_rate_bps: float = gbps(10.0)
    prop_delay_s: float = us(5.0)

    def __post_init__(self) -> None:
        if self.n_tor < 1 or self.n_spine < 1 or self.hosts_per_tor < 1:
            raise ValueError("topology dimensions must be >= 1")
        if self.host_rate_bps <= 0 or self.uplink_rate_bps <= 0:
            raise ValueError("link rates must be positive")
        if self.prop_delay_s < 0:
            raise ValueError("propagation delay must be >= 0")

    @property
    def n_hosts(self) -> int:
        return self.n_tor * self.hosts_per_tor

    @property
    def n_switches(self) -> int:
        return self.n_tor + self.n_spine

    @property
    def oversubscription(self) -> float:
        """Downlink to uplink capacity ratio at a ToR."""
        down = self.hosts_per_tor * self.host_rate_bps
        up = self.n_spine * self.uplink_rate_bps
        return down / up

    def tor_of(self, host_id: int) -> int:
        if not 0 <= host_id < self.n_hosts:
            raise ValueError(f"host id {host_id} out of range")
        return host_id // self.hosts_per_tor

    def hosts_of_tor(self, tor: int) -> List[int]:
        if not 0 <= tor < self.n_tor:
            raise ValueError(f"tor id {tor} out of range")
        base = tor * self.hosts_per_tor
        return list(range(base, base + self.hosts_per_tor))

    def path_hops(self, src: int, dst: int) -> int:
        """Switch hops on the forwarding path between two hosts."""
        if src == dst:
            return 0
        if self.tor_of(src) == self.tor_of(dst):
            return 1  # ToR only
        return 3  # ToR -> spine -> ToR

    def base_rtt(self, src: int, dst: int, probe_wire_bytes: int = 64) -> float:
        """Zero-queue round-trip time between two hosts.

        Propagation on every traversed link in both directions plus the
        probe's serialization on each forward link.  This is the
        normalization denominator used for ``O_RTT`` (the paper's
        Swift-style *base path delay*, taken round-trip).
        """
        hops = self.path_hops(src, dst)
        links_one_way = hops + 1
        prop = 2.0 * links_one_way * self.prop_delay_s
        # Forward serialization of the probe at each hop; the ack is
        # the same size so double it.
        rates = [self.host_rate_bps] + [self.uplink_rate_bps] * hops
        ser = sum(probe_wire_bytes * 8.0 / r for r in rates[:links_one_way])
        return prop + 2.0 * ser


# Canonical topologies from the paper -------------------------------------


#: Named scale classes used across the benchmark suite (see DESIGN.md
#: §5 for the scale-down policy).  Lives here — not in the experiments
#: layer — because the simulator's own fluid surrogate keys off these
#: shapes; :mod:`repro.experiments.scenarios` re-exports it.
SPECS = {
    "small": ClosSpec(n_tor=2, n_spine=1, hosts_per_tor=4),
    "medium": ClosSpec(n_tor=4, n_spine=2, hosts_per_tor=4),
    "large": ClosSpec(n_tor=8, n_spine=4, hosts_per_tor=4),
    # The testbed analogue: 1:1 oversubscription, shorter wires.
    "testbed": ClosSpec(
        n_tor=4,
        n_spine=4,
        hosts_per_tor=4,
        host_rate_bps=gbps(10.0),
        uplink_rate_bps=gbps(10.0),
        prop_delay_s=us(2.0),
    ),
}


def paper_simulation_spec(scale: float = 1.0) -> ClosSpec:
    """The NS3 evaluation fabric (Section IV-B), optionally scaled down.

    The paper uses 8 ToR / 4 leaf / 128 servers, 100 Gbps everywhere,
    4:1 oversubscription, 5 us propagation delay.  ``scale`` < 1 shrinks
    host count and link rate together so queueing dynamics in BDP units
    are preserved while pure-Python event counts stay tractable.
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    hosts_per_tor = max(2, round(16 * scale))
    rate = gbps(max(1.0, 100.0 * scale))
    return ClosSpec(
        n_tor=8,
        n_spine=4,
        hosts_per_tor=hosts_per_tor,
        host_rate_bps=rate,
        uplink_rate_bps=rate,
        prop_delay_s=us(5.0),
    )


def paper_testbed_spec(scale: float = 1.0) -> ClosSpec:
    """The hardware testbed fabric (Section IV-C), optionally scaled.

    8 ToR / 4 leaf / 32 H100 servers, 400 Gbps links, 1:1
    oversubscription (modelled with proportionally faster uplinks).
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    hosts_per_tor = max(2, round(4 * scale))
    rate = gbps(max(1.0, 400.0 * scale))
    return ClosSpec(
        n_tor=8,
        n_spine=4,
        hosts_per_tor=hosts_per_tor,
        host_rate_bps=rate,
        uplink_rate_bps=rate * hosts_per_tor / 4.0,
        prop_delay_s=us(2.0),
    )


class ClosTopology:
    """Concrete adjacency derived from a :class:`ClosSpec`.

    Pure data — the :class:`~repro.simulator.network.Network` turns it
    into devices and links.  Kept separate so tests can reason about
    routing without instantiating a simulator.
    """

    def __init__(self, spec: ClosSpec):
        self.spec = spec

    # Device naming --------------------------------------------------------

    def tor_name(self, tor: int) -> str:
        return f"tor{tor}"

    def spine_name(self, spine: int) -> str:
        return f"spine{spine}"

    def host_name(self, host: int) -> str:
        return f"h{host}"

    # Switch id layout: ToRs first, then spines.

    def tor_switch_id(self, tor: int) -> int:
        return tor

    def spine_switch_id(self, spine: int) -> int:
        return self.spec.n_tor + spine

    def is_tor(self, switch_id: int) -> bool:
        return switch_id < self.spec.n_tor
