"""Per-monitor-interval runtime metrics.

The Paraleon controller consumes three network-wide signals per monitor
interval ``λ_MI`` (Section III-C):

* ``O_TP`` — mean bandwidth utilization of *active* host uplinks;
* ``O_RTT`` — mean Swift-style normalized RTT (base path delay divided
  by measured RTT, clipped to 1);
* ``O_PFC`` — ``1 − mean fraction of the interval devices spent
  PFC-paused``.

:class:`StatsCollector` snapshots cumulative device counters at
interval boundaries and differences them, and also keeps the
ground-truth per-flow byte counts for the interval — the oracle flow
size distribution that monitoring-accuracy experiments (Fig. 10/11)
compare sketches against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.network import Network


@dataclass
class IntervalStats:
    """Metrics for one monitor interval."""

    t_start: float
    t_end: float
    throughput_util: float        # O_TP in [0, 1]
    norm_rtt: float               # O_RTT in (0, 1]
    pfc_ok: float                 # O_PFC in [0, 1]
    mean_rtt: float               # raw mean RTT (s); 0 if no samples
    rtt_samples: int
    pause_fraction: float         # mean paused fraction across devices
    active_uplinks: int
    total_tx_bytes: int           # across host uplinks
    flow_bytes: Dict[int, int] = field(default_factory=dict)  # oracle FSD
    dropped_packets: int = 0
    # Flows that completed during this interval.  Deliberately absent
    # from snapshot() (and therefore from traces, persistence, and the
    # interval digest) — only the flight recorder reads it.
    completed_flows: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def snapshot(self) -> dict:
        """Plain-dict view of this interval (no oracle flow table).

        The single serialization of an interval: the utility function
        accepts it, the trace emitter writes it, and
        :mod:`repro.experiments.persistence` persists it — so the
        per-interval field list lives in exactly one place.
        """
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "throughput_util": self.throughput_util,
            "norm_rtt": self.norm_rtt,
            "pfc_ok": self.pfc_ok,
            "mean_rtt": self.mean_rtt,
            "rtt_samples": self.rtt_samples,
            "pause_fraction": self.pause_fraction,
            "active_uplinks": self.active_uplinks,
            "total_tx_bytes": self.total_tx_bytes,
            "dropped_packets": self.dropped_packets,
        }


class StatsCollector:
    """Interval-based metric collection over a :class:`Network`."""

    def __init__(self, network: "Network"):
        self.network = network
        self._interval_start = network.sim.now
        self._uplink_tx_base: List[int] = self._uplink_tx_now()
        self._pause_base: List[float] = self._pause_now()
        self._drops_base = self._drops_now()
        self._rtt_samples: List[Tuple[int, int, float, int]] = []
        self._flow_bytes: Dict[int, int] = {}
        self._completed_flows = 0
        self.history: List[IntervalStats] = []

    # -- feeds from the network ----------------------------------------

    def record_rtt(self, src: int, dst: int, rtt: float, hops: int) -> None:
        self._rtt_samples.append((src, dst, rtt, hops))

    def record_flow_bytes(self, flow_id: int, payload: int) -> None:
        self._flow_bytes[flow_id] = self._flow_bytes.get(flow_id, 0) + payload

    def record_flow_complete(self) -> None:
        self._completed_flows += 1

    # -- snapshots -------------------------------------------------------

    def _uplink_tx_now(self) -> List[int]:
        # Data bytes only: control chatter (CNPs, probe acks) must not
        # make an idle uplink look "active" to O_TP.
        return [
            host.egress.data_tx_bytes if host.egress else 0
            for host in self.network.hosts
        ]

    def _pause_now(self) -> List[float]:
        values = [h.total_paused_time() for h in self.network.hosts]
        values.extend(s.total_paused_time() for s in self.network.switches)
        return values

    def _drops_now(self) -> int:
        return sum(s.dropped_packets for s in self.network.switches)

    def snapshot(self) -> Optional[dict]:
        """The most recently closed interval as a plain dict.

        None until the first :meth:`end_interval`.
        """
        return self.history[-1].snapshot() if self.history else None

    # -- interval boundary -------------------------------------------------

    def end_interval(self) -> IntervalStats:
        """Close the current interval and start the next one."""
        now = self.network.sim.now
        duration = now - self._interval_start
        if duration <= 0:
            raise ValueError("end_interval called with zero-length interval")

        tx_now = self._uplink_tx_now()
        pause_now = self._pause_now()
        drops_now = self._drops_now()

        utils: List[float] = []
        total_tx = 0
        for host, base, cur in zip(self.network.hosts, self._uplink_tx_base, tx_now):
            delta = cur - base
            total_tx += delta
            if delta > 0 and host.egress is not None:
                capacity = host.egress.link.rate_bps * duration / 8.0
                utils.append(min(delta / capacity, 1.0))
        throughput_util = sum(utils) / len(utils) if utils else 0.0

        gammas: List[float] = []
        rtts: List[float] = []
        for src, dst, rtt, hops in self._rtt_samples:
            base_rtt = self.network.spec.base_rtt(src, dst)
            if rtt > 0:
                gammas.append(min(base_rtt / rtt, 1.0))
                rtts.append(rtt)
        norm_rtt = sum(gammas) / len(gammas) if gammas else 1.0
        mean_rtt = sum(rtts) / len(rtts) if rtts else 0.0

        pause_fracs = [
            max(cur - base, 0.0) / duration
            for base, cur in zip(self._pause_base, pause_now)
        ]
        pause_fraction = sum(pause_fracs) / len(pause_fracs) if pause_fracs else 0.0

        stats = IntervalStats(
            t_start=self._interval_start,
            t_end=now,
            throughput_util=throughput_util,
            norm_rtt=norm_rtt,
            pfc_ok=max(0.0, 1.0 - pause_fraction),
            mean_rtt=mean_rtt,
            rtt_samples=len(self._rtt_samples),
            pause_fraction=pause_fraction,
            active_uplinks=len(utils),
            total_tx_bytes=total_tx,
            flow_bytes=dict(self._flow_bytes),
            dropped_packets=drops_now - self._drops_base,
            completed_flows=self._completed_flows,
        )
        self.history.append(stats)

        # Roll the window.
        self._interval_start = now
        self._uplink_tx_base = tx_now
        self._pause_base = pause_now
        self._drops_base = drops_now
        self._rtt_samples = []
        self._flow_bytes = {}
        self._completed_flows = 0
        return stats
