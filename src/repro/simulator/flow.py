"""Flows (QPs) and their completion records.

One flow corresponds to one RDMA message on one queue pair, matching
how the paper's workloads issue traffic (one QP per alltoall peer, one
WRITE per RPC).  A flow is created by :meth:`Network.add_flow`, starts
transmitting at ``start_time`` and completes when its final byte
arrives at the destination host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Flow:
    """A point-to-point message transfer."""

    flow_id: int
    src: int
    dst: int
    size: int                      # payload bytes to deliver
    start_time: float
    # Mutable progress state.
    bytes_sent: int = 0            # payload bytes handed to the wire
    bytes_received: int = 0        # payload bytes that reached dst
    finish_time: Optional[float] = None
    tag: str = ""                  # workload label (e.g. "hadoop", "llm")

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size!r}")
        if self.src == self.dst:
            raise ValueError("flow src and dst must differ")

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def remaining_to_send(self) -> int:
        return self.size - self.bytes_sent

    def fct(self) -> float:
        """Flow completion time; raises if the flow has not finished."""
        if self.finish_time is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.finish_time - self.start_time


@dataclass(frozen=True)
class FlowRecord:
    """Immutable summary of a completed flow, used by FCT analysis."""

    flow_id: int
    src: int
    dst: int
    size: int
    start_time: float
    finish_time: float
    tag: str = ""

    @property
    def fct(self) -> float:
        return self.finish_time - self.start_time

    def as_dict(self) -> dict:
        """The one plain-dict serialization of a completed flow.

        Shared by :mod:`repro.experiments.persistence` and the flight
        recorder so the field list lives in exactly one place.
        """
        return {
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "size": self.size,
            "start": self.start_time,
            "finish": self.finish_time,
            "fct": self.fct,
            "tag": self.tag,
        }

    @classmethod
    def from_flow(cls, flow: Flow) -> "FlowRecord":
        if flow.finish_time is None:
            raise ValueError(f"flow {flow.flow_id} has not completed")
        return cls(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            start_time=flow.start_time,
            finish_time=flow.finish_time,
            tag=flow.tag,
        )


def ideal_fct(size: int, line_rate_bps: float, base_rtt: float, mtu: int,
              header_bytes: int) -> float:
    """Best-case FCT: store-and-forward pipe at line rate plus base RTT.

    Used to compute FCT *slowdown* (actual / ideal), the metric of
    Fig. 7(a)/(b).
    """
    import math

    packets = max(1, math.ceil(size / mtu))
    wire_bytes = size + packets * header_bytes
    return base_rtt / 2.0 + wire_bytes * 8.0 / line_rate_bps
