"""Vectorized fluid-model surrogate of the DCQCN fabric.

The discrete-event simulator charges one full packet-level run per
candidate evaluation — the dominant cost of every offline tuning loop.
This module trades packet fidelity for speed: it integrates the DCQCN
*fluid* equations (Zhu et al., SIGCOMM 2015, §4) for a population of
identical greedy flows sharing one bottleneck, stepped at a fixed
sub-interval ``dt`` and aggregated per monitor interval, producing the
same ``O_TP/O_RTT/O_PFC`` objective terms the utility function
(Equation 1) consumes.

Two properties make it useful as a *screening* fidelity:

* **Vectorized over candidates** — the rate/queue/alpha state is held
  in numpy arrays with one lane per candidate parameter set, so a
  whole SA batch (or a full parameter grid) is scored in a handful of
  array sweeps.  Scoring hundreds of candidates costs about as much as
  scoring one, which is where the 100-1000x speedup over the DES comes
  from.
* **Deterministic** — the model is a closed-form integration with no
  randomness, so a screening decision is reproducible bit-for-bit and
  never perturbs the digests of the full-fidelity runs that follow.

The model is *approximate in level but faithful in shape*: absolute
utilities drift from the DES (no packet quantization, no ECMP
collisions, one bottleneck instead of a fabric), but the monotone
response to the tuned knobs — deeper ECN thresholds buy throughput and
cost RTT, aggressive marking does the reverse, slower cuts and faster
increases push the operating point up the queue — is preserved, which
is all a *ranking* screen needs.  :class:`FluidCalibration` fits the
residual against DES ground truth on a small anchor set for consumers
that want calibrated absolute values (e.g. early-abort thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.topology import SPECS
from repro.simulator.units import DEFAULT_MTU, HEADER_BYTES, mb

#: Integration sub-step.  DCQCN's fastest time constants (alpha timer
#: 55 us, CNP pacing 50 us) need a few samples each; 10 us keeps the
#: integration stable over the whole tuning space while a 1 ms monitor
#: interval still costs only 100 vector steps.
DEFAULT_DT = 10e-6

#: Shared-buffer size assumed for the PFC term; matches the default
#: :class:`repro.simulator.switch.SwitchConfig`.
DEFAULT_BUFFER_BYTES = mb(2.0)
DEFAULT_PFC_ALPHA = 1.0 / 8.0


@dataclass
class FluidResult:
    """Per-interval objective terms from one fluid integration."""

    o_tp: List[float]
    o_rtt: List[float]
    o_pfc: List[float]
    utilities: List[float]
    utility: float                      # mean over all intervals
    steps: int                          # integration sub-steps taken

    def mean_utility(self, skip: int = 0) -> float:
        values = self.utilities[skip:]
        return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class TrafficProfile:
    """Per-interval bottleneck load for the fluid integration.

    ``flows[i]`` is the number of greedy flows sharing the bottleneck
    during interval ``i`` and ``active_frac[i]`` the fraction of the
    interval they are present (bursty workloads load the link in
    episodes, not continuously).  Zero flows model idle/OFF intervals.
    """

    capacity_bps: float
    base_rtt: float
    n_intervals: int
    monitor_interval: float
    flows: Tuple[float, ...]
    active_frac: Tuple[float, ...]
    buffer_bytes: float = DEFAULT_BUFFER_BYTES
    pfc_alpha: float = DEFAULT_PFC_ALPHA
    mtu_wire: int = DEFAULT_MTU + HEADER_BYTES


def _interval_count(duration: float, monitor_interval: float) -> int:
    """Number of monitor intervals the runner closes for ``duration``.

    Mirrors :meth:`repro.experiments.runner.ExperimentRunner.run`:
    intervals are closed while ``now < end - 1e-12`` with the last one
    clamped to ``end``.
    """
    return max(1, int(math.ceil(duration / monitor_interval - 1e-9)))


def profile_for_scenario(spec) -> TrafficProfile:
    """Derive a deterministic bottleneck profile from a scenario spec.

    ``spec`` is a :class:`repro.parallel.tasks.ScenarioSpec` (accepted
    structurally to avoid an import cycle into the parallel package).
    The mapping is deliberately coarse — a single bottleneck with a
    per-interval flow count — because screening only needs the
    candidate *ranking* to survive, and the ranking is produced by the
    DCQCN dynamics, not by topology detail.
    """
    clos = SPECS[spec.scale]
    capacity = clos.host_rate_bps
    # Representative inter-ToR pair: worst-case base RTT.
    base_rtt = clos.base_rtt(0, clos.n_hosts - 1)
    n_intervals = _interval_count(spec.duration, spec.monitor_interval)
    interval = spec.monitor_interval

    flows = [0.0] * n_intervals
    frac = [0.0] * n_intervals

    if spec.workload == "hadoop":
        # Poisson arrivals at offered load rho: congestion arrives in
        # episodes (several flows collide on a downlink / shared
        # uplink).  Model each loaded interval as an episode of
        # ``n_eff`` greedy flows active for a load-dependent fraction.
        active_end = spec.workload_duration or spec.duration * 0.6
        load = min(max(spec.load, 0.0), 1.0)
        n_eff = max(2.0, round(clos.hosts_per_tor * max(load, 0.25) * 2))
        episode = min(1.0, 0.35 + load)
        # One interval of drain past the arrival window.
        drain_until = active_end + interval
        for i in range(n_intervals):
            t_mid = (i + 0.5) * interval
            if t_mid < active_end:
                flows[i] = n_eff
                frac[i] = episode
            elif t_mid < drain_until:
                flows[i] = max(1.0, n_eff / 2.0)
                frac[i] = episode / 2.0
    elif spec.workload in ("alltoall", "llm"):
        # n_workers peers, each uplink/downlink carrying ~(n-1) flows
        # of ``flow_size`` bytes.  The phase ends when the slowest flow
        # drains; past that the fabric is idle (one-shot alltoall) or
        # in an OFF period (llm) — either way the bottleneck is empty.
        n = max(2, int(spec.n_workers))
        per_link = float(n - 1)
        total_bytes = per_link * spec.flow_size
        drain_time = total_bytes * 8.0 / capacity
        if spec.workload == "llm":
            # ON-OFF rounds: off period defaults to 10 ms in the
            # installer; approximate the duty cycle.
            round_len = drain_time + 10e-3
            for i in range(n_intervals):
                t_mid = (i + 0.5) * interval
                phase = t_mid % round_len if round_len > 0 else 0.0
                if phase < drain_time:
                    flows[i] = per_link
                    frac[i] = 1.0
        else:
            for i in range(n_intervals):
                t_mid = (i + 0.5) * interval
                if t_mid < drain_time:
                    flows[i] = per_link
                    frac[i] = 1.0
    elif spec.workload == "influx":
        # LLM background with a hadoop burst riding on top.
        n = max(2, int(spec.n_workers))
        start = spec.influx_start or spec.duration * 0.3
        burst = spec.influx_duration or spec.duration * 0.3
        for i in range(n_intervals):
            t_mid = (i + 0.5) * interval
            flows[i] = float(n - 1)
            frac[i] = 0.6
            if start <= t_mid < start + burst:
                flows[i] += max(2.0, clos.hosts_per_tor)
                frac[i] = 1.0
    else:
        raise ValueError(f"unknown workload {spec.workload!r}")

    return TrafficProfile(
        capacity_bps=capacity,
        base_rtt=base_rtt,
        n_intervals=n_intervals,
        monitor_interval=interval,
        flows=tuple(flows),
        active_frac=tuple(frac),
    )


def _param_arrays(params: Sequence[DcqcnParams]) -> dict:
    """Column-stack the tuned fields of a candidate batch."""
    names = (
        "rpg_ai_rate", "rpg_hai_rate", "rpg_time_reset", "rpg_byte_reset",
        "rpg_threshold", "rpg_min_rate", "rate_reduce_monitor_period",
        "min_dec_fac", "dce_tcp_g", "dce_tcp_rtt", "initial_alpha",
        "min_time_between_cnps", "k_min", "k_max", "p_max",
    )
    return {
        name: np.array([float(getattr(p, name)) for p in params])
        for name in names
    }


def fluid_rate_cols(p: dict, dt: float) -> dict:
    """Derived per-lane parameter columns for :func:`fluid_rate_step`.

    ``p`` is the output of :func:`_param_arrays` (one column per tuned
    field, one row per lane).  Time constants are floored at ``dt`` so
    a single integration step never overshoots a whole timer period.
    """
    return {
        "g": p["dce_tcp_g"],
        "t_alpha": np.maximum(p["dce_tcp_rtt"], dt),
        "rrmp": np.maximum(p["rate_reduce_monitor_period"], dt),
        "cnp_gap": np.maximum(p["min_time_between_cnps"], dt),
        "thr": p["rpg_threshold"],
        "cut_factor_floor": 1.0 - p["min_dec_fac"],
        "r_min": p["rpg_min_rate"],
        "ai": p["rpg_ai_rate"],
        "hai": p["rpg_hai_rate"],
        "byte_reset_bits": p["rpg_byte_reset"] * 8.0,
        "time_reset": p["rpg_time_reset"],
    }


def fluid_rate_step(
    rc: np.ndarray,
    rt: np.ndarray,
    alpha: np.ndarray,
    byte_stage: np.ndarray,
    time_stage: np.ndarray,
    incr_iter: np.ndarray,
    mark_p: np.ndarray,
    line_rate,
    dt: float,
    mtu_bits: float,
    cols: dict,
):
    """One Euler step of the DCQCN fluid equations (Zhu et al. §4).

    Advances the per-lane RP state given each lane's current ECN
    marking probability ``mark_p``.  Shared verbatim by the candidate
    surrogate (:class:`FluidModel`) and the hybrid engine's elephant
    fast path (:mod:`repro.simulator.hybrid`) — the op sequence below
    is the surrogate's reference dynamics and must not be reordered
    (screening results are digest-compared across refactors).

    Returns the updated ``(rc, rt, alpha, byte_stage, time_stage,
    incr_iter)`` arrays.
    """
    g = cols["g"]
    t_alpha = cols["t_alpha"]

    # Per-flow marked-packet rate -> CNP rate (paced).
    pkt_rate = rc / mtu_bits
    mark_rate = mark_p * pkt_rate
    cnp_rate = np.minimum(mark_rate, 1.0 / cols["cnp_gap"])

    # Alpha: rise g(1-alpha) per CNP; decay (1-g) per idle
    # alpha-timer period, weighted by P(no CNP in period).
    p_quiet = np.exp(-np.minimum(cnp_rate * t_alpha, 50.0))
    alpha = alpha + g * (1.0 - alpha) * cnp_rate * dt
    alpha = alpha - g * alpha * p_quiet * dt / t_alpha
    # minimum(maximum(...)) == clip value-for-value; the raw ufuncs
    # skip np.clip's dispatch overhead, which dominates on the tiny
    # lane counts the hybrid engine steps 20k times per sim-second.
    alpha = np.minimum(np.maximum(alpha, 0.0), 1.0)

    # Rate cuts: at most one per monitor period; renewal rate
    # 1/(rrmp + mean CNP interarrival).  The inner maximum() keeps the
    # division finite, so no errstate guard is needed.
    cut_rate = np.where(
        cnp_rate > 1e-12,
        1.0 / (cols["rrmp"] + 1.0 / np.maximum(cnp_rate, 1e-12)),
        0.0,
    )
    cuts = np.minimum(np.maximum(cut_rate * dt, 0.0), 1.0)
    factor = np.maximum(1.0 - alpha / 2.0, cols["cut_factor_floor"])
    rt = rt * (1.0 - cuts) + rc * cuts
    rc = rc * (1.0 - cuts + cuts * factor)
    rc = np.maximum(rc, cols["r_min"])
    byte_stage = byte_stage * (1.0 - cuts)
    time_stage = time_stage * (1.0 - cuts)
    incr_iter = incr_iter * (1.0 - cuts)

    # Rate increase: byte-counter and timer stages.
    byte_stage = byte_stage + rc * dt / cols["byte_reset_bits"]
    time_stage = time_stage + dt / cols["time_reset"]
    ev = rc / cols["byte_reset_bits"] + 1.0 / cols["time_reset"]
    ev_dt = ev * dt
    hi = np.maximum(byte_stage, time_stage)
    lo = np.minimum(byte_stage, time_stage)
    additive = (hi >= cols["thr"]) & (lo < cols["thr"])
    hyper = lo >= cols["thr"]
    rt = rt + additive * cols["ai"] * ev_dt
    incr_iter = np.where(hyper, incr_iter + ev_dt, incr_iter)
    rt = rt + hyper * incr_iter * cols["hai"] * ev_dt
    rt = np.minimum(rt, line_rate)
    # Fast recovery toward rt on every increase event.
    rc = rc + (rt - rc) * np.minimum(np.maximum(0.5 * ev_dt, 0.0), 0.5)
    rc = np.minimum(np.maximum(rc, cols["r_min"]), line_rate)
    return rc, rt, alpha, byte_stage, time_stage, incr_iter


class FluidModel:
    """Integrates the DCQCN fluid equations for a candidate batch.

    One instance is reusable across batches; it holds no mutable state
    between calls.  ``dt`` trades accuracy against speed and is part of
    the screening configuration so a run's screening decisions are
    reproducible from its recorded config.
    """

    def __init__(self, dt: float = DEFAULT_DT):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt

    # -- public API -----------------------------------------------------

    def evaluate(
        self,
        spec,
        params: DcqcnParams,
        weights=None,
    ) -> FluidResult:
        """Score a single candidate; see :meth:`evaluate_batch`."""
        return self.evaluate_batch(spec, [params], weights)[0]

    def evaluate_batch(
        self,
        spec,
        params: Sequence[DcqcnParams],
        weights=None,
    ) -> List[FluidResult]:
        """Score a batch of candidates on one scenario.

        Returns one :class:`FluidResult` per candidate, positionally
        aligned with ``params``.  All candidates integrate in lockstep
        as numpy lanes.
        """
        profile = profile_for_scenario(spec)
        if weights is None:
            weights = spec.utility_weights()
        return self.evaluate_profile(profile, params, weights)

    def evaluate_profile(
        self,
        profile: TrafficProfile,
        params: Sequence[DcqcnParams],
        weights,
    ) -> List[FluidResult]:
        if not params:
            return []
        p = _param_arrays(params)
        B = len(params)
        C = profile.capacity_bps
        dt = self.dt
        mtu_bits = profile.mtu_wire * 8.0

        # Per-candidate state lanes.
        rc = np.full(B, C)               # current rate (fresh QPs start
        rt = np.full(B, C)               # at line rate)
        alpha = p["initial_alpha"].copy()
        byte_stage = np.zeros(B)
        time_stage = np.zeros(B)
        incr_iter = np.zeros(B)
        q = np.zeros(B)                  # bottleneck queue (bytes)

        # PFC: the DT threshold at equilibrium occupancy q is
        # ``pfc_alpha * (buffer - q)``; pausing begins once the queue
        # crosses alpha/(1+alpha) of the buffer.
        pfc_q = (
            profile.pfc_alpha / (1.0 + profile.pfc_alpha)
        ) * profile.buffer_bytes

        cols = fluid_rate_cols(p, dt)
        g = cols["g"]
        t_alpha = cols["t_alpha"]
        k_min = p["k_min"]
        k_span = np.maximum(p["k_max"] - p["k_min"], 1.0)
        p_max = p["p_max"]

        steps_per_interval = max(1, int(round(profile.monitor_interval / dt)))
        results: List[List[float]] = [[] for _ in range(4)]  # tp, rtt, pfc, u
        o_tp_all: List[np.ndarray] = []
        o_rtt_all: List[np.ndarray] = []
        o_pfc_all: List[np.ndarray] = []
        total_steps = 0

        for i in range(profile.n_intervals):
            n_flows = profile.flows[i]
            active = profile.active_frac[i]
            tp_acc = np.zeros(B)
            inv_rtt_acc = np.zeros(B)
            pause_acc = np.zeros(B)
            if n_flows <= 0.0 or active <= 0.0:
                # Idle interval: queue drains, rates recover toward
                # line rate through the increase machinery (coarse:
                # snap to target), alpha decays.
                q *= 0.0
                decay = np.exp(-profile.monitor_interval / t_alpha)
                alpha *= (1.0 - g) * (1.0 - decay) + decay
                rc = np.minimum((rc + rt) / 2.0 + p["rpg_ai_rate"], C)
                rt = np.minimum(rt + p["rpg_ai_rate"], C)
                o_tp_all.append(np.zeros(B))
                o_rtt_all.append(np.ones(B))
                o_pfc_all.append(np.ones(B))
                continue

            for _ in range(steps_per_interval):
                total_steps += 1
                # Offered aggregate during the loaded part of the
                # interval; the idle remainder is folded in afterwards.
                demand = n_flows * rc
                q = np.clip(
                    q + (demand - C) * dt / 8.0, 0.0, profile.buffer_bytes
                )

                # ECN marking probability at the current depth.
                mark_p = np.clip((q - k_min) / k_span, 0.0, 1.0) * p_max
                mark_p = np.where(q >= k_min + k_span, 1.0, mark_p)

                # Advance RP dynamics (alpha / cuts / increase).
                rc, rt, alpha, byte_stage, time_stage, incr_iter = (
                    fluid_rate_step(
                        rc, rt, alpha, byte_stage, time_stage, incr_iter,
                        mark_p, C, dt, mtu_bits, cols,
                    )
                )

                tp_acc += np.minimum(demand, C) / C
                qdelay = q * 8.0 / C
                inv_rtt_acc += profile.base_rtt / (profile.base_rtt + qdelay)
                pause_acc += q > pfc_q

            inv = 1.0 / steps_per_interval
            # Fold the idle fraction of a bursty interval: no load, no
            # queueing, no pausing during (1 - active) of the interval.
            o_tp = tp_acc * inv * active
            o_rtt = inv_rtt_acc * inv * active + (1.0 - active)
            o_pfc = 1.0 - pause_acc * inv * active
            o_tp_all.append(np.minimum(o_tp, 1.0))
            o_rtt_all.append(np.minimum(o_rtt, 1.0))
            o_pfc_all.append(np.clip(o_pfc, 0.0, 1.0))

            # Idle tail of the interval lets the queue drain.
            if active < 1.0:
                drain = (1.0 - active) * profile.monitor_interval * C / 8.0
                q = np.maximum(q - drain, 0.0)

        w_tp, w_rtt, w_pfc = weights.w_tp, weights.w_rtt, weights.w_pfc
        out: List[FluidResult] = []
        tp_m = np.stack(o_tp_all)        # (n_intervals, B)
        rtt_m = np.stack(o_rtt_all)
        pfc_m = np.stack(o_pfc_all)
        util_m = w_tp * tp_m + w_rtt * rtt_m + w_pfc * pfc_m
        for b in range(B):
            utilities = [float(u) for u in util_m[:, b]]
            out.append(
                FluidResult(
                    o_tp=[float(v) for v in tp_m[:, b]],
                    o_rtt=[float(v) for v in rtt_m[:, b]],
                    o_pfc=[float(v) for v in pfc_m[:, b]],
                    utilities=utilities,
                    utility=sum(utilities) / len(utilities),
                    steps=total_steps,
                )
            )
        return out


# ---------------------------------------------------------------------------
# Calibration against DES ground truth
# ---------------------------------------------------------------------------


@dataclass
class FluidCalibration:
    """Affine residual fit ``u_des ~= scale * u_fluid + offset``.

    Fit on a small anchor set of full DES evaluations; ``residual_rms``
    is the root-mean-square error of the fit on the anchors, which is
    the honest error bar to attach to any calibrated prediction.
    """

    scale: float = 1.0
    offset: float = 0.0
    residual_rms: float = 0.0
    n_anchors: int = 0
    spearman: float = 0.0

    def apply(self, fluid_utility: float) -> float:
        return self.scale * fluid_utility + self.offset


def spearman_rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rho between two score vectors (ties get mean ranks)."""
    if len(a) != len(b):
        raise ValueError("length mismatch")
    n = len(a)
    if n < 2:
        return 1.0

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            mean_rank = (i + j) / 2.0
            for k in range(i, j + 1):
                out[order[k]] = mean_rank
            i = j + 1
        return out

    ra, rb = ranks(list(a)), ranks(list(b))
    ma = sum(ra) / n
    mb = sum(rb) / n
    cov = sum((x - ma) * (y - mb) for x, y in zip(ra, rb))
    va = math.sqrt(sum((x - ma) ** 2 for x in ra))
    vb = math.sqrt(sum((y - mb) ** 2 for y in rb))
    if va == 0.0 or vb == 0.0:
        return 0.0
    return cov / (va * vb)


def fit_calibration(
    fluid_utilities: Sequence[float],
    des_utilities: Sequence[float],
) -> FluidCalibration:
    """Least-squares affine fit of fluid scores to DES ground truth."""
    if len(fluid_utilities) != len(des_utilities):
        raise ValueError("anchor length mismatch")
    n = len(fluid_utilities)
    if n == 0:
        return FluidCalibration()
    x = np.asarray(fluid_utilities, dtype=float)
    y = np.asarray(des_utilities, dtype=float)
    if n == 1 or float(np.var(x)) < 1e-18:
        offset = float(np.mean(y) - np.mean(x))
        resid = y - (x + offset)
        return FluidCalibration(
            scale=1.0,
            offset=offset,
            residual_rms=float(np.sqrt(np.mean(resid**2))),
            n_anchors=n,
            spearman=spearman_rank_correlation(list(x), list(y)),
        )
    scale, offset = np.polyfit(x, y, 1)
    resid = y - (scale * x + offset)
    return FluidCalibration(
        scale=float(scale),
        offset=float(offset),
        residual_rms=float(np.sqrt(np.mean(resid**2))),
        n_anchors=n,
        spearman=spearman_rank_correlation(list(x), list(y)),
    )
