"""Tuning-scheme baselines the paper compares against.

* ``Default`` / ``Expert`` — static settings (NVIDIA out-of-box and
  Table I), via :class:`repro.tuning.search.StaticTuner`.
* ``Pretrained 1/2`` — static settings offline-pretrained by Paraleon
  for a specific workload (Fig. 9).
* ``ACC`` — per-switch reinforcement-learning ECN threshold tuning
  (Yan et al., SIGCOMM 2021).
* ``DCQCN+`` — incast-scale-reactive CNP interval and rate-increase
  adaptation (Gao et al., ICNP 2018).
"""

from repro.baselines.static import (
    default_tuner,
    expert_tuner,
    pretrained_llm_params,
    pretrained_hadoop_params,
    pretrained_tuner,
)
from repro.baselines.dqn import DqnAgent, DqnConfig, MLP, ReplayBuffer
from repro.baselines.acc import AccTuner, AccConfig
from repro.baselines.dcqcn_plus import DcqcnPlusTuner, DcqcnPlusConfig

__all__ = [
    "default_tuner",
    "expert_tuner",
    "pretrained_llm_params",
    "pretrained_hadoop_params",
    "pretrained_tuner",
    "DqnAgent",
    "DqnConfig",
    "MLP",
    "ReplayBuffer",
    "AccTuner",
    "AccConfig",
    "DcqcnPlusTuner",
    "DcqcnPlusConfig",
]
