"""DCQCN+ baseline: incast-scale-reactive RNIC parameter adaptation.

Gao et al., *DCQCN+: Taming Large-scale Incast Congestion in RDMA over
Ethernet Networks* (ICNP 2018): the Notification Point scales the CNP
interval proportionally to the number of congested flows it serves,
piggybacks the new interval on CNPs, and Reaction Points adapt their
rate-increase steps and timers to it — with a large incast, each flow
increases more gently so the aggregate does not overshoot and trip
PFC; with a small incast, flows stay aggressive.

What matters for this paper's comparison is preserved:

* the adaptation is driven purely by the observed incast scale, a
  *reactive* event→action rule (Section III-C contrasts this with
  Paraleon's performance-oriented search);
* only RNIC-side parameters move (CNP interval, ``rpg_ai_rate``,
  ``rpg_hai_rate``, ``rpg_time_reset``); switch ECN thresholds stay at
  their defaults — the complementary "subset" to ACC's.

We emulate the NP-side estimate centrally: the incast scale of an
interval is the largest number of concurrent flows converging on a
single receiver.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.simulator.units import us
from repro.tuning.parameters import default_params


@dataclass(frozen=True)
class DcqcnPlusConfig:
    """Adaptation law settings."""

    base_cnp_interval: float = us(50.0)
    max_cnp_interval: float = us(500.0)
    min_ai_fraction: float = 0.1     # floor for ai/hai shrink
    max_timer_stretch: float = 4.0   # cap for rpg_time_reset growth
    smoothing: float = 0.5           # EWMA over the incast estimate


class DcqcnPlusTuner:
    """DCQCN+ under the common Tuner interface."""

    name = "DCQCN+"

    def __init__(
        self,
        config: Optional[DcqcnPlusConfig] = None,
        initial_params: Optional[DcqcnParams] = None,
    ):
        self.config = config or DcqcnPlusConfig()
        self.base = initial_params or default_params()
        self.network: Optional[Network] = None
        self._smoothed_scale = 1.0
        self.scale_trace = []

    # -- Tuner interface -------------------------------------------------

    def attach(self, network: Network) -> None:
        self.network = network
        network.set_all_params(self.base)

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        scale = self._incast_scale()
        cfg = self.config
        self._smoothed_scale = (
            cfg.smoothing * scale + (1.0 - cfg.smoothing) * self._smoothed_scale
        )
        self.scale_trace.append(self._smoothed_scale)
        return self._adapted_params(self._smoothed_scale)

    # -- adaptation law ----------------------------------------------------

    def _incast_scale(self) -> float:
        """Largest concurrent flow count converging on one receiver."""
        per_receiver = Counter(
            flow.dst for flow in self.network.active_flows.values()
        )
        return float(max(per_receiver.values(), default=1))

    def _adapted_params(self, scale: float) -> DcqcnParams:
        cfg = self.config
        scale = max(scale, 1.0)
        # CNP interval grows with incast scale (NP rule).
        cnp = min(cfg.base_cnp_interval * scale, cfg.max_cnp_interval)
        # Increase steps shrink and timers stretch ~ 1/scale (RP rule);
        # sqrt softens it the way the published curves flatten out.
        shrink = max(1.0 / math.sqrt(scale), cfg.min_ai_fraction)
        stretch = min(math.sqrt(scale), cfg.max_timer_stretch)
        return self.base.copy(
            min_time_between_cnps=cnp,
            rpg_ai_rate=self.base.rpg_ai_rate * shrink,
            rpg_hai_rate=self.base.rpg_hai_rate * shrink,
            rpg_time_reset=self.base.rpg_time_reset * stretch,
        )
