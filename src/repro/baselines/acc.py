"""ACC baseline: per-switch RL tuning of ECN thresholds.

Yan et al., *ACC: Automatic ECN Tuning for High-Speed Datacenter
Networks* (SIGCOMM 2021): an agent in each switch control plane
observes local port rate, ECN marking rate and queue depth, and a deep
Q-network picks adjustments to the local ``(K_min, K_max, P_max)``.

What matters for this paper's comparison is faithfully reproduced:

* per-switch, *local* observations and actions (no network-wide view);
* only the three ECN knobs move — every RNIC-side DCQCN parameter
  stays at its default, the "subset of parameters" limitation that
  Section II calls out;
* the agent learns online from a reward balancing throughput against
  queueing delay and PFC.

Action space: 9 discrete actions = {lower, keep, raise} thresholds ×
{lower, keep, raise} ``P_max`` (multiplicative steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.baselines.dqn import DqnAgent, DqnConfig
from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.simulator.switch import Switch
from repro.simulator.units import kb
from repro.tuning.parameters import default_params

_THRESHOLD_FACTORS = (0.8, 1.0, 1.25)
_PMAX_FACTORS = (0.8, 1.0, 1.25)


@dataclass(frozen=True)
class AccConfig:
    """ACC agent settings."""

    k_min_bounds: tuple = (kb(4.0), kb(800.0))
    k_max_bounds: tuple = (kb(40.0), kb(3000.0))
    p_max_bounds: tuple = (0.01, 1.0)
    reward_w_tp: float = 0.6
    reward_w_queue: float = 0.3
    reward_w_pfc: float = 0.1
    dqn: DqnConfig = field(default_factory=DqnConfig)
    seed: int = 11


class _SwitchAgentState:
    """Per-switch RL state: DQN, last observation/action, counters."""

    def __init__(self, switch: Switch, config: AccConfig, seed: int):
        self.switch = switch
        self.agent = DqnAgent(config.dqn, seed=seed)
        self.last_state: Optional[np.ndarray] = None
        self.last_action: Optional[int] = None
        self.prev_tx_bytes = 0
        self.prev_marked = 0
        self.prev_data = 0
        self.prev_pauses = 0


class AccTuner:
    """The ACC scheme under the common Tuner interface.

    RNIC parameters are dispatched once (defaults); each interval every
    switch agent observes local state, earns its reward, and applies a
    local ECN-threshold action directly to its switch.
    """

    name = "ACC"

    def __init__(
        self,
        config: Optional[AccConfig] = None,
        initial_params: Optional[DcqcnParams] = None,
    ):
        self.config = config or AccConfig()
        self.initial_params = initial_params or default_params()
        self.network: Optional[Network] = None
        self._agents: List[_SwitchAgentState] = []

    # -- Tuner interface -------------------------------------------------

    def attach(self, network: Network) -> None:
        self.network = network
        network.set_all_params(self.initial_params)
        self._agents = [
            _SwitchAgentState(switch, self.config, self.config.seed + i)
            for i, switch in enumerate(network.switches)
        ]

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        for agent_state in self._agents:
            self._step_agent(agent_state, stats.duration)
        return None  # all actions are applied per-switch, locally

    # -- per-switch RL step ------------------------------------------------

    def _observe(self, ast: _SwitchAgentState, duration: float) -> np.ndarray:
        switch = ast.switch
        tx = sum(e.link.tx_bytes for e in switch.egress)
        capacity = sum(e.link.rate_bps for e in switch.egress) * duration / 8.0
        port_rate = min((tx - ast.prev_tx_bytes) / capacity, 1.0) if capacity else 0.0
        ast.prev_tx_bytes = tx

        marked = switch.ecn_marked_packets
        data = switch.data_packets_forwarded
        d_marked = marked - ast.prev_marked
        d_data = data - ast.prev_data
        marking_rate = d_marked / d_data if d_data > 0 else 0.0
        ast.prev_marked, ast.prev_data = marked, data

        queue = max((e.data_queue_bytes for e in switch.egress), default=0)
        queue_norm = min(queue / switch.config.buffer_bytes, 1.0)

        pauses = switch.pfc_pauses_sent
        pfc_delta = min((pauses - ast.prev_pauses) / 10.0, 1.0)
        ast.prev_pauses = pauses

        params = switch.params
        kmax_norm = params.k_max / self.config.k_max_bounds[1]
        return np.array(
            [port_rate, marking_rate, queue_norm, pfc_delta, kmax_norm]
        )

    def _reward(self, state: np.ndarray) -> float:
        port_rate, _, queue_norm, pfc_delta, _ = state
        cfg = self.config
        return (
            cfg.reward_w_tp * port_rate
            - cfg.reward_w_queue * queue_norm
            - cfg.reward_w_pfc * pfc_delta
        )

    def _step_agent(self, ast: _SwitchAgentState, duration: float) -> None:
        state = self._observe(ast, duration)
        if ast.last_state is not None:
            reward = self._reward(state)
            ast.agent.observe(ast.last_state, ast.last_action, reward, state)
        action = ast.agent.act(state)
        self._apply_action(ast.switch, action)
        ast.last_state = state
        ast.last_action = action

    def _apply_action(self, switch: Switch, action: int) -> None:
        threshold_factor = _THRESHOLD_FACTORS[action // len(_PMAX_FACTORS)]
        pmax_factor = _PMAX_FACTORS[action % len(_PMAX_FACTORS)]
        params = switch.params
        cfg = self.config
        k_min = int(
            min(max(params.k_min * threshold_factor, cfg.k_min_bounds[0]),
                cfg.k_min_bounds[1])
        )
        k_max = int(
            min(max(params.k_max * threshold_factor, cfg.k_max_bounds[0]),
                cfg.k_max_bounds[1])
        )
        if k_min >= k_max:
            k_min = max(int(cfg.k_min_bounds[0]), k_max - int(kb(8.0)))
        p_max = min(max(params.p_max * pmax_factor, cfg.p_max_bounds[0]),
                    cfg.p_max_bounds[1])
        self.network.set_switch_ecn(switch, k_min, k_max, p_max)
