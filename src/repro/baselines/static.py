"""Static DCQCN settings: Default, Expert, and pretrained (Fig. 9).

The two "pretrained" settings model what Paraleon converges to when
run offline against a known workload: *Pretrained 1* targets the
alltoall LLM-training workload (strongly throughput-friendly),
*Pretrained 2* targets FB_Hadoop (mice-dominated, so delay-friendly).
Fig. 9's point is that either one, frozen, loses to live Paraleon the
moment traffic departs from its training workload — the settings here
were produced by running the offline pretraining example
(``examples/pretrain_static.py``) and rounding.
"""

from __future__ import annotations

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.units import kb, mbps, us
from repro.tuning.parameters import default_params, expert_params
from repro.tuning.search import StaticTuner


def default_tuner() -> StaticTuner:
    """NVIDIA out-of-box setting (scaled reference fabric)."""
    return StaticTuner(default_params(), "Default")


def expert_tuner() -> StaticTuner:
    """Table I expert setting (scaled reference fabric)."""
    return StaticTuner(expert_params(), "Expert")


def pretrained_llm_params() -> DcqcnParams:
    """Pretrained 1: offline-tuned for alltoall LLM training.

    Strongly throughput-friendly: big increase steps, rare cuts,
    sparse CNPs, high ECN thresholds with a shallow marking ramp.
    """
    return DcqcnParams(
        rpg_ai_rate=mbps(150.0),
        rpg_hai_rate=mbps(600.0),
        rate_reduce_monitor_period=us(250.0),
        min_time_between_cnps=us(200.0),
        k_min=kb(120.0),
        k_max=kb(500.0),
        p_max=0.1,
        rpg_time_reset=us(150.0),
        rpg_byte_reset=kb(16.0),
    )


def pretrained_hadoop_params() -> DcqcnParams:
    """Pretrained 2: offline-tuned for FB_Hadoop (mice-dominated).

    Delay-friendly: early aggressive marking, frequent CNPs and cuts
    keep queues short for the mice, with moderate increase steps so the
    elephant tail is not completely starved.
    """
    return DcqcnParams(
        rpg_ai_rate=mbps(10.0),
        rpg_hai_rate=mbps(100.0),
        rate_reduce_monitor_period=us(20.0),
        min_time_between_cnps=us(20.0),
        k_min=kb(8.0),
        k_max=kb(80.0),
        p_max=0.4,
        rpg_time_reset=us(450.0),
        rpg_byte_reset=kb(48.0),
    )


def pretrained_tuner(workload: str) -> StaticTuner:
    """``workload`` is ``"llm"`` (Pretrained 1) or ``"hadoop"`` (2)."""
    if workload == "llm":
        return StaticTuner(pretrained_llm_params(), "Pretrained 1 (LLM)")
    if workload == "hadoop":
        return StaticTuner(pretrained_hadoop_params(), "Pretrained 2 (Hadoop)")
    raise ValueError(f"unknown pretraining workload {workload!r}")
