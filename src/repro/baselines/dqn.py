"""A small from-scratch deep Q-network (numpy only).

The ACC baseline (SIGCOMM 2021) tunes ECN thresholds with deep
reinforcement learning at each switch.  This module provides the
learning machinery it needs without any ML framework: a two-hidden-
layer MLP with manual backprop, a replay buffer, and a double-DQN
update rule with a periodically synced target network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


class MLP:
    """Fully connected ReLU network with a linear output layer."""

    def __init__(self, sizes: List[int], rng: np.random.Generator):
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        self.sizes = list(sizes)
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            bound = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, bound, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, list]:
        """Returns output and the per-layer activations for backprop."""
        activations = [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                h = np.maximum(h, 0.0)
            activations.append(h)
        return h, activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        out, _ = self.forward(x)
        return out

    def train_step(
        self,
        x: np.ndarray,
        target: np.ndarray,
        action_mask: np.ndarray,
        lr: float,
    ) -> float:
        """One SGD step on masked MSE; returns the loss."""
        out, acts = self.forward(x)
        diff = (out - target) * action_mask
        n = max(1, int(action_mask.sum()))
        loss = float((diff ** 2).sum() / n)
        grad = 2.0 * diff / n

        for i in reversed(range(len(self.weights))):
            a_in = acts[i]
            grad_w = a_in.T @ grad
            grad_b = grad.sum(axis=0)
            grad_in = grad @ self.weights[i].T
            if i > 0:
                grad_in = grad_in * (acts[i] > 0.0)
            self.weights[i] -= lr * np.clip(grad_w, -1.0, 1.0)
            self.biases[i] -= lr * np.clip(grad_b, -1.0, 1.0)
            grad = grad_in
        return loss

    def copy_from(self, other: "MLP") -> None:
        self.weights = [w.copy() for w in other.weights]
        self.biases = [b.copy() for b in other.biases]


class ReplayBuffer:
    """Fixed-capacity uniform experience replay."""

    def __init__(self, capacity: int, rng: random.Random):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = rng
        self._data: List[tuple] = []
        self._next = 0

    def push(self, state, action, reward, next_state) -> None:
        item = (state, action, reward, next_state)
        if len(self._data) < self.capacity:
            self._data.append(item)
        else:
            self._data[self._next] = item
        self._next = (self._next + 1) % self.capacity

    def sample(self, batch_size: int) -> List[tuple]:
        return self._rng.sample(self._data, min(batch_size, len(self._data)))

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class DqnConfig:
    """Hyperparameters for the online DQN."""

    state_dim: int = 5
    n_actions: int = 9
    hidden: int = 32
    lr: float = 1e-2
    gamma: float = 0.9
    epsilon_start: float = 0.5
    epsilon_final: float = 0.05
    epsilon_decay_steps: int = 200
    batch_size: int = 16
    buffer_capacity: int = 512
    target_sync_every: int = 25


class DqnAgent:
    """Double-DQN agent learning online from interval feedback."""

    def __init__(self, config: DqnConfig, seed: int = 0):
        self.config = config
        np_rng = np.random.default_rng(seed)
        self._rng = random.Random(seed ^ 0xD9A)
        sizes = [config.state_dim, config.hidden, config.hidden, config.n_actions]
        self.online = MLP(sizes, np_rng)
        self.target = MLP(sizes, np_rng)
        self.target.copy_from(self.online)
        self.buffer = ReplayBuffer(config.buffer_capacity, self._rng)
        self.steps = 0
        self.losses: List[float] = []

    def epsilon(self) -> float:
        cfg = self.config
        frac = min(1.0, self.steps / cfg.epsilon_decay_steps)
        return cfg.epsilon_start + frac * (cfg.epsilon_final - cfg.epsilon_start)

    def act(self, state: np.ndarray) -> int:
        """Epsilon-greedy action selection."""
        if self._rng.random() < self.epsilon():
            return self._rng.randrange(self.config.n_actions)
        q = self.online.predict(state.reshape(1, -1))[0]
        return int(np.argmax(q))

    def observe(self, state, action, reward, next_state) -> None:
        """Store a transition and do one learning step."""
        self.buffer.push(
            np.asarray(state, dtype=float),
            int(action),
            float(reward),
            np.asarray(next_state, dtype=float),
        )
        self.steps += 1
        self._learn()
        if self.steps % self.config.target_sync_every == 0:
            self.target.copy_from(self.online)

    def _learn(self) -> None:
        cfg = self.config
        if len(self.buffer) < cfg.batch_size:
            return
        batch = self.buffer.sample(cfg.batch_size)
        states = np.stack([b[0] for b in batch])
        actions = np.array([b[1] for b in batch])
        rewards = np.array([b[2] for b in batch])
        next_states = np.stack([b[3] for b in batch])

        # Double DQN: online net picks the argmax, target net values it.
        next_q_online = self.online.predict(next_states)
        best_next = np.argmax(next_q_online, axis=1)
        next_q_target = self.target.predict(next_states)
        bootstrap = next_q_target[np.arange(len(batch)), best_next]
        targets_vec = rewards + cfg.gamma * bootstrap

        target = self.online.predict(states).copy()
        mask = np.zeros_like(target)
        rows = np.arange(len(batch))
        target[rows, actions] = targets_vec
        mask[rows, actions] = 1.0
        loss = self.online.train_step(states, target, mask, cfg.lr)
        self.losses.append(loss)
