"""Struct-framed control-plane messages.

Four message types flow through the control plane each monitor
interval (Fig. 2), sized to match the Table IV accounting:

* :class:`SwitchReport` (switch → controller, ~520 B): throughput,
  PFC pause time, and the local flow-size distribution (31-bucket
  histogram + elephant/mice weights + tracked-flow count).
* :class:`RnicReport` (RNIC → controller, 12 B payload): mean RTT and
  PFC pause for the host.
* :class:`ParamUpdate` (controller → everyone, ~76 B): the full DCQCN
  parameter set, float32 per knob.
* :class:`AggregateReport` (rack → pod → global, ~290 B): a merged FSD
  from one aggregation-tier node in the sharded control plane — same
  histogram payload as a switch report but carrying both weight lanes
  and no per-switch runtime metrics.

Framing is a 4-byte big-endian length followed by a 1-byte type tag
and the struct-packed payload — the moral equivalent of the paper's
gRPC-over-TCP without the codegen.

Malformed input raises typed :class:`ProtocolError` subclasses —
truncated frames, header/payload length mismatches, oversized length
prefixes, unknown type tags and undersized payloads each have their
own class, so transports can account for them individually instead of
swallowing a generic ``ValueError``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, fields as dc_fields
from typing import List, Tuple, Union

from repro.simulator.dcqcn import DcqcnParams

HEADER = struct.Struct(">IB")  # frame length (excl. itself), type tag

#: Upper bound on the header length field.  The largest legitimate
#: frame (a switch report) is well under 1 KiB; anything bigger is a
#: corrupt or hostile length prefix and must be rejected *before* the
#: transport tries to buffer it.
MAX_FRAME_BYTES = 4096


class ProtocolError(ValueError):
    """Base class for malformed control-plane input."""


class ShortFrameError(ProtocolError):
    """Frame ended before the header (or the declared payload) did."""


class FrameLengthMismatch(ProtocolError):
    """Header length field disagrees with the bytes actually present."""


class OversizedFrameError(ProtocolError):
    """Header length field exceeds :data:`MAX_FRAME_BYTES`."""


class UnknownMessageTypeError(ProtocolError):
    """Type tag does not name any known message."""


class PayloadError(ProtocolError):
    """Payload bytes do not unpack as the tagged message's struct."""


class UnexpectedMessageError(ProtocolError):
    """A well-formed message of the wrong type for this endpoint."""


class MessageType(enum.IntEnum):
    SWITCH_REPORT = 1
    RNIC_REPORT = 2
    PARAM_UPDATE = 3
    AGGREGATE_REPORT = 4


_HISTOGRAM_LEN = 31
_SWITCH_STRUCT = struct.Struct(
    ">H d d d d I" + "d" * _HISTOGRAM_LEN
)  # agent id, t, throughput, pause, eleph weight, tracked, histogram
_RNIC_STRUCT = struct.Struct(">H d f f")  # agent id, t, rtt, pause
_AGGREGATE_STRUCT = struct.Struct(
    ">B H d d d Q" + "d" * _HISTOGRAM_LEN
)  # tier level, node id, t, eleph weight, mice weight, tracked, histogram
_PARAM_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dc_fields(DcqcnParams)
)
_PARAM_STRUCT = struct.Struct(">d" + "f" * len(_PARAM_FIELDS))


@dataclass
class SwitchReport:
    """Per-interval upload from one switch control-plane agent."""

    agent_id: int
    timestamp: float
    throughput_bytes: float
    pause_seconds: float
    elephant_weight: float
    tracked_flows: int
    histogram: List[float] = field(
        default_factory=lambda: [0.0] * _HISTOGRAM_LEN
    )

    def pack(self) -> bytes:
        if len(self.histogram) != _HISTOGRAM_LEN:
            raise ValueError(
                f"histogram must have {_HISTOGRAM_LEN} buckets, "
                f"got {len(self.histogram)}"
            )
        return _SWITCH_STRUCT.pack(
            self.agent_id,
            self.timestamp,
            self.throughput_bytes,
            self.pause_seconds,
            self.elephant_weight,
            self.tracked_flows,
            *self.histogram,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "SwitchReport":
        values = _SWITCH_STRUCT.unpack(payload)
        return cls(
            agent_id=values[0],
            timestamp=values[1],
            throughput_bytes=values[2],
            pause_seconds=values[3],
            elephant_weight=values[4],
            tracked_flows=values[5],
            histogram=list(values[6:]),
        )


@dataclass
class RnicReport:
    """Per-interval upload from one server (RNIC metrics)."""

    agent_id: int
    timestamp: float
    mean_rtt: float
    pause_seconds: float

    def pack(self) -> bytes:
        return _RNIC_STRUCT.pack(
            self.agent_id, self.timestamp, self.mean_rtt, self.pause_seconds
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "RnicReport":
        agent_id, timestamp, rtt, pause = _RNIC_STRUCT.unpack(payload)
        return cls(agent_id, timestamp, rtt, pause)


@dataclass
class ParamUpdate:
    """Full DCQCN setting pushed by the controller."""

    timestamp: float
    params: DcqcnParams

    def pack(self) -> bytes:
        values = self.params.as_dict()
        return _PARAM_STRUCT.pack(
            self.timestamp, *(float(values[name]) for name in _PARAM_FIELDS)
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "ParamUpdate":
        values = _PARAM_STRUCT.unpack(payload)
        timestamp = values[0]
        raw = dict(zip(_PARAM_FIELDS, values[1:]))
        # Integral knobs round-trip through float32; restore them.
        for name in ("rpg_byte_reset", "rpg_threshold", "k_min", "k_max"):
            raw[name] = int(round(raw[name]))
        return cls(timestamp, DcqcnParams.from_dict(raw))


@dataclass
class AggregateReport:
    """A merged FSD forwarded up one aggregation tier."""

    #: 1 = rack aggregator, 2 = pod aggregator, 3 = global controller.
    level: int
    node_id: int
    timestamp: float
    elephant_weight: float
    mice_weight: float
    tracked_flows: int
    histogram: List[float] = field(
        default_factory=lambda: [0.0] * _HISTOGRAM_LEN
    )

    def pack(self) -> bytes:
        if len(self.histogram) != _HISTOGRAM_LEN:
            raise ValueError(
                f"histogram must have {_HISTOGRAM_LEN} buckets, "
                f"got {len(self.histogram)}"
            )
        return _AGGREGATE_STRUCT.pack(
            self.level,
            self.node_id,
            self.timestamp,
            self.elephant_weight,
            self.mice_weight,
            self.tracked_flows,
            *self.histogram,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "AggregateReport":
        values = _AGGREGATE_STRUCT.unpack(payload)
        return cls(
            level=values[0],
            node_id=values[1],
            timestamp=values[2],
            elephant_weight=values[3],
            mice_weight=values[4],
            tracked_flows=values[5],
            histogram=list(values[6:]),
        )


Message = Union[SwitchReport, RnicReport, ParamUpdate, AggregateReport]

_TYPE_OF = {
    SwitchReport: MessageType.SWITCH_REPORT,
    RnicReport: MessageType.RNIC_REPORT,
    ParamUpdate: MessageType.PARAM_UPDATE,
    AggregateReport: MessageType.AGGREGATE_REPORT,
}
_CLASS_OF = {
    MessageType.SWITCH_REPORT: SwitchReport,
    MessageType.RNIC_REPORT: RnicReport,
    MessageType.PARAM_UPDATE: ParamUpdate,
    MessageType.AGGREGATE_REPORT: AggregateReport,
}


def encode_message(message: Message) -> bytes:
    """Frame a message: length + type tag + payload."""
    payload = message.pack()
    tag = _TYPE_OF[type(message)]
    return HEADER.pack(len(payload) + 1, tag) + payload


def check_frame_length(length: int) -> int:
    """Validate a header length field before any payload is buffered.

    Transports call this between reading the 5-byte header and reading
    the payload, so a corrupt length prefix can never make them buffer
    (or block on) gigabytes that will never arrive.
    """
    if length < 1:
        raise FrameLengthMismatch(
            f"header length field {length} cannot cover the type tag"
        )
    if length > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"header length field {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return length


def decode_message(frame: bytes) -> Message:
    """Inverse of :func:`encode_message` (frame = full bytes)."""
    if len(frame) < HEADER.size:
        raise ShortFrameError(
            f"frame truncated inside the header: got {len(frame)} of "
            f"{HEADER.size} bytes"
        )
    length, tag = HEADER.unpack(frame[: HEADER.size])
    check_frame_length(length)
    payload = frame[HEADER.size:]
    if len(payload) != length - 1:
        raise FrameLengthMismatch(
            f"frame length mismatch: header says {length - 1}, got {len(payload)}"
        )
    try:
        mtype = MessageType(tag)
    except ValueError as exc:
        raise UnknownMessageTypeError(f"unknown message tag {tag}") from exc
    try:
        return _CLASS_OF[mtype].unpack(payload)
    except struct.error as exc:
        raise PayloadError(
            f"{mtype.name} payload of {len(payload)} bytes does not "
            f"unpack: {exc}"
        ) from exc


def message_wire_size(message: Message) -> int:
    """Bytes on the wire including framing (Table IV accounting)."""
    return len(encode_message(message))
