"""Struct-framed control-plane messages.

Three message types flow between agents and the controller each
monitor interval (Fig. 2), sized to match the Table IV accounting:

* :class:`SwitchReport` (switch → controller, ~520 B): throughput,
  PFC pause time, and the local flow-size distribution (31-bucket
  histogram + elephant/mice weights + tracked-flow count).
* :class:`RnicReport` (RNIC → controller, 12 B payload): mean RTT and
  PFC pause for the host.
* :class:`ParamUpdate` (controller → everyone, ~76 B): the full DCQCN
  parameter set, float32 per knob.

Framing is a 4-byte big-endian length followed by a 1-byte type tag
and the struct-packed payload — the moral equivalent of the paper's
gRPC-over-TCP without the codegen.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, fields as dc_fields
from typing import List, Tuple, Union

from repro.simulator.dcqcn import DcqcnParams

HEADER = struct.Struct(">IB")  # frame length (excl. itself), type tag


class MessageType(enum.IntEnum):
    SWITCH_REPORT = 1
    RNIC_REPORT = 2
    PARAM_UPDATE = 3


_HISTOGRAM_LEN = 31
_SWITCH_STRUCT = struct.Struct(
    ">H d d d d I" + "d" * _HISTOGRAM_LEN
)  # agent id, t, throughput, pause, eleph weight, tracked, histogram
_RNIC_STRUCT = struct.Struct(">H d f f")  # agent id, t, rtt, pause
_PARAM_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dc_fields(DcqcnParams)
)
_PARAM_STRUCT = struct.Struct(">d" + "f" * len(_PARAM_FIELDS))


@dataclass
class SwitchReport:
    """Per-interval upload from one switch control-plane agent."""

    agent_id: int
    timestamp: float
    throughput_bytes: float
    pause_seconds: float
    elephant_weight: float
    tracked_flows: int
    histogram: List[float] = field(
        default_factory=lambda: [0.0] * _HISTOGRAM_LEN
    )

    def pack(self) -> bytes:
        if len(self.histogram) != _HISTOGRAM_LEN:
            raise ValueError(
                f"histogram must have {_HISTOGRAM_LEN} buckets, "
                f"got {len(self.histogram)}"
            )
        return _SWITCH_STRUCT.pack(
            self.agent_id,
            self.timestamp,
            self.throughput_bytes,
            self.pause_seconds,
            self.elephant_weight,
            self.tracked_flows,
            *self.histogram,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "SwitchReport":
        values = _SWITCH_STRUCT.unpack(payload)
        return cls(
            agent_id=values[0],
            timestamp=values[1],
            throughput_bytes=values[2],
            pause_seconds=values[3],
            elephant_weight=values[4],
            tracked_flows=values[5],
            histogram=list(values[6:]),
        )


@dataclass
class RnicReport:
    """Per-interval upload from one server (RNIC metrics)."""

    agent_id: int
    timestamp: float
    mean_rtt: float
    pause_seconds: float

    def pack(self) -> bytes:
        return _RNIC_STRUCT.pack(
            self.agent_id, self.timestamp, self.mean_rtt, self.pause_seconds
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "RnicReport":
        agent_id, timestamp, rtt, pause = _RNIC_STRUCT.unpack(payload)
        return cls(agent_id, timestamp, rtt, pause)


@dataclass
class ParamUpdate:
    """Full DCQCN setting pushed by the controller."""

    timestamp: float
    params: DcqcnParams

    def pack(self) -> bytes:
        values = self.params.as_dict()
        return _PARAM_STRUCT.pack(
            self.timestamp, *(float(values[name]) for name in _PARAM_FIELDS)
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "ParamUpdate":
        values = _PARAM_STRUCT.unpack(payload)
        timestamp = values[0]
        raw = dict(zip(_PARAM_FIELDS, values[1:]))
        # Integral knobs round-trip through float32; restore them.
        for name in ("rpg_byte_reset", "rpg_threshold", "k_min", "k_max"):
            raw[name] = int(round(raw[name]))
        return cls(timestamp, DcqcnParams.from_dict(raw))


Message = Union[SwitchReport, RnicReport, ParamUpdate]

_TYPE_OF = {
    SwitchReport: MessageType.SWITCH_REPORT,
    RnicReport: MessageType.RNIC_REPORT,
    ParamUpdate: MessageType.PARAM_UPDATE,
}
_CLASS_OF = {
    MessageType.SWITCH_REPORT: SwitchReport,
    MessageType.RNIC_REPORT: RnicReport,
    MessageType.PARAM_UPDATE: ParamUpdate,
}


def encode_message(message: Message) -> bytes:
    """Frame a message: length + type tag + payload."""
    payload = message.pack()
    tag = _TYPE_OF[type(message)]
    return HEADER.pack(len(payload) + 1, tag) + payload


def decode_message(frame: bytes) -> Message:
    """Inverse of :func:`encode_message` (frame = full bytes)."""
    if len(frame) < HEADER.size:
        raise ValueError("short frame")
    length, tag = HEADER.unpack(frame[: HEADER.size])
    payload = frame[HEADER.size:]
    if len(payload) != length - 1:
        raise ValueError(
            f"frame length mismatch: header says {length - 1}, got {len(payload)}"
        )
    return _CLASS_OF[MessageType(tag)].unpack(payload)


def message_wire_size(message: Message) -> int:
    """Bytes on the wire including framing (Table IV accounting)."""
    return len(encode_message(message))
