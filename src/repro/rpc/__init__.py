"""Controller/agent control plane over real sockets.

The paper's testbed prototype connects switch and server agents to a
centralized controller over gRPC/TCP; this package reproduces that
plane with a compact struct-framed protocol on asyncio TCP, including
the per-message byte accounting behind Table IV.
"""

from repro.rpc.protocol import (
    MessageType,
    SwitchReport,
    RnicReport,
    ParamUpdate,
    encode_message,
    decode_message,
    message_wire_size,
)
from repro.rpc.transport import ControllerServer, AgentClient

__all__ = [
    "MessageType",
    "SwitchReport",
    "RnicReport",
    "ParamUpdate",
    "encode_message",
    "decode_message",
    "message_wire_size",
    "ControllerServer",
    "AgentClient",
]
