"""Asyncio TCP transport for the controller/agent plane.

A :class:`ControllerServer` listens on localhost; each switch/server
agent connects with an :class:`AgentClient`, uploads its per-interval
reports, and receives parameter updates pushed by the controller.  TCP
gives the reliable delivery the paper gets from gRPC; in deployment
the control traffic rides a separate queue from RDMA traffic, which
here corresponds to it simply not being part of the simulation.

Byte counters on both ends feed the Table IV overhead benchmark.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional

from repro.rpc.protocol import (
    HEADER,
    Message,
    ParamUpdate,
    ProtocolError,
    UnexpectedMessageError,
    check_frame_length,
    decode_message,
    encode_message,
)
from repro.telemetry.log import get_logger

_log = get_logger("rpc.transport")


async def _read_frame(reader: asyncio.StreamReader) -> Message:
    """Read one framed message, validating the length prefix first.

    The header's length field is bounds-checked *before* the payload
    read, so a corrupt or hostile prefix can never make the reader
    buffer (or wait on) more than :data:`~repro.rpc.protocol.
    MAX_FRAME_BYTES`.  Truncation surfaces as
    ``asyncio.IncompleteReadError``; structural corruption as a typed
    :class:`~repro.rpc.protocol.ProtocolError`.
    """
    header = await reader.readexactly(HEADER.size)
    length, _tag = HEADER.unpack(header)
    check_frame_length(length)
    payload = await reader.readexactly(length - 1)
    return decode_message(header + payload)


class ControllerServer:
    """Centralized controller endpoint."""

    def __init__(
        self,
        on_message: Callable[[Message], Optional[Awaitable[None]]],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.on_message = on_message
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self.bytes_received = 0
        self.bytes_sent = 0
        self.messages_received = 0
        #: Malformed-input accounting: connections dropped because a
        #: frame was structurally invalid, truncated mid-frame, or the
        #: peer reset.  Clean EOFs (peer closed between frames) are none
        #: of these.
        self.protocol_errors = 0
        self.truncated_frames = 0
        self.connection_resets = 0

    async def start(self) -> int:
        """Bind and listen; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.append(writer)
        try:
            while True:
                message = await _read_frame(reader)
                self.messages_received += 1
                self.bytes_received += len(encode_message(message))
                result = self.on_message(message)
                if asyncio.iscoroutine(result):
                    await result
        except asyncio.IncompleteReadError as exc:
            # Empty partial = the peer closed cleanly between frames;
            # anything else is a frame cut off mid-flight.
            if exc.partial:
                self.truncated_frames += 1
                _log.warning(
                    "connection dropped mid-frame after %d bytes",
                    len(exc.partial),
                )
        except ConnectionResetError:
            self.connection_resets += 1
        except ProtocolError as exc:
            self.protocol_errors += 1
            _log.warning("dropping connection on malformed input: %s", exc)
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
            writer.close()

    async def broadcast(self, update: ParamUpdate) -> None:
        """Push a parameter update to every connected agent."""
        frame = encode_message(update)
        for writer in list(self._writers):
            writer.write(frame)
            self.bytes_sent += len(frame)
        await asyncio.gather(
            *(w.drain() for w in self._writers), return_exceptions=True
        )

    async def close(self) -> None:
        for writer in self._writers:
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class AgentClient:
    """A switch or server agent's connection to the controller."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.bytes_sent = 0
        self.updates_received: List[ParamUpdate] = []

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def send(self, message: Message) -> None:
        if self._writer is None:
            raise RuntimeError("agent is not connected")
        frame = encode_message(message)
        self._writer.write(frame)
        self.bytes_sent += len(frame)
        await self._writer.drain()

    async def receive_update(self, timeout: float = 1.0) -> ParamUpdate:
        """Wait for the next parameter update from the controller."""
        if self._reader is None:
            raise RuntimeError("agent is not connected")
        message = await asyncio.wait_for(_read_frame(self._reader), timeout)
        if not isinstance(message, ParamUpdate):
            raise UnexpectedMessageError(
                f"expected ParamUpdate, got {type(message).__name__}"
            )
        self.updates_received.append(message)
        return message

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionResetError:  # pragma: no cover - platform noise
                pass
