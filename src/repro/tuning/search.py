"""Common tuner interface.

All tuning schemes compared in the evaluation — Paraleon, the static
Default/Expert settings, ACC and DCQCN+ — implement :class:`Tuner`:
once per monitor interval the experiment runner hands them the
interval's metrics (plus the measured flow size distribution when a
monitoring pipeline is attached) and they optionally return a new
parameter set to dispatch network-wide.

Keeping the interface this small lets every scheme run under the same
harness, which is what makes the head-to-head FCT comparisons of
Fig. 7/8 meaningful.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats


@runtime_checkable
class Tuner(Protocol):
    """One tuning scheme under evaluation."""

    #: Display name used in benchmark tables.
    name: str

    def attach(self, network: Network) -> None:
        """Install initial parameters / per-device hooks."""
        ...

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        """Consume one monitor interval; optionally return new params.

        Returning a :class:`DcqcnParams` asks the harness to dispatch
        it to every RNIC and switch (distributed schemes like ACC
        mutate per-switch state directly inside this call instead and
        return None).
        """
        ...


class StaticTuner:
    """A frozen parameter setting (Default, Expert, or pretrained)."""

    def __init__(self, params: DcqcnParams, name: str):
        self.params = params
        self.name = name

    def attach(self, network: Network) -> None:
        network.set_all_params(self.params)

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticTuner({self.name})"
