"""Content-addressed cache of utility evaluations.

A simulated-annealing tuning process and the figure benchmarks both
evaluate *pure* functions: ``(scenario, seed, params) -> utility``.
The same parameter point is frequently revisited — SA walks back into
regions it has explored, re-runs of a figure sweep repeat every grid
point — so caching the mapping skips whole simulations.

Keys are content-addressed: a scenario *fingerprint* (any stable
string; :class:`repro.parallel.tasks.ScenarioSpec` provides one)
concatenated with the evaluation seed and a **quantized**
:class:`~repro.simulator.dcqcn.DcqcnParams` vector.  Quantization
(default 9 significant digits) makes keys robust against float
round-trip noise (e.g. JSON persistence) without merging genuinely
distinct parameter points: the coarsest tuning step in the search
space is many orders of magnitude above 1e-9 relative.

The cache stores a small payload dict (utility, digests, counters) —
never simulator objects — so it is trivially JSON-persistable.  Hit
and miss counters make cache effectiveness observable; the executor
and the CLI surface them.
"""

from __future__ import annotations

import json
import os
from dataclasses import fields
from pathlib import Path
from typing import Dict, Optional

from repro import env
from repro.simulator.dcqcn import DcqcnParams
from repro.telemetry import trace
from repro.telemetry.registry import get_registry

_CACHE_HITS = get_registry().counter(
    "repro_cache_hits_total", "Eval-cache lookups served from cache"
)
_CACHE_MISSES = get_registry().counter(
    "repro_cache_misses_total", "Eval-cache lookups that missed"
)

#: Default on-disk location (override per-instance or with
#: ``REPRO_EVAL_CACHE``; ``--no-cache`` in the CLI disables entirely).
DEFAULT_CACHE_PATH = Path(env.REGISTRY["REPRO_EVAL_CACHE"].default)

_PARAM_FIELD_NAMES = tuple(sorted(f.name for f in fields(DcqcnParams)))


def quantize_params(params: DcqcnParams, sig_digits: int = 9) -> str:
    """A stable string key for a parameter vector.

    Floats are rounded to ``sig_digits`` significant digits so that a
    value surviving a JSON round-trip (or an equivalent-but-differently-
    computed float) maps to the same key; integral knobs pass through
    exactly.
    """
    parts = []
    values = params.as_dict()
    for name in _PARAM_FIELD_NAMES:
        value = values[name]
        if isinstance(value, float):
            parts.append(f"{name}={value:.{sig_digits}g}")
        else:
            parts.append(f"{name}={value}")
    return ";".join(parts)


class EvalCache:
    """In-memory map of evaluation keys to result payloads.

    Payloads are plain dicts (JSON-safe).  ``path=None`` keeps the
    cache memory-only; with a path, :meth:`load` / :meth:`save` persist
    it across runs — which is what lets a *repeated* figure benchmark
    or SA search skip re-simulation entirely.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        sig_digits: int = 9,
    ):
        self.path = Path(path) if path is not None else None
        self.sig_digits = sig_digits
        self._store: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self.load()

    # -- keys -----------------------------------------------------------

    def key(self, scenario_fp: str, seed: int, params: DcqcnParams) -> str:
        return f"{scenario_fp}|seed={seed}|{quantize_params(params, self.sig_digits)}"

    # -- access ---------------------------------------------------------

    def get(self, scenario_fp: str, seed: int, params: DcqcnParams) -> Optional[dict]:
        """Payload for a prior evaluation, or None (counts hit/miss)."""
        payload = self._store.get(self.key(scenario_fp, seed, params))
        hit = payload is not None
        if hit:
            self.hits += 1
            _CACHE_HITS.inc()
        else:
            self.misses += 1
            _CACHE_MISSES.inc()
        if trace.active:
            trace.event(
                "cache.lookup", {"hit": hit, "scenario": scenario_fp, "seed": seed}
            )
        return payload

    def put(
        self, scenario_fp: str, seed: int, params: DcqcnParams, payload: dict
    ) -> None:
        self._store[self.key(scenario_fp, seed, params)] = payload

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 if none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    # -- persistence -----------------------------------------------------

    def load(self, path: Optional[os.PathLike] = None) -> int:
        """Merge entries from disk; returns the number loaded."""
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("no cache path configured")
        try:
            data = json.loads(source.read_text())
        except (OSError, ValueError):
            return 0  # missing or corrupt cache files are simply cold
        if not isinstance(data, dict):
            return 0
        self._store.update(data)
        return len(data)

    def save(self, path: Optional[os.PathLike] = None) -> None:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cache path configured")
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._store))
        tmp.replace(target)


def default_cache(enabled: bool = True) -> Optional[EvalCache]:
    """The process-wide default cache honouring ``REPRO_EVAL_CACHE``.

    ``REPRO_EVAL_CACHE`` may name a JSON file or be ``0``/empty to
    disable.  Returns None when disabled.
    """
    if not enabled:
        return None
    path = env.get("REPRO_EVAL_CACHE")
    if path is None:
        return None
    return EvalCache(path=path)
