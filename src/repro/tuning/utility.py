"""Equation (1): the network-wide utility function.

``U = ω_TP·O_TP + ω_RTT·O_RTT + ω_PFC·O_PFC`` with operator-assigned
weights summing to 1.  All three objective terms are produced per
monitor interval by :class:`repro.simulator.stats.StatsCollector`:

* ``O_TP``  — mean utilization of active host uplinks, in [0, 1];
* ``O_RTT`` — mean Swift-style normalized RTT (base/runtime), in (0, 1];
* ``O_PFC`` — 1 − mean PFC pause fraction per device, in [0, 1].

So ``U ∈ [0, 1]`` and bigger is better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.simulator.stats import IntervalStats


@dataclass(frozen=True)
class UtilityWeights:
    """Operator preference weights (must sum to 1)."""

    w_tp: float = 0.2
    w_rtt: float = 0.5
    w_pfc: float = 0.3

    def __post_init__(self) -> None:
        for name, value in (("w_tp", self.w_tp), ("w_rtt", self.w_rtt),
                            ("w_pfc", self.w_pfc)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        total = self.w_tp + self.w_rtt + self.w_pfc
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total!r}")


# Table III default weighting (ω_TP, ω_RTT, ω_PFC) = (0.2, 0.5, 0.3).
DEFAULT_WEIGHTS = UtilityWeights(0.2, 0.5, 0.3)

# The paper's example weighting for throughput-sensitive workloads such
# as LLM training: (0.5, 0.2, 0.3).
THROUGHPUT_SENSITIVE_WEIGHTS = UtilityWeights(0.5, 0.2, 0.3)


#: Either a live :class:`IntervalStats` or its plain-dict
#: :meth:`~repro.simulator.stats.IntervalStats.snapshot` — the utility
#: function accepts both, so trace consumers and offline analyzers can
#: re-evaluate Equation (1) straight from persisted records.
StatsLike = Union[IntervalStats, Mapping]


def utility(stats: StatsLike, weights: UtilityWeights = DEFAULT_WEIGHTS) -> float:
    """Evaluate Equation (1) for one monitor interval."""
    if isinstance(stats, Mapping):
        return (
            weights.w_tp * stats["throughput_util"]
            + weights.w_rtt * stats["norm_rtt"]
            + weights.w_pfc * stats["pfc_ok"]
        )
    return (
        weights.w_tp * stats.throughput_util
        + weights.w_rtt * stats.norm_rtt
        + weights.w_pfc * stats.pfc_ok
    )


def utility_components(stats: StatsLike) -> dict:
    """The three objective terms, for logging and ablation output."""
    if isinstance(stats, Mapping):
        return {
            "O_TP": stats["throughput_util"],
            "O_RTT": stats["norm_rtt"],
            "O_PFC": stats["pfc_ok"],
        }
    return {
        "O_TP": stats.throughput_util,
        "O_RTT": stats.norm_rtt,
        "O_PFC": stats.pfc_ok,
    }
