"""Offline exhaustive (grid) search — the paper's timeliness foil.

Section III-C: "The optimal algorithm is to explore comprehensive
inter-parameter impacts by traversing all possible DCQCN parameter
combinations, but it fails to output timely results."  This module
makes that claim measurable: a coarse grid over the most influential
knobs, each point evaluated for one measurement window on a *frozen*
copy of the scenario — the offline procedure an operator (or an
AutoML pipeline) would run overnight.

:class:`GridSearchTuner` plugs into the common Tuner interface so the
harness can also run it *online* — where it simply steps through its
grid one point per monitor interval, demonstrating exactly why
exhaustive search cannot track traffic dynamics: the grid takes
``len(grid)`` intervals to sweep once, while Paraleon reacts within a
handful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.simulator.units import kb, mbps, us
from repro.tuning.parameters import default_params
from repro.tuning.utility import DEFAULT_WEIGHTS, UtilityWeights, utility

#: A deliberately coarse default grid over the four most influential
#: knobs (3^4 = 81 combinations).  Even this "small" grid needs 81
#: measurement windows per sweep — the timeliness problem in numbers.
DEFAULT_GRID: Dict[str, Sequence[float]] = {
    "rpg_ai_rate": (mbps(20.0), mbps(100.0), mbps(300.0)),
    "rate_reduce_monitor_period": (us(20.0), us(80.0), us(250.0)),
    "k_min": (kb(10.0), kb(40.0), kb(160.0)),
    "p_max": (0.05, 0.2, 0.5),
}


def expand_grid(grid: Dict[str, Sequence[float]]) -> List[DcqcnParams]:
    """All grid combinations as full parameter sets (defaults elsewhere)."""
    if not grid:
        raise ValueError("grid must have at least one dimension")
    names = list(grid)
    combos = itertools.product(*(grid[name] for name in names))
    points = []
    for values in combos:
        overrides = dict(zip(names, values))
        params = default_params().copy(**overrides)
        if params.k_min >= params.k_max:
            params = params.copy(k_max=int(params.k_min * 4))
        params.validate()
        points.append(params)
    return points


@dataclass
class GridPointResult:
    params: DcqcnParams
    utility: float
    #: Which fidelity produced ``utility``: "des" (full simulation),
    #: "hybrid" (hybrid flow/packet engine), "fluid" (calibrated
    #: surrogate score), or "aborted" (DES run abandoned early;
    #: utility is its optimistic bound).
    fidelity: str = "des"
    #: Flight-recorder snapshot for this point, when recording was
    #: enabled and the executor kept it (best-K pruning); fluid-scored
    #: points never simulate, so they never carry one.
    recording: Optional[dict] = None


class GridSearchTuner:
    """Online exhaustive search under the common Tuner interface.

    Steps through the grid one point per monitor interval, recording
    each point's measured utility; after a full sweep it dispatches
    the best point and holds it (then optionally re-sweeps).
    """

    name = "GridSearch"

    def __init__(
        self,
        grid: Optional[Dict[str, Sequence[float]]] = None,
        weights: UtilityWeights = DEFAULT_WEIGHTS,
        resweep: bool = False,
    ):
        self.points = expand_grid(grid or DEFAULT_GRID)
        self.weights = weights
        self.resweep = resweep
        self.results: List[GridPointResult] = []
        self._index = 0
        self._pending: Optional[DcqcnParams] = None
        self._converged = False
        self.sweeps_completed = 0

    # -- Tuner interface -------------------------------------------------

    def attach(self, network: Network) -> None:
        network.set_all_params(default_params())

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        measured = utility(stats, self.weights)
        if self._pending is not None:
            self.results.append(GridPointResult(self._pending, measured))
            self._pending = None
        if self._converged:
            return None
        if self._index >= len(self.points):
            self.sweeps_completed += 1
            best = self.best()
            if self.resweep:
                self._index = 0
                self.results = []
            else:
                self._converged = True
            return best.params
        candidate = self.points[self._index]
        self._index += 1
        self._pending = candidate
        return candidate

    # -- results -----------------------------------------------------------

    @property
    def sweep_length(self) -> int:
        """Monitor intervals needed for one full sweep."""
        return len(self.points)

    def best(self) -> GridPointResult:
        if not self.results:
            raise ValueError("no grid points evaluated yet")
        return max(self.results, key=lambda r: r.utility)


def offline_grid_search(
    scenario_factory: Callable[[DcqcnParams], float],
    grid: Optional[Dict[str, Sequence[float]]] = None,
) -> Tuple[GridPointResult, List[GridPointResult]]:
    """Classic offline sweep: evaluate every point on a fresh scenario.

    ``scenario_factory(params)`` must build the scenario, run it, and
    return the achieved utility — each call is one full experiment, so
    the cost is ``len(grid)`` runs (hours on a real cluster; the bench
    measures it in simulator wall-time).
    """
    points = expand_grid(grid or DEFAULT_GRID)
    results = [
        GridPointResult(params, scenario_factory(params)) for params in points
    ]
    best = max(results, key=lambda r: r.utility)
    return best, results
