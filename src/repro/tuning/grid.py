"""Offline exhaustive (grid) search — the paper's timeliness foil.

Section III-C: "The optimal algorithm is to explore comprehensive
inter-parameter impacts by traversing all possible DCQCN parameter
combinations, but it fails to output timely results."  This module
makes that claim measurable: a coarse grid over the most influential
knobs, each point evaluated for one measurement window on a *frozen*
copy of the scenario — the offline procedure an operator (or an
AutoML pipeline) would run overnight.

:class:`GridSearchTuner` plugs into the common Tuner interface so the
harness can also run it *online* — where it simply steps through its
grid one point per monitor interval, demonstrating exactly why
exhaustive search cannot track traffic dynamics: the grid takes
``len(grid)`` intervals to sweep once, while Paraleon reacts within a
handful.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.simulator.units import kb, mbps, us
from repro.telemetry import trace
from repro.tuning.parameters import default_params
from repro.tuning.utility import DEFAULT_WEIGHTS, UtilityWeights, utility

#: A deliberately coarse default grid over the four most influential
#: knobs (3^4 = 81 combinations).  Even this "small" grid needs 81
#: measurement windows per sweep — the timeliness problem in numbers.
DEFAULT_GRID: Dict[str, Sequence[float]] = {
    "rpg_ai_rate": (mbps(20.0), mbps(100.0), mbps(300.0)),
    "rate_reduce_monitor_period": (us(20.0), us(80.0), us(250.0)),
    "k_min": (kb(10.0), kb(40.0), kb(160.0)),
    "p_max": (0.05, 0.2, 0.5),
}


def expand_grid(grid: Dict[str, Sequence[float]]) -> List[DcqcnParams]:
    """All grid combinations as full parameter sets (defaults elsewhere)."""
    if not grid:
        raise ValueError("grid must have at least one dimension")
    names = list(grid)
    combos = itertools.product(*(grid[name] for name in names))
    points = []
    for values in combos:
        overrides = dict(zip(names, values))
        params = default_params().copy(**overrides)
        if params.k_min >= params.k_max:
            params = params.copy(k_max=int(params.k_min * 4))
        params.validate()
        points.append(params)
    return points


@dataclass
class GridPointResult:
    params: DcqcnParams
    utility: float
    #: Which fidelity produced ``utility``: "des" (full simulation),
    #: "hybrid" (hybrid flow/packet engine), "fluid" (calibrated
    #: surrogate score), or "aborted" (DES run abandoned early;
    #: utility is its optimistic bound).
    fidelity: str = "des"
    #: Flight-recorder snapshot for this point, when recording was
    #: enabled and the executor kept it (best-K pruning); fluid-scored
    #: points never simulate, so they never carry one.
    recording: Optional[dict] = None


class GridSearchTuner:
    """Online exhaustive search under the common Tuner interface.

    Steps through the grid one point per monitor interval, recording
    each point's measured utility; after a full sweep it dispatches
    the best point and holds it (then optionally re-sweeps).
    """

    name = "GridSearch"

    def __init__(
        self,
        grid: Optional[Dict[str, Sequence[float]]] = None,
        weights: UtilityWeights = DEFAULT_WEIGHTS,
        resweep: bool = False,
    ):
        self.points = expand_grid(grid or DEFAULT_GRID)
        self.weights = weights
        self.resweep = resweep
        self.results: List[GridPointResult] = []
        self._index = 0
        self._pending: Optional[DcqcnParams] = None
        self._converged = False
        self.sweeps_completed = 0

    # -- Tuner interface -------------------------------------------------

    def attach(self, network: Network) -> None:
        network.set_all_params(default_params())

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        measured = utility(stats, self.weights)
        if self._pending is not None:
            self.results.append(GridPointResult(self._pending, measured))
            self._pending = None
        if self._converged:
            return None
        if self._index >= len(self.points):
            self.sweeps_completed += 1
            best = self.best()
            if self.resweep:
                self._index = 0
                self.results = []
            else:
                self._converged = True
            return best.params
        candidate = self.points[self._index]
        self._index += 1
        self._pending = candidate
        return candidate

    # -- results -----------------------------------------------------------

    @property
    def sweep_length(self) -> int:
        """Monitor intervals needed for one full sweep."""
        return len(self.points)

    def best(self) -> GridPointResult:
        if not self.results:
            raise ValueError("no grid points evaluated yet")
        return max(self.results, key=lambda r: r.utility)


def offline_grid_search(
    scenario_factory: Callable[[DcqcnParams], float],
    grid: Optional[Dict[str, Sequence[float]]] = None,
) -> Tuple[GridPointResult, List[GridPointResult]]:
    """Classic offline sweep: evaluate every point on a fresh scenario.

    ``scenario_factory(params)`` must build the scenario, run it, and
    return the achieved utility — each call is one full experiment, so
    the cost is ``len(grid)`` runs (hours on a real cluster; the bench
    measures it in simulator wall-time).
    """
    points = expand_grid(grid or DEFAULT_GRID)
    results = [
        GridPointResult(params, scenario_factory(params)) for params in points
    ]
    best = max(results, key=lambda r: r.utility)
    return best, results


def offline_grid_search_parallel(
    scenario,
    grid: Optional[Dict[str, Sequence[float]]] = None,
    jobs: Optional[int] = None,
    cache=None,
    executor=None,
    skip_intervals: int = 0,
    fidelity=None,
    strategy: Optional[str] = None,
) -> Tuple[GridPointResult, List[GridPointResult]]:
    """Offline sweep over a :class:`~repro.parallel.tasks.ScenarioSpec`.

    Same contract as :func:`offline_grid_search` — ``(best, results)``
    with results in grid order — but each point is a self-contained
    :class:`~repro.parallel.tasks.EvalTask`, so the sweep fans out over
    a process pool and reuses the evaluation cache across repeated
    sweeps.  With ``jobs=1`` the results are identical, just serial.

    ``fidelity`` (a :class:`~repro.tuning.fidelity.FidelityConfig`)
    optionally thins the sweep: in ``screen`` mode the fluid surrogate
    scores every point and only the top ``1/screen_ratio`` fraction
    runs the DES (the rest report calibrated surrogate utilities,
    marked ``fidelity="fluid"``); ``surrogate`` mode DES-confirms only
    the fluid-best point.  Early abort uses the first completed DES
    point as the incumbent.  The returned ``best`` is always a point
    measured (completely) by the DES.
    """
    # Lazy: repro.parallel imports experiments.scenarios, which would
    # otherwise cycle back through this module at import time.
    from repro.parallel import EvalTask, SweepExecutor
    from repro.tuning.fidelity import FidelityConfig, SurrogateScreen

    points = expand_grid(grid or DEFAULT_GRID)
    executor = executor or SweepExecutor(
        jobs=jobs, cache=cache, strategy=strategy
    )
    fidelity = fidelity or FidelityConfig()

    with trace.span(
        "sweep.grid", {"points": len(points), "fidelity": fidelity.mode}
    ):
        if fidelity.mode == "full" and not fidelity.early_abort:
            tasks = [
                EvalTask(scenario=scenario, seed=scenario.seed, params=p, index=i)
                for i, p in enumerate(points)
            ]
            evals = executor.map(tasks)
            results = [
                GridPointResult(
                    params,
                    res.mean_utility(skip=skip_intervals),
                    recording=res.recording,
                )
                for params, res in zip(points, evals)
            ]
            best = max(results, key=lambda r: r.utility)
            return best, results

        if fidelity.mode == "hybrid":
            # The rung between the fluid surrogate and the full DES:
            # every point runs the hybrid flow/packet engine (fluid
            # elephants, packet-level mice/queues/ECN), then the argmax
            # is re-measured at full fidelity so the reported best is a
            # real DES utility.  Hybrid results are never cached.
            hybrid_evals = executor.map(
                [
                    EvalTask(
                        scenario=scenario,
                        seed=scenario.seed,
                        params=p,
                        index=i,
                        engine_mode="hybrid",
                    )
                    for i, p in enumerate(points)
                ]
            )
            winner = max(
                range(len(points)),
                key=lambda i: (
                    hybrid_evals[i].mean_utility(skip=skip_intervals),
                    -i,
                ),
            )
            # engine_mode=None honours a session-wide `lanes` setting
            # (bit-identical to `off`), so the confirmation stays full
            # fidelity either way.
            confirm = executor.map(
                [
                    EvalTask(
                        scenario=scenario,
                        seed=scenario.seed,
                        params=points[winner],
                        index=winner,
                    )
                ]
            )[0]
            results = [
                GridPointResult(
                    params,
                    res.mean_utility(skip=skip_intervals),
                    fidelity="hybrid",
                    recording=res.recording,
                )
                for params, res in zip(points, hybrid_evals)
            ]
            results[winner] = GridPointResult(
                points[winner],
                confirm.mean_utility(skip=skip_intervals),
                recording=confirm.recording,
            )
            return results[winner], results

        screen = (
            SurrogateScreen(scenario, fidelity)
            if fidelity.mode in ("screen", "surrogate")
            else None
        )
        if fidelity.mode == "surrogate":
            scores = screen.score(points)
            des_indices = [max(range(len(points)), key=lambda i: (scores[i], -i))]
        elif fidelity.mode == "screen":
            keep = max(1, math.ceil(len(points) / fidelity.screen_ratio))
            des_indices, scores = screen.select(points, keep)
        else:  # full + early abort
            scores = None
            des_indices = list(range(len(points)))

        # Establish the abort incumbent with one untimed full evaluation:
        # the fluid-best DES candidate (or simply the first point).
        if scores is not None:
            first = max(des_indices, key=lambda i: (scores[i], -i))
        else:
            first = des_indices[0]
        rest = [i for i in des_indices if i != first]

        def _task(i: int, threshold) -> EvalTask:
            return EvalTask(
                scenario=scenario,
                seed=scenario.seed,
                params=points[i],
                index=i,
                abort_threshold=threshold,
                abort_after_frac=fidelity.abort_after_frac,
            )

        des_results = {first: executor.map([_task(first, None)])[0]}
        threshold = fidelity.abort_threshold(des_results[first].utility)
        if rest:
            for i, res in zip(rest, executor.map([_task(i, threshold) for i in rest])):
                des_results[i] = res

        if screen is not None:
            for i in sorted(des_results):
                res = des_results[i]
                if not res.aborted:
                    screen.observe(scores[i], res.utility)

        results = []
        for i, params in enumerate(points):
            res = des_results.get(i)
            if res is None:
                results.append(
                    GridPointResult(
                        params, screen.calibration.apply(scores[i]), fidelity="fluid"
                    )
                )
            elif res.aborted:
                results.append(
                    GridPointResult(
                        params, res.utility, fidelity="aborted",
                        recording=res.recording,
                    )
                )
            else:
                results.append(
                    GridPointResult(
                        params,
                        res.mean_utility(skip=skip_intervals),
                        recording=res.recording,
                    )
                )
        best = max(
            (r for r in results if r.fidelity == "des"), key=lambda r: r.utility
        )
        return best, results
