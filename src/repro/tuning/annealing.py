"""Simulated annealing over DCQCN parameters (Algorithm 1).

The annealer is written *event-driven*, matching the paper's closed
loop: each monitor interval the controller (a) reports the measured
utility of the parameters dispatched last interval via
:meth:`feedback`, then (b) asks for the next mutation via
:meth:`propose` and dispatches it.  A tuning *process* runs until the
temperature cools below ``final_temp``; the best setting seen is then
(re)dispatched and the annealer reports :attr:`done`.

Paraleon's two SA optimizations (Section III-C):

1. **Guided randomness** — instead of mutating uniformly, each
   parameter is driven in the direction friendly to the dominant flow
   type with probability ``min(µ, η)`` (µ = dominant-type proportion
   from the measured FSD, η = exploitation cap, 0.8 in Table III), and
   in the anti-dominant direction otherwise, with empirical step
   ``s_p × rand(0.5, 1)``.
2. **Relaxed temperature** — the short schedule of Table III
   (T₀ = 90, T_final = 10, cooling 0.85, 20 iterations per level),
   which ends a tuning process after ~260 monitor intervals instead of
   the thousands a textbook schedule needs.

:class:`NaiveAnnealer` is the ablation baseline: unguided mutation
(50/50 directions, wider step range) on a conventional slow schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.simulator.dcqcn import DcqcnParams
from repro.telemetry import trace
from repro.telemetry.registry import get_registry
from repro.tuning.parameters import ParameterSpace

_SA_STEPS = get_registry().counter(
    "repro_sa_steps_total", "SA feedback (Metropolis) steps"
)
_SA_ACCEPTS = get_registry().counter(
    "repro_sa_accepts_total", "SA steps whose candidate was accepted"
)
_SA_PROCESSES = get_registry().counter(
    "repro_sa_processes_total", "SA tuning processes started"
)


@dataclass(frozen=True)
class AnnealingSchedule:
    """Temperature schedule; defaults are Table III ("relaxed")."""

    initial_temp: float = 90.0
    final_temp: float = 10.0
    cooling_rate: float = 0.85
    iterations_per_temp: int = 20

    def __post_init__(self) -> None:
        if self.initial_temp <= 0 or self.final_temp <= 0:
            raise ValueError("temperatures must be positive")
        if self.final_temp > self.initial_temp:
            raise ValueError("final_temp must be <= initial_temp")
        if not 0.0 < self.cooling_rate < 1.0:
            raise ValueError("cooling_rate must be in (0, 1)")
        if self.iterations_per_temp < 1:
            raise ValueError("iterations_per_temp must be >= 1")

    def total_rounds(self) -> int:
        """Number of temperature levels before the process finishes."""
        rounds = math.ceil(
            math.log(self.final_temp / self.initial_temp)
            / math.log(self.cooling_rate)
        )
        return max(1, int(rounds))

    def total_iterations(self) -> int:
        return self.total_rounds() * self.iterations_per_temp


# Textbook schedule used by the naive_SA ablation arm.
NAIVE_SCHEDULE = AnnealingSchedule(
    initial_temp=500.0, final_temp=1.0, cooling_rate=0.95, iterations_per_temp=20
)


@dataclass
class SaState:
    """Mutable annealing state, exposed for tests and logging."""

    current_solution: DcqcnParams
    current_util: float
    best_solution: DcqcnParams
    best_util: float
    temperature: float
    iteration: int = 0          # iteration within the current temperature
    total_feedbacks: int = 0


class _AnnealerBase:
    """Shared propose/feedback machinery for both annealer variants."""

    #: subclasses set these
    guided: bool
    step_scale_range: Tuple[float, float]

    def __init__(
        self,
        space: ParameterSpace,
        schedule: AnnealingSchedule,
        rng: Optional[random.Random] = None,
        eta: float = 0.8,
        temperature_scale: float = 0.01,
    ):
        if not 0.5 <= eta <= 1.0:
            raise ValueError("eta (max exploitation rate) must be in [0.5, 1]")
        self.space = space
        self.schedule = schedule
        self.rng = rng or random.Random(0)
        self.eta = eta
        # Algorithm 1 evaluates exp(Δ/T) with T cooling from 90 to 10,
        # which only produces meaningful acceptance probabilities if
        # the utility is on a 0-100 scale; ours is in [0, 1], so the
        # default ``temperature_scale`` of 0.01 restores the intended
        # behaviour (early: accept most moves; late: reject clearly
        # worse ones).  Setting it to 1.0 reproduces the
        # accept-everything walk of a literal [0, 1] reading.
        self.temperature_scale = temperature_scale
        self.state: Optional[SaState] = None
        self._pending: Optional[DcqcnParams] = None
        self._pending_batch: Optional[list] = None
        self.utility_trace: list = []

    # -- lifecycle -----------------------------------------------------

    def begin(self, initial: DcqcnParams, initial_util: float = 0.0) -> None:
        """Start a tuning process from the currently deployed setting."""
        clamped = self.space.clamp(initial)
        self.state = SaState(
            current_solution=clamped,
            current_util=initial_util,
            best_solution=clamped,
            best_util=initial_util,
            temperature=self.schedule.initial_temp,
        )
        self._pending = None
        self._pending_batch = None
        self.utility_trace = []
        _SA_PROCESSES.inc()
        if trace.active:
            trace.event(
                "sa.begin",
                {
                    "temperature": self.schedule.initial_temp,
                    "initial_utility": initial_util,
                    "params": clamped.as_dict(),
                    "guided": self.guided,
                },
            )

    @property
    def running(self) -> bool:
        return self.state is not None and not self.done

    @property
    def done(self) -> bool:
        if self.state is None:
            return False
        return self.state.temperature < self.schedule.final_temp

    @property
    def best(self) -> DcqcnParams:
        if self.state is None:
            raise RuntimeError("annealer has not been started")
        return self.state.best_solution

    # -- one monitor interval -------------------------------------------

    def propose(
        self, tp_bias: Optional[Tuple[bool, float]] = None
    ) -> DcqcnParams:
        """Generate the next candidate ``P_m`` (Algorithm 1 lines 14-22).

        ``tp_bias`` is ``(dominant_is_elephant, µ)`` from the measured
        flow size distribution; ignored by unguided annealers.
        """
        if self.state is None:
            raise RuntimeError("annealer has not been started")
        if self._pending_batch is not None:
            raise RuntimeError("a batch proposal is awaiting feedback_batch()")
        tp_probability = self._tp_probability(tp_bias)
        # "With high temperature at the beginning, SA can explore and
        # mutate new attempts in more random directions and steps": the
        # step range shrinks as the temperature cools, so a freshly
        # (re)started process adapts in big moves while a nearly
        # converged one fine-tunes.
        temp_factor = self._step_temperature_factor()
        low, high = self.step_scale_range
        candidate = self.space.mutate(
            self.state.current_solution,
            self.rng,
            tp_probability,
            (low * temp_factor, high * temp_factor),
        )
        self._pending = candidate
        return candidate

    def _step_temperature_factor(self) -> float:
        ratio = self.state.temperature / self.schedule.initial_temp
        return min(1.0, max(0.25, math.sqrt(max(ratio, 0.0))))

    def _tp_probability(self, tp_bias: Optional[Tuple[bool, float]]) -> float:
        if not self.guided or tp_bias is None:
            return 0.5
        dominant_is_elephant, mu = tp_bias
        mu = min(max(mu, 0.0), 1.0)
        exploit = min(mu, self.eta)
        return exploit if dominant_is_elephant else 1.0 - exploit

    def feedback(self, new_util: float, terms: Optional[dict] = None) -> None:
        """Report the measured utility of the last proposal.

        Runs the Metropolis acceptance (Algorithm 1 lines 6-13) and
        advances the iteration/temperature counters.  ``terms`` is the
        optional ``O_TP/O_RTT/O_PFC`` breakdown of ``new_util``; it is
        recorded in the ``sa.step`` trace record and does not affect
        the search.
        """
        if self.state is None:
            raise RuntimeError("annealer has not been started")
        if self._pending is None:
            raise RuntimeError("feedback() called before propose()")
        state = self.state
        candidate = self._pending
        state.total_feedbacks += 1
        self.utility_trace.append(new_util)

        delta = new_util - state.current_util
        temp = state.temperature * self.temperature_scale
        accepted = delta > 0 or math.exp(delta / temp) > self.rng.random()
        if accepted:
            state.current_util = new_util
            state.current_solution = candidate
        if state.current_util > state.best_util:
            state.best_util = state.current_util
            state.best_solution = state.current_solution
        self._pending = None

        _SA_STEPS.inc()
        if accepted:
            _SA_ACCEPTS.inc()
        if trace.active:
            trace.event(
                "sa.step",
                {
                    "temperature": state.temperature,
                    "iteration": state.iteration,
                    "feedbacks": state.total_feedbacks,
                    "params": candidate.as_dict(),
                    "utility": new_util,
                    "accepted": accepted,
                    "best_utility": state.best_util,
                    "terms": terms or {},
                },
            )

        state.iteration += 1
        if state.iteration >= self.schedule.iterations_per_temp:
            state.iteration = 0
            state.temperature *= self.schedule.cooling_rate

    # -- batched candidates (parallel evaluation fabric) ----------------

    def propose_batch(
        self, k: int, tp_bias: Optional[Tuple[bool, float]] = None
    ) -> list:
        """Generate ``k`` candidates for concurrent evaluation.

        All ``k`` mutations start from the *current* solution (the
        batched-SA relaxation: within one batch, candidates do not see
        each other's accepts); :meth:`feedback_batch` then applies the
        Metropolis rule to each measured utility **in proposal order**,
        so acceptance, best-tracking and the temperature schedule
        behave exactly as if the candidates had been played serially.
        With ``k=1`` this is bit-for-bit identical to
        :meth:`propose` / :meth:`feedback`.
        """
        if k < 1:
            raise ValueError("batch size must be >= 1")
        if self.state is None:
            raise RuntimeError("annealer has not been started")
        if self._pending is not None or self._pending_batch is not None:
            raise RuntimeError("a proposal is already awaiting feedback")
        tp_probability = self._tp_probability(tp_bias)
        temp_factor = self._step_temperature_factor()
        low, high = self.step_scale_range
        base = self.state.current_solution
        batch = [
            self.space.mutate(
                base,
                self.rng,
                tp_probability,
                (low * temp_factor, high * temp_factor),
            )
            for _ in range(k)
        ]
        self._pending_batch = batch
        return list(batch)

    def screen_batch(self, keep_indices: list) -> list:
        """Prune the pending batch to the surviving candidates.

        The multi-fidelity screen: a cheap surrogate scores the whole
        proposal batch and only ``keep_indices`` (positions into the
        batch from :meth:`propose_batch`, in their original order) go
        on to full evaluation.  :meth:`feedback_batch` then expects one
        utility per *survivor*.  Candidates screened out never enter
        the Metropolis walk — they are treated as if never proposed,
        which keeps the acceptance sequence a pure function of the
        surviving (candidate, utility) stream.

        Returns the surviving candidates, positionally aligned with the
        utilities that :meth:`feedback_batch` will expect.
        """
        if self._pending_batch is None:
            raise RuntimeError("screen_batch() called before propose_batch()")
        batch = self._pending_batch
        indices = list(keep_indices)
        if not indices:
            raise ValueError("screen_batch() must keep at least one candidate")
        if indices != sorted(set(indices)):
            raise ValueError("keep_indices must be strictly increasing")
        if indices[0] < 0 or indices[-1] >= len(batch):
            raise ValueError(
                f"keep_indices out of range for batch of {len(batch)}"
            )
        survivors = [batch[i] for i in indices]
        self._pending_batch = survivors
        return list(survivors)

    def feedback_batch(self, utilities: list) -> None:
        """Accept/reject a batch of measured utilities, in order."""
        if self._pending_batch is None:
            raise RuntimeError("feedback_batch() called before propose_batch()")
        batch = self._pending_batch
        if len(utilities) != len(batch):
            raise ValueError(
                f"got {len(utilities)} utilities for {len(batch)} candidates"
            )
        self._pending_batch = None
        for candidate, util in zip(batch, utilities):
            self._pending = candidate
            self.feedback(util)


class ImprovedAnnealer(_AnnealerBase):
    """Paraleon's SA: guided randomness + relaxed temperature."""

    guided = True
    step_scale_range = (0.5, 1.0)

    def __init__(
        self,
        space: ParameterSpace,
        schedule: Optional[AnnealingSchedule] = None,
        rng: Optional[random.Random] = None,
        eta: float = 0.8,
        temperature_scale: float = 0.01,
    ):
        super().__init__(
            space, schedule or AnnealingSchedule(), rng, eta, temperature_scale
        )


class NaiveAnnealer(_AnnealerBase):
    """Textbook SA baseline: unguided mutation, slow schedule."""

    guided = False
    step_scale_range = (0.25, 2.0)

    def __init__(
        self,
        space: ParameterSpace,
        schedule: Optional[AnnealingSchedule] = None,
        rng: Optional[random.Random] = None,
        temperature_scale: float = 0.01,
    ):
        super().__init__(
            space, schedule or NAIVE_SCHEDULE, rng, 0.8, temperature_scale
        )
