"""Performance-oriented tuning: parameter space, utility, SA search."""

from repro.tuning.parameters import (
    ParameterSpace,
    ParameterSpec,
    Direction,
    default_params,
    expert_params,
    default_space,
)
from repro.tuning.utility import UtilityWeights, utility
from repro.tuning.annealing import (
    AnnealingSchedule,
    ImprovedAnnealer,
    NaiveAnnealer,
    SaState,
)
from repro.tuning.search import Tuner, StaticTuner
from repro.tuning.grid import (
    GridSearchTuner,
    expand_grid,
    offline_grid_search,
)
from repro.tuning.eval_cache import EvalCache, default_cache, quantize_params
from repro.tuning.fidelity import (
    FidelityConfig,
    SurrogateScreen,
    calibrate_on_anchors,
    default_anchor_params,
)

__all__ = [
    "ParameterSpace",
    "ParameterSpec",
    "Direction",
    "default_params",
    "expert_params",
    "default_space",
    "UtilityWeights",
    "utility",
    "AnnealingSchedule",
    "ImprovedAnnealer",
    "NaiveAnnealer",
    "SaState",
    "Tuner",
    "StaticTuner",
    "GridSearchTuner",
    "expand_grid",
    "offline_grid_search",
    "EvalCache",
    "default_cache",
    "quantize_params",
    "FidelityConfig",
    "SurrogateScreen",
    "calibrate_on_anchors",
    "default_anchor_params",
]
