"""The DCQCN tuning space: bounds, directions and empirical steps.

Section III-C of the paper observes that each parameter's effect can be
classified into a *throughput-friendly* and a *delay-friendly* tuning
direction (Fig. 5), and that guided SA mutation needs an empirical step
``s_p`` per parameter.  This module encodes that knowledge:

* :class:`ParameterSpec` — one tunable knob: bounds, step, and which
  direction (increment/decrement) favours throughput.
* :class:`ParameterSpace` — the full set ``P`` of 11 knobs spanning
  both RNIC and switch sides, with clamping and mutation helpers.
* :func:`default_params` / :func:`expert_params` — the two static
  baselines compared throughout the evaluation ("Default" is the
  NVIDIA out-of-box setting, "Expert" is Table I), both expressed at
  this reproduction's 10 Gbps reference fabric.

Scale-down note: Table I is stated for a 400 Gbps testbed (ai 50 Mbps,
hai 150 Mbps, K_min 1600 KB, K_max 6400 KB, ...).  We preserve the
*relationships* that make the expert setting throughput-friendly —
larger increase steps, fewer rate cuts (bigger
``rate_reduce_monitor_period``), sparser CNPs, higher ECN thresholds —
re-expressed at the 10 Gbps reference so queue thresholds stay
proportionate to the scaled BDP.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.units import kb, mbps, us


class Direction(enum.IntEnum):
    """Sign of the throughput-friendly adjustment for a parameter."""

    INCREMENT = 1
    DECREMENT = -1


@dataclass(frozen=True)
class ParameterSpec:
    """One tunable DCQCN knob.

    ``tp_direction`` is the throughput-friendly direction from the
    paper's single-parameter impact study; the delay-friendly direction
    is its negation.  ``step`` is the empirical step ``s_p``.
    ``integral`` marks knobs that must stay integers (byte thresholds,
    stage counts).
    """

    name: str
    low: float
    high: float
    step: float
    tp_direction: Direction
    integral: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"{self.name}: low must be < high")
        if self.step <= 0:
            raise ValueError(f"{self.name}: step must be positive")

    def clamp(self, value: float) -> float:
        value = min(max(value, self.low), self.high)
        if self.integral:
            value = int(round(value))
            value = int(min(max(value, self.low), self.high))
        return value

    def move(self, value: float, toward_throughput: bool, scale: float) -> float:
        """Move ``value`` one (scaled) step in the requested direction."""
        sign = int(self.tp_direction) if toward_throughput else -int(self.tp_direction)
        return self.clamp(value + sign * self.step * scale)


# The tuned set P.  Bounds are for the 10 Gbps reference fabric and
# deliberately span a *sane operating envelope*, not the hardware's
# full register range: the empirical steps s_p and the bounds together
# encode the expert knowledge the paper bakes into its guided search
# (an operator would never mark every packet at a 4 KB queue or allow
# a rate cut every 2 us, so neither does the search space).
_SPECS: List[ParameterSpec] = [
    ParameterSpec("rpg_ai_rate", mbps(10), mbps(500), mbps(20), Direction.INCREMENT),
    ParameterSpec("rpg_hai_rate", mbps(50), mbps(2000), mbps(100), Direction.INCREMENT),
    ParameterSpec(
        "rate_reduce_monitor_period", us(15), us(400), us(25), Direction.INCREMENT
    ),
    ParameterSpec(
        "min_time_between_cnps", us(15), us(400), us(25), Direction.INCREMENT
    ),
    ParameterSpec("k_min", kb(8), kb(400), kb(20), Direction.INCREMENT, integral=True),
    ParameterSpec(
        "k_max", kb(60), kb(2000), kb(100), Direction.INCREMENT, integral=True
    ),
    ParameterSpec("p_max", 0.02, 0.6, 0.05, Direction.DECREMENT),
    ParameterSpec("rpg_time_reset", us(50), us(1200), us(50), Direction.DECREMENT),
    ParameterSpec(
        "rpg_byte_reset", kb(8), kb(300), kb(8), Direction.DECREMENT, integral=True
    ),
    ParameterSpec(
        "dce_tcp_g", 1.0 / 1024.0, 1.0 / 16.0, 1.0 / 256.0, Direction.DECREMENT
    ),
    ParameterSpec("rpg_threshold", 1, 10, 1, Direction.DECREMENT, integral=True),
]


class ParameterSpace:
    """The searchable DCQCN parameter space."""

    def __init__(self, specs: Optional[List[ParameterSpec]] = None):
        self.specs: Dict[str, ParameterSpec] = {
            spec.name: spec for spec in (specs or _SPECS)
        }

    @property
    def names(self) -> List[str]:
        return list(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def clamp(self, params: DcqcnParams) -> DcqcnParams:
        """Clamp every tuned field into bounds and repair k_min < k_max."""
        values = params.as_dict()
        for name, spec in self.specs.items():
            values[name] = spec.clamp(values[name])
        # Keep the marking ramp non-degenerate: at least one MTU apart.
        if values["k_min"] >= values["k_max"]:
            values["k_min"] = int(
                max(self.specs["k_min"].low, values["k_max"] - kb(8))
            )
        return DcqcnParams.from_dict(values)

    def mutate(
        self,
        params: DcqcnParams,
        rng: random.Random,
        tp_probability: float,
        step_scale_range: tuple = (0.5, 1.0),
    ) -> DcqcnParams:
        """One SA mutation: move every knob one random-scaled step.

        Each parameter independently goes in the throughput-friendly
        direction with probability ``tp_probability`` (the paper's
        ``min(µ, η)`` guided-randomness rule when guided, 0.5 when
        naive), with step ``s_p × rand(*step_scale_range)``.
        """
        if not 0.0 <= tp_probability <= 1.0:
            raise ValueError("tp_probability must be in [0, 1]")
        values = params.as_dict()
        low, high = step_scale_range
        for name, spec in self.specs.items():
            toward_tp = rng.random() < tp_probability
            scale = rng.uniform(low, high)
            values[name] = spec.move(values[name], toward_tp, scale)
        candidate = DcqcnParams.from_dict(values)
        return self.clamp(candidate)

    def random_point(self, rng: random.Random, base: DcqcnParams) -> DcqcnParams:
        """Uniform random setting (used by tests and random-restart)."""
        values = base.as_dict()
        for name, spec in self.specs.items():
            if spec.integral:
                values[name] = int(rng.uniform(spec.low, spec.high))
            else:
                values[name] = rng.uniform(spec.low, spec.high)
        return self.clamp(DcqcnParams.from_dict(values))

    def distance(self, a: DcqcnParams, b: DcqcnParams) -> float:
        """Normalized L2 distance between two settings (diagnostics)."""
        total = 0.0
        av, bv = a.as_dict(), b.as_dict()
        for name, spec in self.specs.items():
            span = spec.high - spec.low
            total += ((av[name] - bv[name]) / span) ** 2
        return math.sqrt(total / len(self.specs))


def default_space() -> ParameterSpace:
    """The paper's tuned parameter set ``P``."""
    return ParameterSpace()


def default_params() -> DcqcnParams:
    """NVIDIA out-of-box setting at the 10 Gbps reference fabric."""
    return DcqcnParams()


def expert_params() -> DcqcnParams:
    """The Table I expert setting, rescaled to the reference fabric.

    Relationships preserved from Table I (vs the default): 5x additive
    increase, larger hyper increase, 4x rarer rate cuts, ~3x sparser
    CNPs, and ECN thresholds lifted with a flatter-but-longer marking
    ramp (higher ``k_min``/``k_max``, ``p_max`` 0.2).  The result is a
    strongly throughput-friendly static setting, which is exactly how
    the paper uses it (great for elephants, worse for latency).
    """
    return DcqcnParams(
        rpg_ai_rate=mbps(100.0),
        rpg_hai_rate=mbps(400.0),
        rate_reduce_monitor_period=us(200.0),
        min_time_between_cnps=us(150.0),
        k_min=kb(80.0),
        k_max=kb(320.0),
        p_max=0.2,
    )
