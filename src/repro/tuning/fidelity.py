"""Multi-fidelity evaluation policy: screening, surrogate, early abort.

Offline tuning spends almost all of its wall-clock inside full
discrete-event evaluations, most of which exist only to be rejected.
This module packages the three fidelities the tuning loops can trade
between:

* **full** — every candidate runs the packet-level DES.  The reference
  fidelity; byte-identical to the pre-multi-fidelity behaviour.
* **hybrid** — every candidate runs the hybrid flow/packet engine
  (:mod:`repro.simulator.hybrid`): elephants move at fluid rates, mice
  and queues stay packet-level.  Cheaper than the full DES, far more
  faithful than the pure fluid surrogate; the sweep winner is
  re-confirmed at full fidelity, so the reported best is always a real
  DES measurement.
* **screen** — successive halving: each batch proposes
  ``screen_ratio``× more candidates than will be fully evaluated, the
  vectorized :class:`~repro.simulator.fluid.FluidModel` scores them all
  in-process, and only the top fraction graduates to the DES.  The
  surrogate only decides *which* candidates run, never what their
  utility is, so completed DES results keep their digests.
* **surrogate** — the fluid model scores everything and only the final
  winner is confirmed with one DES run.  Fastest, least faithful; for
  coarse exploration of large grids.

Early abort is orthogonal: with a known incumbent, a DES run whose
best-achievable mean utility falls below ``incumbent - abort_margin``
is abandoned partway (see
:func:`repro.parallel.tasks.make_abort_check`).  Both knobs are
deterministic — screening is a pure function of the candidate batch
and abort decisions are a pure function of the utility stream — so
multi-fidelity sweeps remain reproducible run-to-run.

:class:`SurrogateScreen` also keeps a running calibration of the
surrogate against every candidate that was evaluated at both
fidelities, exposing the honest error bar
(:class:`~repro.simulator.fluid.FluidCalibration`) and feeding the
``repro_fidelity_surrogate_error`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.fluid import (
    DEFAULT_DT,
    FluidCalibration,
    FluidModel,
    fit_calibration,
    spearman_rank_correlation,
)
from repro.telemetry import trace
from repro.telemetry.registry import get_registry

#: Recognized values for the ``--fidelity`` CLI flag and config field,
#: ordered from highest fidelity to lowest.
FIDELITY_MODES = ("full", "hybrid", "screen", "surrogate")

_SCREEN_BATCHES = get_registry().counter(
    "repro_fidelity_screen_batches_total",
    "Candidate batches scored by the fluid surrogate",
)
_SCREENED_OUT = get_registry().counter(
    "repro_fidelity_screened_out_total",
    "Candidates eliminated by the surrogate screen (never ran the DES)",
)
_SURROGATE_ERROR = get_registry().histogram(
    "repro_fidelity_surrogate_error",
    (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
    "abs(calibrated fluid utility - DES utility) on dual-fidelity points",
)


@dataclass(frozen=True)
class FidelityConfig:
    """How aggressively a tuning loop may trade fidelity for speed."""

    mode: str = "full"
    #: Screen proposes ``screen_ratio * K`` candidates per batch of
    #: ``K`` DES evaluations; must be >= 1 (1.0 disables the screen).
    screen_ratio: float = 3.0
    #: Abandon DES runs that provably cannot reach the incumbent.
    early_abort: bool = False
    #: Fraction of the run that must complete before aborting.
    abort_after_frac: float = 0.5
    #: Slack below the incumbent a candidate may still be worth: the
    #: abort threshold is ``incumbent - abort_margin``, keeping
    #: near-incumbent candidates alive for the Metropolis walk.
    abort_margin: float = 0.05
    #: Fluid integration sub-step (part of the reproducibility config).
    dt: float = DEFAULT_DT

    def __post_init__(self) -> None:
        if self.mode not in FIDELITY_MODES:
            raise ValueError(
                f"mode must be one of {FIDELITY_MODES}, got {self.mode!r}"
            )
        if self.screen_ratio < 1.0:
            raise ValueError("screen_ratio must be >= 1")
        if not 0.0 <= self.abort_after_frac <= 1.0:
            raise ValueError("abort_after_frac must be in [0, 1]")
        if self.abort_margin < 0.0:
            raise ValueError("abort_margin must be >= 0")
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")

    def proposals_for(self, k: int) -> int:
        """Batch size to propose so ``k`` survivors graduate."""
        if self.mode != "screen":
            return k
        return max(k, int(round(k * self.screen_ratio)))

    def abort_threshold(self, incumbent: Optional[float]) -> Optional[float]:
        """Per-task abort threshold given the current incumbent."""
        if not self.early_abort or incumbent is None:
            return None
        return incumbent - self.abort_margin


class SurrogateScreen:
    """Fluid-model screening for one scenario.

    Stateless in its decisions (scores are a deterministic function of
    the candidate batch) but stateful in its *bookkeeping*: every
    candidate later evaluated by the DES is fed back via
    :meth:`observe`, maintaining a running affine calibration and error
    estimate of the surrogate on exactly the region of parameter space
    the search is visiting.
    """

    def __init__(self, scenario, config: Optional[FidelityConfig] = None):
        self.scenario = scenario
        self.config = config or FidelityConfig(mode="screen")
        self.model = FluidModel(dt=self.config.dt)
        self._fluid_anchor: List[float] = []
        self._des_anchor: List[float] = []
        self.calibration = FluidCalibration()

    # -- scoring / selection --------------------------------------------

    def score(self, params: Sequence[DcqcnParams]) -> List[float]:
        """Raw (uncalibrated) fluid utilities, one per candidate."""
        results = self.model.evaluate_batch(self.scenario, list(params))
        _SCREEN_BATCHES.inc()
        return [r.utility for r in results]

    def select(
        self, params: Sequence[DcqcnParams], keep: int
    ) -> Tuple[List[int], List[float]]:
        """Indices of the ``keep`` best candidates, plus all scores.

        The returned indices are sorted ascending (the order
        :meth:`~repro.tuning.annealing._AnnealerBase.screen_batch`
        expects); ties break toward the earlier proposal so selection
        is deterministic.
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        scores = self.score(params)
        keep = min(keep, len(scores))
        ranked = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
        survivors = sorted(ranked[:keep])
        _SCREENED_OUT.inc(len(scores) - keep)
        if trace.active:
            trace.event(
                "fidelity.screen",
                {
                    "proposed": len(scores),
                    "kept": keep,
                    "survivors": survivors,
                    "scores": [round(s, 6) for s in scores],
                },
            )
        return survivors, scores

    # -- calibration ----------------------------------------------------

    def observe(self, fluid_utility: float, des_utility: float) -> None:
        """Record one candidate measured at both fidelities."""
        error = abs(self.calibration.apply(fluid_utility) - des_utility)
        _SURROGATE_ERROR.observe(error)
        self._fluid_anchor.append(fluid_utility)
        self._des_anchor.append(des_utility)
        self.calibration = fit_calibration(self._fluid_anchor, self._des_anchor)

    @property
    def spearman(self) -> float:
        """Rank agreement between the fidelities on observed points."""
        return spearman_rank_correlation(self._fluid_anchor, self._des_anchor)

    @property
    def n_observed(self) -> int:
        return len(self._fluid_anchor)


def calibrate_on_anchors(
    scenario,
    anchor_params: Sequence[DcqcnParams],
    anchor_des_utilities: Sequence[float],
    dt: float = DEFAULT_DT,
) -> FluidCalibration:
    """Fit the fluid surrogate to DES ground truth on an anchor set.

    ``anchor_des_utilities`` are full-fidelity utilities for
    ``anchor_params`` (typically produced once by a sweep and cached).
    The returned calibration carries the Spearman rank agreement and
    residual RMS — the two numbers that decide whether screening is
    sound on this scenario at all.
    """
    model = FluidModel(dt=dt)
    fluid = [r.utility for r in model.evaluate_batch(scenario, list(anchor_params))]
    return fit_calibration(fluid, list(anchor_des_utilities))


def default_anchor_params(base: Optional[DcqcnParams] = None) -> List[DcqcnParams]:
    """A small spread of anchor points covering the tuned space.

    Eight hand-picked corners/midpoints of the DCQCN knobs that the
    grid and SA searches actually move, centred on ``base`` (factory
    defaults when omitted).  Used by the calibration harness and the
    ranking-fidelity tests.
    """
    base = base or DcqcnParams()
    return [
        base.copy(),
        # Expert-ish static setting: deeper marking, calmer cuts.
        base.copy(k_min=40_000, k_max=160_000, p_max=0.05),
        # Aggressive marking.
        base.copy(k_min=5_000, k_max=25_000, p_max=0.5),
        # Deep queue, lazy marking.
        base.copy(k_min=100_000, k_max=400_000, p_max=0.01),
        # Slow cuts.
        base.copy(rate_reduce_monitor_period=500e-6, min_dec_fac=0.9),
        # Fast additive increase.
        base.copy(rpg_ai_rate=100e6, rpg_hai_rate=1e9),
        # Slow alpha decay / slow increase timer.
        base.copy(dce_tcp_rtt=200e-6, rpg_time_reset=1.5e-3),
        # Mid point.
        base.copy(k_min=30_000, k_max=120_000, p_max=0.2, rpg_ai_rate=50e6),
    ]
