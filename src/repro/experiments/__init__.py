"""Experiment harness: scenario builders, the interval runner, FCT
statistics and table/series reporting used by every benchmark."""

from repro.experiments.runner import ExperimentRunner, ExperimentResult
from repro.experiments.persistence import (
    load_result_data,
    result_to_dict,
    save_result,
)
from repro.experiments.fct import (
    FctStats,
    slowdown_records,
    average_slowdown,
    percentile,
    fct_cdf,
)

__all__ = [
    "ExperimentRunner",
    "ExperimentResult",
    "FctStats",
    "slowdown_records",
    "average_slowdown",
    "percentile",
    "fct_cdf",
    "load_result_data",
    "result_to_dict",
    "save_result",
]
