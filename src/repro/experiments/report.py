"""Plain-text table and series rendering for benchmark output.

Every benchmark prints the rows/series the corresponding paper table
or figure reports, through these helpers, so `pytest benchmarks/ -s`
reads like the evaluation section.

The generic primitives (``format_table``, ``format_series``) live in
:mod:`repro.telemetry.tables` so lower layers can render tables
without importing the experiments package; they are re-exported here
for the benchmarks' convenience.
"""

from __future__ import annotations

from repro.telemetry.tables import format_series, format_table

__all__ = ["format_table", "format_series", "improvement"]


def improvement(new: float, old: float) -> float:
    """Relative improvement of ``new`` over ``old`` in percent.

    Positive means ``new`` is smaller (for cost metrics like FCT).
    """
    if old == 0:
        raise ValueError("baseline value is zero")
    return (old - new) / old * 100.0
