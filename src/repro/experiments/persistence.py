"""Serialize experiment results to JSON for offline analysis.

Benchmark tables are text; downstream users plotting their own figures
want the raw series.  :func:`save_result` writes an
:class:`~repro.experiments.runner.ExperimentResult` (flow records,
interval metrics, utility trace) to a JSON file;
:func:`load_result_data` reads it back as plain dictionaries — no
simulator objects needed on the analysis side.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.experiments.runner import ExperimentResult

SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable view of one experiment run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "tuner": result.tuner_name,
        "dispatches": result.dispatches,
        "dropped_packets": result.dropped_packets,
        "events": result.events,
        "utilities": list(result.utilities),
        # One serialization of a flow: FlowRecord.as_dict() (shared
        # with the flight recorder).
        "flows": [r.as_dict() for r in result.records],
        # One serialization of an interval: IntervalStats.snapshot()
        # (shared with the trace emitter and the utility function).
        "intervals": [s.snapshot() for s in result.intervals],
    }


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


def load_result_data(path: Union[str, Path]) -> dict:
    """Read a saved result back as plain dictionaries."""
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    return data
