"""Drive a (network, tuner) pair through monitor intervals.

The runner is the glue every evaluation figure shares: it advances the
simulation one monitor interval ``λ_MI`` at a time, closes the metric
interval, hands the stats to the tuning scheme under test, and
dispatches whatever parameters the scheme returns — exactly the
closed loop of Fig. 1, with the controller's gRPC replaced by direct
calls (see :mod:`repro.rpc` for the socket version).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.simulator.flow import FlowRecord
from repro.simulator.network import Network
from repro.simulator.packet import freelist_occupancy
from repro.simulator.stats import IntervalStats
from repro.simulator.units import ms
from repro.telemetry import recorder, trace
from repro.telemetry.registry import UNIT_INTERVAL_BUCKETS, get_registry
from repro.tuning.search import Tuner
from repro.tuning.utility import UtilityWeights, DEFAULT_WEIGHTS, utility

_INTERVALS = get_registry().counter(
    "repro_intervals_total", "Monitor intervals closed"
)
_DISPATCHES = get_registry().counter(
    "repro_dispatches_total", "Parameter dispatches to the fabric"
)
_UTILITY_HIST = get_registry().histogram(
    "repro_interval_utility",
    UNIT_INTERVAL_BUCKETS,
    "Per-interval utility U (Equation 1)",
)


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    tuner_name: str
    records: List[FlowRecord]
    intervals: List[IntervalStats]
    utilities: List[float]
    dispatches: int
    dropped_packets: int
    events: int
    #: True when an ``abort_check`` stopped the run before ``duration``.
    aborted: bool = False
    #: Flight-recorder snapshot (plain dict) when recording was enabled.
    recording: Optional[dict] = None

    def mean_utility(self, skip: int = 0) -> float:
        values = self.utilities[skip:]
        return sum(values) / len(values) if values else 0.0

    def interval_series(self, attr: str) -> List[float]:
        """Time series of one IntervalStats attribute (e.g. for Fig 8)."""
        return [getattr(interval, attr) for interval in self.intervals]


class ExperimentRunner:
    """Runs one tuning scheme on one network for a fixed duration."""

    def __init__(
        self,
        network: Network,
        tuner: Tuner,
        monitor_interval: float = ms(1.0),
        weights: UtilityWeights = DEFAULT_WEIGHTS,
    ):
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        self.network = network
        self.tuner = tuner
        self.monitor_interval = monitor_interval
        self.weights = weights
        self.intervals: List[IntervalStats] = []
        self.utilities: List[float] = []
        self.dispatches = 0
        self.aborted = False
        self._attached = False
        self.recording: Optional[recorder.RunRecording] = None

    def run(self, duration: float, stop_when=None, abort_check=None) -> ExperimentResult:
        """Run ``duration`` seconds of simulated time from now.

        ``stop_when`` (optional zero-argument callable) is checked at
        every monitor-interval boundary; returning True ends the run
        early — used by workloads with a natural completion point.

        ``abort_check`` (optional callable taking the utility list so
        far) is consulted after each interval closes; returning True
        abandons the run and marks the result ``aborted``.  Unlike
        ``stop_when`` this signals that the partial result must not be
        treated as (or cached as) a completed evaluation.
        """
        if not self._attached:
            self.tuner.attach(self.network)
            self._attached = True
        sim = self.network.sim
        end_time = sim.now + duration
        events_base = sim.events_dispatched
        if recorder.active and self.recording is None:
            self.recording = recorder.RunRecording(
                self.network,
                weights=(self.weights.w_tp, self.weights.w_rtt, self.weights.w_pfc),
            )
        while sim.now < end_time - 1e-12:
            if stop_when is not None and stop_when():
                break
            target = min(sim.now + self.monitor_interval, end_time)
            self.network.run_until(target)
            stats = self.network.stats.end_interval()
            self.intervals.append(stats)
            measured = utility(stats, self.weights)
            self.utilities.append(measured)
            _INTERVALS.inc()
            _UTILITY_HIST.observe(measured)
            if self.recording is not None:
                self.recording.sample(stats, measured)
            if trace.active:
                engine = sim.telemetry_snapshot()
                trace.event(
                    "engine.interval",
                    {
                        **stats.snapshot(),
                        "utility": measured,
                        "events": engine["events_dispatched"] - events_base,
                        "heap": engine["heap_size"],
                        "cancelled": engine["cancelled_pending"],
                        "compactions": engine["compactions"],
                        "freelist": freelist_occupancy(),
                    },
                )
                events_base = engine["events_dispatched"]
            if abort_check is not None and abort_check(self.utilities):
                self.aborted = True
                break
            new_params = self.tuner.on_interval(stats)
            if new_params is not None:
                self.network.set_all_params(new_params)
                self.dispatches += 1
                _DISPATCHES.inc()
        return self.result()

    def result(self) -> ExperimentResult:
        return ExperimentResult(
            tuner_name=self.tuner.name,
            records=list(self.network.records),
            intervals=list(self.intervals),
            utilities=list(self.utilities),
            dispatches=self.dispatches,
            dropped_packets=self.network.total_dropped_packets(),
            events=self.network.sim.events_dispatched,
            aborted=self.aborted,
            recording=(
                self.recording.snapshot() if self.recording is not None else None
            ),
        )


@contextlib.contextmanager
def profile_capture(path: Optional[str]):
    """cProfile the enclosed block and dump stats to ``path``.

    No-op when ``path`` is falsy, so callers can wrap unconditionally:
    ``with profile_capture(args.profile): ...``.  The dump is readable
    with ``python -m pstats PATH`` (or snakeviz, if installed); for
    deterministic per-span attribution use the trace layer's
    self-time summary instead.
    """
    if not path:
        yield None
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
