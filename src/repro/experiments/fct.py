"""FCT slowdown statistics (Fig. 7's metrics).

Slowdown = measured FCT / ideal FCT, where the ideal is the flow
transferring alone at line rate plus half the base RTT.  The paper
reports average and 99.9th-percentile slowdown bucketed by flow size,
plus full FCT CDFs for the LLM workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.simulator.flow import FlowRecord, ideal_fct
from repro.simulator.topology import ClosSpec
from repro.simulator.units import DEFAULT_MTU, HEADER_BYTES, kb, mb

# Size buckets used in the Fig. 7 tables (bytes).
DEFAULT_SIZE_BUCKETS: Tuple[Tuple[int, float], ...] = (
    (0, kb(30.0)),
    (kb(30.0), kb(120.0)),
    (kb(120.0), mb(1.0)),
    (mb(1.0), float("inf")),
)


def bucket_label(low: float, high: float) -> str:
    def fmt(value: float) -> str:
        if value == float("inf"):
            return "inf"
        if value >= mb(1.0):
            return f"{value / mb(1.0):.0f}MB"
        return f"{value / kb(1.0):.0f}KB"

    return f"{fmt(low)}-{fmt(high)}"


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def slowdown_records(
    records: Iterable[FlowRecord],
    spec: ClosSpec,
    mtu: int = DEFAULT_MTU,
    tag: Optional[str] = None,
) -> List[Tuple[FlowRecord, float]]:
    """Pair each record with its FCT slowdown (>= ~1)."""
    result = []
    for record in records:
        if tag is not None and record.tag != tag:
            continue
        base = spec.base_rtt(record.src, record.dst)
        ideal = ideal_fct(
            record.size, spec.host_rate_bps, base, mtu, HEADER_BYTES
        )
        result.append((record, record.fct / ideal))
    return result


def average_slowdown(slowdowns: Sequence[Tuple[FlowRecord, float]]) -> float:
    if not slowdowns:
        raise ValueError("no flow records")
    return sum(s for _, s in slowdowns) / len(slowdowns)


@dataclass
class FctStats:
    """Bucketed slowdown summary for one scheme."""

    scheme: str
    buckets: Dict[str, Dict[str, float]]  # label -> {count, avg, p999}
    overall_avg: float
    overall_p999: float

    @classmethod
    def compute(
        cls,
        scheme: str,
        records: Iterable[FlowRecord],
        spec: ClosSpec,
        mtu: int = DEFAULT_MTU,
        size_buckets: Tuple[Tuple[int, float], ...] = DEFAULT_SIZE_BUCKETS,
        tag: Optional[str] = None,
    ) -> "FctStats":
        pairs = slowdown_records(records, spec, mtu, tag)
        if not pairs:
            raise ValueError(f"no flow records for scheme {scheme!r}")
        buckets: Dict[str, Dict[str, float]] = {}
        for low, high in size_buckets:
            values = [s for r, s in pairs if low <= r.size < high]
            label = bucket_label(low, high)
            if values:
                buckets[label] = {
                    "count": float(len(values)),
                    "avg": sum(values) / len(values),
                    "p999": percentile(values, 99.9),
                }
        all_values = [s for _, s in pairs]
        return cls(
            scheme=scheme,
            buckets=buckets,
            overall_avg=sum(all_values) / len(all_values),
            overall_p999=percentile(all_values, 99.9),
        )


def fct_cdf(
    records: Iterable[FlowRecord], tag: Optional[str] = None, points: int = 20
) -> List[Tuple[float, float]]:
    """(fct_seconds, cumulative_fraction) pairs for CDF plots."""
    fcts = sorted(r.fct for r in records if tag is None or r.tag == tag)
    if not fcts:
        raise ValueError("no flow records")
    n = len(fcts)
    step = max(1, n // points)
    cdf = [(fcts[i], (i + 1) / n) for i in range(0, n, step)]
    if cdf[-1][0] != fcts[-1]:
        cdf.append((fcts[-1], 1.0))
    return cdf
