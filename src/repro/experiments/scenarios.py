"""Canonical topologies, workloads and scheme factories per figure.

Every benchmark builds its scenario through this module so that the
comparisons across schemes are apples-to-apples: same fabric, same
seeds, same workload schedule — only the tuner differs.

Scale classes (see DESIGN.md §5 for the scale-down policy):

* ``small``  —  8 hosts, 2 ToR / 1 spine (fast unit/integration tests);
* ``medium`` — 16 hosts, 4 ToR / 2 spine, 2:1 oversubscription (the
  default benchmark fabric);
* ``large``  — 32 hosts, 8 ToR / 4 spine, the paper's switch counts at
  reduced host fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines import (
    AccTuner,
    DcqcnPlusTuner,
    default_tuner,
    expert_tuner,
    pretrained_tuner,
)
from repro.core import MonitorKind, ParaleonConfig, ParaleonSystem
from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network, NetworkConfig
from repro.simulator.topology import SPECS
from repro.simulator.units import mb, ms
from repro.tuning.grid import GridSearchTuner
from repro.tuning.search import Tuner
from repro.tuning.utility import THROUGHPUT_SENSITIVE_WEIGHTS
from repro.workloads import (
    FbHadoopWorkload,
    LlmTrainingWorkload,
    SolarRpcWorkload,
)

# SPECS (the named scale classes) now lives with the topology code in
# repro.simulator.topology; the import above keeps this module the
# public home for scenario construction.


def make_network(
    scale: str = "medium",
    seed: int = 1,
    params: Optional[DcqcnParams] = None,
    engine_mode: Optional[str] = None,
) -> Network:
    """A fresh fabric of the requested scale class.

    ``engine_mode`` picks the hybrid flow/packet engine (``off`` /
    ``lanes`` / ``hybrid``); ``None`` defers to ``REPRO_HYBRID_ENGINE``.
    """
    spec = SPECS[scale]
    if params is not None:
        config = NetworkConfig(
            spec=spec, seed=seed, params=params, hybrid_engine=engine_mode
        )
    else:
        config = NetworkConfig(spec=spec, seed=seed, hybrid_engine=engine_mode)
    return Network(config)


# ---------------------------------------------------------------------------
# Scheme factories — new tuner instance per call (they hold state)
# ---------------------------------------------------------------------------

SCHEME_FACTORIES: Dict[str, Callable[[], Tuner]] = {
    "default": default_tuner,
    "expert": expert_tuner,
    "acc": AccTuner,
    "dcqcn+": DcqcnPlusTuner,
    "pretrained-llm": lambda: pretrained_tuner("llm"),
    "pretrained-hadoop": lambda: pretrained_tuner("hadoop"),
    "paraleon": lambda: ParaleonSystem(),
    # The paper's prescribed weighting for throughput-sensitive
    # workloads such as LLM training: (w_TP, w_RTT, w_PFC) = (.5,.2,.3).
    "paraleon-tp": lambda: ParaleonSystem(
        config=ParaleonConfig(weights=THROUGHPUT_SENSITIVE_WEIGHTS),
        name="Paraleon",
    ),
    "paraleon-naive-sa": lambda: ParaleonSystem(
        annealer="naive", name="naive_SA"
    ),
    # Section III-C's foil: exhaustive search, optimal but untimely.
    "grid-search": GridSearchTuner,
    "paraleon-no-fsd": lambda: ParaleonSystem(
        monitor=MonitorKind.NONE, name="No FSD"
    ),
    "paraleon-netflow": lambda: ParaleonSystem(
        monitor=MonitorKind.NETFLOW, name="NetFlow"
    ),
    "paraleon-naive-sketch": lambda: ParaleonSystem(
        monitor=MonitorKind.NAIVE_SKETCH, name="Elastic Sketch"
    ),
}

#: The Fig. 7/8 head-to-head set.
MAIN_SCHEMES: List[str] = ["default", "expert", "acc", "dcqcn+", "paraleon"]


def make_tuner(scheme: str) -> Tuner:
    try:
        return SCHEME_FACTORIES[scheme]()
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; known: {sorted(SCHEME_FACTORIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Workload scenario builders
# ---------------------------------------------------------------------------


def install_hadoop(
    network: Network,
    load: float = 0.3,
    duration: float = 0.05,
    seed: int = 42,
    start: float = 0.0,
) -> FbHadoopWorkload:
    """The FB_Hadoop scenario of Fig. 7(a)/(b) and Fig. 10/11."""
    workload = FbHadoopWorkload(
        load=load, duration=duration, seed=seed, start=start
    )
    workload.install(network)
    return workload


def install_llm(
    network: Network,
    n_workers: int = 8,
    flow_size: int = mb(2.0),
    off_period: float = ms(10.0),
    start: float = 0.0,
    max_rounds: Optional[int] = None,
) -> LlmTrainingWorkload:
    """The ON-OFF alltoall scenario of Fig. 7(c)/(d) and Fig. 13."""
    workload = LlmTrainingWorkload(
        n_workers=n_workers,
        flow_size=flow_size,
        off_period=off_period,
        start=start,
        max_rounds=max_rounds,
    )
    workload.install(network)
    return workload


@dataclass
class InfluxScenario:
    """Fig. 8/9: LLM training background + an FB_Hadoop burst."""

    llm: LlmTrainingWorkload
    hadoop: FbHadoopWorkload
    influx_start: float
    influx_duration: float


def install_influx(
    network: Network,
    influx_start: float = 0.03,
    influx_duration: float = 0.03,
    llm_workers: int = 8,
    llm_flow_size: int = mb(2.0),
    hadoop_load: float = 0.3,
    seed: int = 42,
) -> InfluxScenario:
    llm = install_llm(
        network, n_workers=llm_workers, flow_size=llm_flow_size,
        off_period=ms(5.0),
    )
    hadoop = FbHadoopWorkload(
        load=hadoop_load,
        duration=influx_duration,
        seed=seed,
        start=influx_start,
        tag="hadoop-influx",
    )
    hadoop.install(network)
    return InfluxScenario(llm, hadoop, influx_start, influx_duration)


@dataclass
class TestbedDynamicsScenario:
    """Fig. 14: alltoall background + a SolarRPC burst."""

    llm: LlmTrainingWorkload
    solar: SolarRpcWorkload
    burst_start: float
    burst_duration: float


def install_testbed_dynamics(
    network: Network,
    burst_start: float = 0.03,
    burst_duration: float = 0.03,
    llm_workers: int = 8,
    llm_flow_size: int = mb(2.0),
    rpc_rate_per_host: float = 3000.0,
    seed: int = 42,
) -> TestbedDynamicsScenario:
    llm = install_llm(
        network, n_workers=llm_workers, flow_size=llm_flow_size,
        off_period=ms(5.0),
    )
    solar = SolarRpcWorkload(
        rate_per_host=rpc_rate_per_host,
        start=burst_start,
        duration=burst_duration,
        seed=seed,
    )
    solar.install(network)
    return TestbedDynamicsScenario(llm, solar, burst_start, burst_duration)
