"""ParaleonSystem: monitor + tuner bound to a fabric, as a Tuner.

This is the class a downstream user instantiates::

    from repro.core import ParaleonSystem
    from repro.experiments.runner import ExperimentRunner

    system = ParaleonSystem()
    runner = ExperimentRunner(network, system, monitor_interval=1e-3)
    runner.run(duration=0.2)

Construction options cover the paper's ablation arms:

* ``monitor`` — which monitoring pipeline feeds the tuner:
  ``"paraleon"`` (Elastic Sketch + sliding-window ternary states +
  TOS dedup), ``"naive-sketch"``, ``"netflow"``, or ``"none"``
  (tuning runs FSD-blind, the *No FSD* arm of Fig. 10);
* ``annealer`` — ``"improved"`` (guided randomness + relaxed
  temperature) or ``"naive"`` (the Fig. 12 baseline);
* ``dedup_marking`` — disable to reproduce the TOS-marking ablation.
"""

from __future__ import annotations

import enum
import random
from typing import List, Optional

from repro.core.config import ParaleonConfig
from repro.core.controller import ParaleonController
from repro.monitor.agent import NaiveSketchAgent, NetFlowAgent, SwitchAgent
from repro.monitor.aggregate import FsdAggregator
from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.sketch.elastic import ElasticSketchConfig
from repro.sketch.netflow import NetFlowConfig
from repro.tuning.annealing import ImprovedAnnealer, NaiveAnnealer
from repro.tuning.parameters import ParameterSpace, default_params, default_space


class MonitorKind(str, enum.Enum):
    """Which monitoring pipeline feeds the guided SA."""

    PARALEON = "paraleon"
    NAIVE_SKETCH = "naive-sketch"
    NETFLOW = "netflow"
    NONE = "none"


class ParaleonSystem:
    """The full system, deployable on a :class:`Network` as a Tuner."""

    def __init__(
        self,
        config: Optional[ParaleonConfig] = None,
        initial_params: Optional[DcqcnParams] = None,
        space: Optional[ParameterSpace] = None,
        monitor: MonitorKind = MonitorKind.PARALEON,
        annealer: str = "improved",
        dedup_marking: bool = True,
        sketch_config: Optional[ElasticSketchConfig] = None,
        netflow_config: Optional[NetFlowConfig] = None,
        name: Optional[str] = None,
        batched_monitor: Optional[bool] = None,
    ):
        self.config = config or ParaleonConfig()
        self.initial_params = initial_params or default_params()
        self.space = space or default_space()
        self.monitor = MonitorKind(monitor)
        self.dedup_marking = dedup_marking
        self.sketch_config = sketch_config
        self.netflow_config = netflow_config
        self.name = name or "Paraleon"
        #: None → resolve REPRO_BATCHED_MONITOR at agent construction.
        self.batched_monitor = batched_monitor

        rng = random.Random(self.config.seed)
        if annealer == "improved":
            self._annealer = ImprovedAnnealer(
                self.space, self.config.schedule, rng, eta=self.config.eta
            )
        elif annealer == "naive":
            self._annealer = NaiveAnnealer(self.space, rng=rng)
        else:
            raise ValueError(f"unknown annealer kind {annealer!r}")

        self.agents: List[object] = []
        self.controller: Optional[ParaleonController] = None
        self.network: Optional[Network] = None

    # -- Tuner interface -------------------------------------------------

    def attach(self, network: Network) -> None:
        """Install params, sketch agents and the controller."""
        self.network = network
        network.set_all_params(self.initial_params)
        self.agents = self._make_agents(network)
        aggregator = FsdAggregator(self.agents) if self.agents else None
        self.controller = ParaleonController(
            self.config, aggregator, self._annealer, self.initial_params
        )

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        if self.controller is None:
            raise RuntimeError("ParaleonSystem.attach() was never called")
        return self.controller.on_interval(stats)

    # -- internals ---------------------------------------------------------

    def _make_agents(self, network: Network) -> List[object]:
        if self.monitor is MonitorKind.NONE:
            return []
        agents: List[object] = []
        for tor in network.tors:
            if self.monitor is MonitorKind.PARALEON:
                agents.append(
                    SwitchAgent(
                        tor,
                        sketch_config=self.sketch_config,
                        tau=self.config.tau,
                        delta=self.config.delta,
                        dedup_marking=self.dedup_marking,
                        batched=self.batched_monitor,
                    )
                )
            elif self.monitor is MonitorKind.NAIVE_SKETCH:
                agents.append(
                    NaiveSketchAgent(
                        tor,
                        sketch_config=self.sketch_config,
                        tau=self.config.tau,
                        dedup_marking=self.dedup_marking,
                    )
                )
            elif self.monitor is MonitorKind.NETFLOW:
                agents.append(
                    NetFlowAgent(tor, config=self.netflow_config, tau=self.config.tau)
                )
        return agents

    # -- diagnostics ---------------------------------------------------------

    @property
    def tuning_active(self) -> bool:
        return self.controller is not None and self.controller.tuning_active

    def utility_trace(self) -> List[float]:
        if self.controller is None:
            return []
        return self.controller.utility_trace()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParaleonSystem(monitor={self.monitor.value})"
