"""Per-cluster controllers for large-scale environments (Section V).

The paper's discussion: one centralized controller pushing a single
homogeneous DCQCN setting does not fit an extreme-scale RDMA cloud —
the operator should divide it into clusters, each managed by its own
controller with heterogeneous parameters tailored to the cluster's
traffic.  This module implements that deployment shape on top of the
same building blocks:

* a :class:`Cluster` is a set of ToR switches (and the hosts beneath
  them) with its own monitoring agents, annealer and utility weights;
* :class:`MultiClusterParaleon` implements the common
  :class:`~repro.tuning.search.Tuner` interface, so it runs under the
  standard experiment harness, but each interval it computes
  *per-cluster* metrics and lets every cluster controller tune and
  dispatch independently.

Per-cluster metrics are derived from the cluster's own uplinks, RTT
probes between its hosts, and PFC pauses on its devices — a cluster
full of latency-sensitive RPC traffic can sit at delay-friendly
parameters while a training cluster next door runs throughput-friendly
ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ParaleonConfig
from repro.core.controller import ParaleonController
from repro.monitor.agent import SwitchAgent
from repro.monitor.aggregate import FsdAggregator
from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.network import Network
from repro.simulator.stats import IntervalStats
from repro.tuning.annealing import ImprovedAnnealer
from repro.tuning.parameters import ParameterSpace, default_params, default_space
from repro.tuning.utility import UtilityWeights, utility


@dataclass
class ClusterSpec:
    """Operator definition of one cluster."""

    name: str
    tors: List[int]                       # ToR indices in the fabric
    weights: Optional[UtilityWeights] = None   # None -> config default
    initial_params: Optional[DcqcnParams] = None


class Cluster:
    """Runtime state of one managed cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        network: Network,
        config: ParaleonConfig,
        space: ParameterSpace,
        seed: int,
    ):
        self.spec = spec
        self.network = network
        self.config = config
        self.hosts = [
            h
            for tor in spec.tors
            for h in network.spec.hosts_of_tor(tor)
        ]
        self.host_set = set(self.hosts)
        self.switches = [network.tors[tor] for tor in spec.tors]
        self.weights = spec.weights or config.weights

        agents = [
            SwitchAgent(s, tau=config.tau, delta=config.delta)
            for s in self.switches
        ]
        annealer = ImprovedAnnealer(
            space, config.schedule, random.Random(seed), eta=config.eta
        )
        initial = spec.initial_params or default_params()
        self.controller = ParaleonController(
            ParaleonConfig(
                tau=config.tau,
                delta=config.delta,
                theta=config.theta,
                weights=self.weights,
                schedule=config.schedule,
                monitor_interval=config.monitor_interval,
                eta=config.eta,
                seed=seed,
            ),
            FsdAggregator(agents),
            annealer,
            initial,
        )
        self.dispatches = 0
        self._tx_base = self._tx_now()
        self._pause_base = self._pause_now()

    # -- per-cluster metric extraction ---------------------------------

    def _tx_now(self) -> List[int]:
        return [
            self.network.hosts[h].egress.data_tx_bytes
            if self.network.hosts[h].egress
            else 0
            for h in self.hosts
        ]

    def _pause_now(self) -> List[float]:
        values = [self.network.hosts[h].total_paused_time() for h in self.hosts]
        values.extend(s.total_paused_time() for s in self.switches)
        return values

    def local_stats(self, stats: IntervalStats) -> IntervalStats:
        """Project a global interval onto this cluster's devices.

        Throughput and PFC come from per-device counters; RTT reuses
        the global probe pool filtered by source host (probes are
        host-initiated, so a cluster's hosts sample their own paths).
        """
        duration = stats.duration
        tx_now = self._tx_now()
        utils = []
        for host_id, base, cur in zip(self.hosts, self._tx_base, tx_now):
            delta = cur - base
            host = self.network.hosts[host_id]
            if delta > 0 and host.egress is not None:
                capacity = host.egress.link.rate_bps * duration / 8.0
                utils.append(min(delta / capacity, 1.0))
        self._tx_base = tx_now

        pause_now = self._pause_now()
        pause_fracs = [
            max(cur - base, 0.0) / duration
            for base, cur in zip(self._pause_base, pause_now)
        ]
        self._pause_base = pause_now
        pause_fraction = (
            sum(pause_fracs) / len(pause_fracs) if pause_fracs else 0.0
        )

        flow_bytes = {
            fid: nbytes
            for fid, nbytes in stats.flow_bytes.items()
            if self._flow_in_cluster(fid)
        }
        return IntervalStats(
            t_start=stats.t_start,
            t_end=stats.t_end,
            throughput_util=sum(utils) / len(utils) if utils else 0.0,
            norm_rtt=stats.norm_rtt,
            pfc_ok=max(0.0, 1.0 - pause_fraction),
            mean_rtt=stats.mean_rtt,
            rtt_samples=stats.rtt_samples,
            pause_fraction=pause_fraction,
            active_uplinks=len(utils),
            total_tx_bytes=sum(
                cur - base for base, cur in zip(self._tx_base, tx_now)
            ),
            flow_bytes=flow_bytes,
        )

    def _flow_in_cluster(self, flow_id: int) -> bool:
        flow = self.network.flows.get(flow_id)
        return flow is not None and flow.src in self.host_set

    # -- dispatch --------------------------------------------------------

    def dispatch(self, params: DcqcnParams) -> None:
        """Apply a setting to this cluster's hosts and ToRs only."""
        params.validate()
        for host_id in self.hosts:
            self.network.hosts[host_id].params = params.copy()
        for switch in self.switches:
            switch.params = params.copy()
        self.dispatches += 1

    def current_params(self) -> DcqcnParams:
        return self.network.hosts[self.hosts[0]].params


class MultiClusterParaleon:
    """Several independent Paraleon controllers, one per cluster.

    Spine switches are shared infrastructure; they keep the fabric-wide
    initial ECN setting (the paper leaves inter-cluster links to the
    fabric operator).
    """

    name = "Paraleon (multi-cluster)"

    def __init__(
        self,
        cluster_specs: Sequence[ClusterSpec],
        config: Optional[ParaleonConfig] = None,
        space: Optional[ParameterSpace] = None,
    ):
        if not cluster_specs:
            raise ValueError("need at least one cluster")
        names = [spec.name for spec in cluster_specs]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        self.cluster_specs = list(cluster_specs)
        self.config = config or ParaleonConfig()
        self.space = space or default_space()
        self.clusters: Dict[str, Cluster] = {}
        self.network: Optional[Network] = None

    def attach(self, network: Network) -> None:
        claimed: set = set()
        for spec in self.cluster_specs:
            overlap = claimed.intersection(spec.tors)
            if overlap:
                raise ValueError(
                    f"cluster {spec.name!r} overlaps ToRs {sorted(overlap)}"
                )
            claimed.update(spec.tors)
        self.network = network
        network.set_all_params(default_params())
        for i, spec in enumerate(self.cluster_specs):
            cluster = Cluster(
                spec, network, self.config, self.space,
                seed=self.config.seed + i,
            )
            if spec.initial_params is not None:
                cluster.dispatch(spec.initial_params)
            self.clusters[spec.name] = cluster

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        if self.network is None:
            raise RuntimeError("MultiClusterParaleon.attach() was never called")
        for cluster in self.clusters.values():
            local = cluster.local_stats(stats)
            params = cluster.controller.on_interval(local)
            if params is not None:
                cluster.dispatch(params)
        return None  # all dispatches are cluster-local

    # -- reporting ---------------------------------------------------------

    def cluster_params(self) -> Dict[str, DcqcnParams]:
        return {
            name: cluster.current_params()
            for name, cluster in self.clusters.items()
        }

    def settings_diverged(self) -> bool:
        """True once at least two clusters run different settings."""
        seen = {
            tuple(sorted(params.as_dict().items()))
            for params in self.cluster_params().values()
        }
        return len(seen) > 1
