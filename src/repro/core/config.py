"""Paraleon system settings — Table III of the paper.

| Category                | Parameter                     | Value         |
|-------------------------|-------------------------------|---------------|
| Ternary flow states     | elephant threshold τ          | 1 MB          |
|                         | window size δ                 | 3             |
| Tuning trigger/weights  | KL divergence threshold θ     | 0.01          |
|                         | ω_TP, ω_RTT, ω_PFC            | 0.2, 0.5, 0.3 |
| SA algorithm            | total_iter_num                | 20            |
|                         | cooling rate                  | 0.85          |
|                         | initial temperature           | 90            |
|                         | final temperature             | 10            |
| Miscellaneous           | monitor interval λ_MI         | 1 ms          |
|                         | max SA exploitation rate η    | 0.8           |
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.units import mb, ms
from repro.tuning.annealing import AnnealingSchedule
from repro.tuning.utility import DEFAULT_WEIGHTS, UtilityWeights


@dataclass(frozen=True)
class ParaleonConfig:
    """All Paraleon knobs, defaulting to Table III."""

    # Ternary flow state update.
    tau: int = mb(1.0)
    delta: int = 3

    # Tuning trigger threshold and utility weights.
    theta: float = 0.01
    weights: UtilityWeights = DEFAULT_WEIGHTS

    # SA schedule (relaxed temperature).
    schedule: AnnealingSchedule = field(default_factory=AnnealingSchedule)

    # Miscellaneous.
    monitor_interval: float = ms(1.0)
    eta: float = 0.8

    # Reproduction-only knob: random seed for the annealer.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.delta < 1:
            raise ValueError("delta must be >= 1")
        if self.theta < 0:
            raise ValueError("theta must be >= 0")
        if self.monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        if not 0.5 <= self.eta <= 1.0:
            raise ValueError("eta must be in [0.5, 1]")
