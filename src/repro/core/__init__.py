"""Paraleon: the paper's contribution, wired end to end.

:class:`ParaleonSystem` attaches the runtime metric monitor (sketch
agents + aggregation + KL trigger) and the performance-oriented tuner
(guided simulated annealing over the full DCQCN parameter space) to a
simulated fabric, implementing the common
:class:`~repro.tuning.search.Tuner` interface so it runs under the
same experiment harness as every baseline.
"""

from repro.core.config import ParaleonConfig
from repro.core.controller import ParaleonController
from repro.core.paraleon import ParaleonSystem, MonitorKind
from repro.core.multicluster import ClusterSpec, MultiClusterParaleon

__all__ = [
    "ParaleonConfig",
    "ParaleonController",
    "ParaleonSystem",
    "MonitorKind",
    "ClusterSpec",
    "MultiClusterParaleon",
]
