"""The centralized Paraleon controller (event-driven closed loop).

Once per monitor interval the controller:

1. collects local FSDs from every ToR agent and merges them into the
   network-wide flow size distribution;
2. evaluates the utility function over the interval's runtime metrics;
3. if a tuning process is active, feeds the measured utility back to
   the annealer (Metropolis acceptance for the parameters dispatched
   last interval) and either proposes the next mutation ``P_m`` or —
   when the temperature has cooled below the final value — dispatches
   the best setting found and goes idle;
4. if idle, checks the tuning trigger: ``KL(R_t, R_{t-1}) > θ`` means
   the traffic pattern shifted and a new tuning process starts from
   the currently deployed parameters.

The controller is transport-agnostic: the experiment harness calls
:meth:`on_interval` directly, while :mod:`repro.rpc` demonstrates the
same loop over real TCP sockets with the paper's message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import ParaleonConfig
from repro.monitor.aggregate import FsdAggregator
from repro.monitor.fsd import FlowSizeDistribution
from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.stats import IntervalStats
from repro.telemetry import trace
from repro.telemetry.registry import get_registry
from repro.tuning.annealing import _AnnealerBase
from repro.tuning.utility import utility, utility_components

_KL_CHECKS = get_registry().counter(
    "repro_kl_checks_total", "KL trigger evaluations at the controller"
)
_KL_TRIGGERS = get_registry().counter(
    "repro_kl_triggers_total", "Tuning processes started or restarted by KL"
)


@dataclass
class ControllerLogEntry:
    """One monitor interval's worth of controller state (for figures)."""

    time: float
    utility: float
    kl: float
    tuning_active: bool
    elephant_fraction: float
    dispatched: bool


class ParaleonController:
    """KL-triggered tuning loop over an annealer and an aggregator."""

    def __init__(
        self,
        config: ParaleonConfig,
        aggregator: Optional[FsdAggregator],
        annealer: _AnnealerBase,
        initial_params: DcqcnParams,
    ):
        self.config = config
        self.aggregator = aggregator
        self.annealer = annealer
        self.deployed = initial_params
        self.last_best: Optional[DcqcnParams] = None
        self._awaiting_feedback = False
        self._process_dominant: Optional[bool] = None
        self.log: List[ControllerLogEntry] = []
        self.tuning_processes_started = 0
        self.tuning_processes_finished = 0
        self.tuning_processes_restarted = 0

    @property
    def tuning_active(self) -> bool:
        return self.annealer.state is not None and not self.annealer.done

    def on_interval(self, stats: IntervalStats) -> Optional[DcqcnParams]:
        """One monitor interval; returns params to dispatch, if any."""
        fsd: Optional[FlowSizeDistribution] = None
        kl = 0.0
        if self.aggregator is not None:
            fsd = self.aggregator.collect(stats.t_end)
            kl = self.aggregator.kl_from_previous()

        measured_utility = utility(stats, self.config.weights)
        dispatched: Optional[DcqcnParams] = None

        _KL_CHECKS.inc()
        if trace.active:
            trace.event(
                "controller.kl",
                {
                    "t": stats.t_end,
                    "kl": kl,
                    "theta": self.config.theta,
                    "triggered": kl > self.config.theta,
                    "tuning_active": self.tuning_active,
                    "utility": measured_utility,
                    "terms": utility_components(stats),
                },
            )

        if self._awaiting_feedback:
            self.annealer.feedback(
                measured_utility, terms=utility_components(stats)
            )
            self._awaiting_feedback = False

        if self.tuning_active:
            # A *significant* traffic change mid-tuning (the dominant
            # flow type flipped and KL spiked) restarts the process at
            # full temperature, so adaptation happens in big hot moves
            # instead of crawling out of a cooled-down optimum.
            dominant = self._dominant_of(fsd)
            if (
                dominant is not None
                and self._process_dominant is not None
                and dominant != self._process_dominant
                and kl > self.config.theta
            ):
                self.annealer.begin(self.deployed, measured_utility)
                self._process_dominant = dominant
                self.tuning_processes_restarted += 1
                _KL_TRIGGERS.inc()
            dispatched = self._next_proposal(fsd)
        elif self.annealer.state is not None and self.annealer.done:
            # Tuning just finished: lock in the best setting found.
            best = self.annealer.best
            self.last_best = best
            if best.as_dict() != self.deployed.as_dict():
                dispatched = best
            self.annealer.state = None
            self.tuning_processes_finished += 1
        elif kl > self.config.theta:
            # Significant traffic change: start a tuning process.
            self.annealer.begin(self.deployed, measured_utility)
            self._process_dominant = self._dominant_of(fsd)
            self.tuning_processes_started += 1
            _KL_TRIGGERS.inc()
            dispatched = self._next_proposal(fsd)
        elif self.aggregator is None:
            # "No FSD" operation: without a flow size distribution
            # there is no KL trigger and no guidance, so the search
            # runs continuously and blindly (Fig. 10's No-FSD arm).
            self.annealer.begin(self.deployed, measured_utility)
            self._process_dominant = None
            self.tuning_processes_started += 1
            dispatched = self._next_proposal(None)

        if dispatched is not None:
            self.deployed = dispatched
            if trace.active:
                trace.event(
                    "controller.dispatch",
                    {"t": stats.t_end, "params": dispatched.as_dict()},
                )

        self.log.append(
            ControllerLogEntry(
                time=stats.t_end,
                utility=measured_utility,
                kl=kl,
                tuning_active=self.tuning_active,
                elephant_fraction=fsd.elephant_fraction() if fsd else 0.0,
                dispatched=dispatched is not None,
            )
        )
        return dispatched

    @staticmethod
    def _dominant_of(fsd: Optional[FlowSizeDistribution]) -> Optional[bool]:
        if fsd is None or fsd.total_flows <= 0:
            return None
        return fsd.dominant()[0]

    def _next_proposal(self, fsd: Optional[FlowSizeDistribution]) -> DcqcnParams:
        bias = fsd.dominant() if fsd is not None and fsd.total_flows > 0 else None
        proposal = self.annealer.propose(bias)
        self._awaiting_feedback = True
        return proposal

    # -- diagnostics used by figures ------------------------------------

    def utility_trace(self) -> List[float]:
        return [entry.utility for entry in self.log]

    def kl_trace(self) -> List[float]:
        return [entry.kl for entry in self.log]
