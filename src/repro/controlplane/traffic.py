"""Deterministic synthetic traffic for the sharded control plane.

Scaling the control plane to 1000+ agents needs a traffic source that
is (a) cheap enough to generate for a thousand ToRs per interval and
(b) *location-independent*: the flows agent ``a`` observes in interval
``t`` must be byte-identical whether the agent is evaluated inline, in
shard worker 0, or recomputed by the parent after a work steal.  A
stateful RNG cannot give (b) without careful per-agent stream
plumbing, so flow attributes here are a **pure function** of
``(seed, interval, flow slot)`` via a vectorized splitmix64 finalizer
— a counter-based generator with no sequential state at all.

Each agent owns ``flows_per_agent`` flow-id slots, disjoint from every
other agent's (flow id = global slot + 1) — the synthetic analogue of
the TOS-bit dedup guarantee that each flow is measured at exactly one
switch.  A slot's uniforms are fixed per run; its class comes from
comparing them against the owning tenant's *current* profile
thresholds, so a profile shift flips exactly the slots whose uniforms
sit between the old and new thresholds:

* **elephant** (``u < elephant_fraction``): cumulative bytes in
  ``[tau, 16·tau)`` — classified ``E``;
* **potential elephant** (next ``pe_fraction`` of mass): cumulative
  bytes in ``[tau/2, tau)`` — classified ``PE``, contributing a
  *fractional* elephant likelihood ``cum/tau`` exactly like the real
  sliding-window classifier;
* **mice** (the rest): small flows well under ``tau``.

A :class:`TrafficShift` rewrites one tenant's profile from a given
interval on — the "traffic matrix changed" event that must fire that
tenant's KL trigger and nobody else's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.simulator.units import mb

#: splitmix64 constants (Steele et al.; the standard finalizer).
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 (wrapping math)."""
    with np.errstate(over="ignore"):
        z = x + _SM_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _SM_M1
        z = (z ^ (z >> np.uint64(27))) * _SM_M2
        return z ^ (z >> np.uint64(31))


def _unit(x: np.ndarray) -> np.ndarray:
    """Map uint64 words to uniform float64 in [0, 1)."""
    return (x >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic mix."""

    elephant_fraction: float = 0.10
    pe_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.elephant_fraction <= 1.0:
            raise ValueError("elephant_fraction must be in [0, 1]")
        if not 0.0 <= self.pe_fraction <= 1.0 - self.elephant_fraction:
            raise ValueError("elephant + PE fractions must not exceed 1")


@dataclass(frozen=True)
class TrafficShift:
    """From ``interval`` on, ``tenant`` runs ``profile`` instead."""

    tenant: int
    interval: int
    profile: TenantProfile


@dataclass(frozen=True)
class TrafficConfig:
    """Picklable description of the whole synthetic traffic matrix."""

    seed: int = 1
    flows_per_agent: int = 64
    tau: int = mb(1.0)
    profiles: Tuple[TenantProfile, ...] = (
        TenantProfile(0.10, 0.15),
        TenantProfile(0.12, 0.12),
    )
    shifts: Tuple[TrafficShift, ...] = ()

    def profile_at(self, tenant: int, interval: int) -> TenantProfile:
        """The profile ``tenant`` runs during ``interval`` (shifts applied)."""
        profile = self.profiles[tenant % len(self.profiles)]
        best = -1
        for shift in self.shifts:
            if shift.tenant == tenant and best < shift.interval <= interval:
                profile = shift.profile
                best = shift.interval
        return profile


def flow_columns(
    config: TrafficConfig,
    agent_ids: np.ndarray,
    tenants: np.ndarray,
    interval: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(flow_ids, cumulative_bytes, state_codes)`` for a block of agents.

    ``agent_ids`` must be the agents in canonical order (the caller
    passes a contiguous shard range); ``tenants`` gives each agent's
    tenant.  Rows come back agent-major — agent ``agent_ids[i]`` owns
    rows ``[i*F, (i+1)*F)`` — which is what lets per-agent reductions
    run on contiguous slices.
    """
    from repro.monitor.states import CODE_ELEPHANT, CODE_MICE, CODE_PE

    n_agents = int(agent_ids.size)
    per = config.flows_per_agent
    n = n_agents * per
    slots = (
        np.repeat(agent_ids.astype(np.uint64), per) * np.uint64(per)
        + np.tile(np.arange(per, dtype=np.uint64), n_agents)
    )
    # One scalar stream key per seed; per-flow words mix in the global
    # slot, so values never depend on sharding or call order.  The
    # interval deliberately does NOT enter the mix: a slot's uniforms
    # are fixed for the whole run and the interval acts only through
    # the profile *thresholds* below.  An unshifted tenant therefore
    # reproduces its distribution exactly (KL = 0) — the trigger fires
    # on real traffic-matrix shifts, never on resampling noise.
    with np.errstate(over="ignore"):
        key = _mix64(np.uint64(config.seed) * _SM_M1 + _SM_GAMMA)
        base = _mix64(slots * _SM_GAMMA + key)
        u_class = _unit(base)
        u_size = _unit(_mix64(base + _SM_M2))

    tau = int(config.tau)
    p_e = np.empty(n_agents)
    p_pe = np.empty(n_agents)
    for i, tenant in enumerate(tenants.tolist()):
        profile = config.profile_at(int(tenant), interval)
        p_e[i] = profile.elephant_fraction
        p_pe[i] = profile.pe_fraction
    p_e = np.repeat(p_e, per)
    p_pe = np.repeat(p_pe, per)

    is_elephant = u_class < p_e
    is_pe = ~is_elephant & (u_class < p_e + p_pe)
    codes = np.where(
        is_elephant, CODE_ELEPHANT, np.where(is_pe, CODE_PE, CODE_MICE)
    ).astype(np.int8)
    cum = np.where(
        is_elephant,
        tau + (u_size * (15 * tau)).astype(np.int64),
        np.where(
            is_pe,
            tau // 2 + (u_size * (tau // 2 - 1)).astype(np.int64),
            64 + (u_size * (tau // 16)).astype(np.int64),
        ),
    ).astype(np.int64)
    flow_ids = slots.astype(np.int64) + 1
    return flow_ids, cum, codes
