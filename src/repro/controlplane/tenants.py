"""Per-tenant KL triggers over per-tenant FSD partitions.

The single-tenant :class:`repro.core.controller.ParaleonController`
keeps one previous network-wide FSD and fires one trigger.  At
multi-tenant scale that is exactly wrong: tenant A shifting its
traffic matrix must start *A's* retune without perturbing B's
histogram enough to fire B (tenants are strided rack partitions, so
their FSDs are disjoint by the dedup invariant — a shift in one
partition cannot leak mass into another).

:class:`TenantTriggerBank` holds the previous interval's FSD per
tenant and evaluates ``KL(R_t^k || R_{t-1}^k) > θ`` independently for
each tenant ``k``, emitting one ``controlplane.tenant_kl`` trace event
per check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.monitor.fsd import FlowSizeDistribution, kl_divergence
from repro.telemetry import trace
from repro.telemetry.registry import get_registry

_TENANT_KL_CHECKS = get_registry().counter(
    "repro_controlplane_tenant_kl_checks_total",
    "Per-tenant KL trigger evaluations at the global controller",
)
_TENANT_KL_TRIGGERS = get_registry().counter(
    "repro_controlplane_tenant_kl_triggers_total",
    "Per-tenant tuning triggers fired",
)


@dataclass(frozen=True)
class TenantTrigger:
    """One fired trigger: tenant ``tenant`` shifted at ``interval``."""

    tenant: int
    interval: int
    kl: float
    theta: float


class TenantTriggerBank:
    """Independent ``KL > θ`` triggers, one per tenant partition."""

    def __init__(self, n_tenants: int, theta: float = 0.01):
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n_tenants = n_tenants
        self.theta = theta
        self._previous: List[Optional[FlowSizeDistribution]] = (
            [None] * n_tenants
        )
        self.history: List[TenantTrigger] = []

    def observe(
        self,
        interval: int,
        tenant_fsds: Tuple[FlowSizeDistribution, ...],
    ) -> List[TenantTrigger]:
        """Compare each tenant's FSD to its own previous interval.

        Returns the triggers fired this interval (possibly several —
        tenants are independent).  The first interval never fires: with
        no previous distribution there is nothing to diverge from.
        """
        if len(tenant_fsds) != self.n_tenants:
            raise ValueError(
                f"got {len(tenant_fsds)} tenant FSDs, expected "
                f"{self.n_tenants}"
            )
        fired: List[TenantTrigger] = []
        for tenant, current in enumerate(tenant_fsds):
            previous = self._previous[tenant]
            if previous is not None:
                _TENANT_KL_CHECKS.inc()
                kl = kl_divergence(current, previous)
                triggered = kl > self.theta
                if trace.active:
                    trace.event(
                        "controlplane.tenant_kl",
                        {
                            "interval": interval,
                            "tenant": tenant,
                            "kl": kl,
                            "theta": self.theta,
                            "triggered": triggered,
                        },
                    )
                if triggered:
                    _TENANT_KL_TRIGGERS.inc()
                    fired.append(
                        TenantTrigger(
                            tenant=tenant,
                            interval=interval,
                            kl=kl,
                            theta=self.theta,
                        )
                    )
            self._previous[tenant] = current
        self.history.extend(fired)
        return fired
