"""Sharded many-ToR control plane: hierarchical FSD aggregation.

Scales the single-controller loop of :mod:`repro.core.controller` to
1000+ simulated ToR agents: agents are sharded across persistent
worker processes, their FSDs aggregate rack → pod → global with the
TOS-dedup invariant verified at every tier, per-tenant KL triggers
watch per-tenant FSD partitions, and multiple SA tuning loops
multiplex over one shared evaluation executor.  See DESIGN.md §14.
"""

from repro.controlplane.aggregate import (
    DedupViolation,
    HierarchicalAggregator,
    flat_global_fsd,
    fsd_digest,
)
from repro.controlplane.loops import MultiplexedTuner, TenantRetune
from repro.controlplane.service import (
    ControlPlaneConfig,
    ControlPlaneResult,
    ControlPlaneService,
    run_day_in_the_life,
)
from repro.controlplane.shards import ShardBatch, ShardTask
from repro.controlplane.tenants import TenantTrigger, TenantTriggerBank
from repro.controlplane.topology import ShardTopology
from repro.controlplane.traffic import TenantProfile, TrafficConfig, TrafficShift

__all__ = [
    "ControlPlaneConfig",
    "ControlPlaneResult",
    "ControlPlaneService",
    "DedupViolation",
    "HierarchicalAggregator",
    "MultiplexedTuner",
    "ShardBatch",
    "ShardTask",
    "ShardTopology",
    "TenantProfile",
    "TenantRetune",
    "TenantTrigger",
    "TenantTriggerBank",
    "TrafficConfig",
    "TrafficShift",
    "flat_global_fsd",
    "fsd_digest",
    "run_day_in_the_life",
]
