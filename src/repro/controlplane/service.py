"""The sharded control-plane service: a "day in the life" at scale.

One :class:`ControlPlaneService` run simulates ``intervals`` monitor
intervals over ``n_shards × agents_per_shard`` ToR agents:

1. **Collect** — one :class:`~repro.controlplane.shards.ShardTask` per
   shard produces the shard's columnar batch, either inline or on the
   persistent :class:`~repro.parallel.pool.WorkerPool` (strategy
   ``pool``); failed chunks are retried inline and stolen chunks are
   evaluated in-parent, both bit-identical by construction.
2. **Aggregate** — the batches reduce rack → pod → global through the
   :class:`~repro.controlplane.aggregate.HierarchicalAggregator`, with
   the dedup invariant verified and the global FSD digest recorded.
3. **Account** — message bytes per tier (paper Table IV): every agent
   uploads one :class:`~repro.rpc.protocol.SwitchReport` to its rack,
   every rack forwards one :class:`~repro.rpc.protocol.
   AggregateReport` to its pod, every pod one to the global
   controller; finished retunes dispatch one :class:`~repro.rpc.
   protocol.ParamUpdate` per agent of the tenant.
4. **Trigger** — per-tenant KL over the tenant FSD partitions; a fired
   trigger starts that tenant's SA loop in the
   :class:`~repro.controlplane.loops.MultiplexedTuner`.
5. **Tune** — all active loops advance one multiplexed batch.

Timestamps in the accounting messages are the *simulated* interval
index (this module never reads the host clock); wall-clock timing of
runs belongs to the CLI and the benchmarks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.controlplane.aggregate import (
    AggregationResult,
    HierarchicalAggregator,
    fsd_digest,
)
from repro.controlplane.loops import MultiplexedTuner, TenantRetune
from repro.controlplane.shards import ShardBatch, ShardTask
from repro.controlplane.tenants import TenantTrigger, TenantTriggerBank
from repro.controlplane.topology import ShardTopology
from repro.controlplane.traffic import TrafficConfig
from repro.parallel.executor import SweepExecutor
from repro.parallel.pool import get_shared_pool
from repro.parallel.tasks import ScenarioSpec
from repro.rpc.protocol import (
    AggregateReport,
    ParamUpdate,
    SwitchReport,
    message_wire_size,
)
from repro.telemetry import trace
from repro.telemetry.registry import get_registry
from repro.tuning.annealing import AnnealingSchedule

_AGENT_RACK_BYTES = get_registry().counter(
    "repro_controlplane_agent_rack_bytes_total",
    "Control-plane bytes, agent -> rack aggregator tier",
)
_RACK_POD_BYTES = get_registry().counter(
    "repro_controlplane_rack_pod_bytes_total",
    "Control-plane bytes, rack -> pod aggregator tier",
)
_POD_GLOBAL_BYTES = get_registry().counter(
    "repro_controlplane_pod_global_bytes_total",
    "Control-plane bytes, pod -> global controller tier",
)
_PARAM_BYTES = get_registry().counter(
    "repro_controlplane_param_update_bytes_total",
    "Control-plane bytes, dispatched parameter updates",
)
_INTERVALS = get_registry().counter(
    "repro_controlplane_intervals_total",
    "Control-plane monitor intervals processed",
)


def _collect_inline(tasks: List[ShardTask], state: dict) -> List[ShardBatch]:
    """Evaluate shard tasks in-process (also the steal/retry path)."""
    return [task.run_in_worker(state) for task in tasks]


def _steal_eval(tasks: list) -> list:
    """Top-level steal hook for the pool (fork/pickle safe)."""
    return [task.run_in_worker({}) for task in tasks]


@dataclass(frozen=True)
class ControlPlaneConfig:
    """One day-in-the-life run, fully deterministic."""

    topology: ShardTopology = ShardTopology()
    traffic: TrafficConfig = TrafficConfig()
    intervals: int = 6
    theta: float = 0.01
    #: ``inline`` runs shard collection in-process; ``pool`` dispatches
    #: one chunk per shard to the shared persistent worker pool.
    strategy: str = "inline"
    jobs: int = 2
    #: Frozen evaluation scenario the per-tenant SA loops tune against.
    scenario: ScenarioSpec = ScenarioSpec(
        workload="alltoall",
        duration=0.02,
        n_workers=4,
        stop_on_completion=True,
    )
    batch_size: int = 2
    #: Short schedule so a retune finishes within a day-in-the-life run.
    schedule: AnnealingSchedule = AnnealingSchedule(
        initial_temp=90.0,
        final_temp=50.0,
        cooling_rate=0.6,
        iterations_per_temp=2,
    )

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ValueError("need at least one interval")
        if self.strategy not in ("inline", "pool"):
            raise ValueError(f"unknown strategy {self.strategy!r}")


@dataclass
class IntervalOutcome:
    """What one monitor interval produced."""

    interval: int
    digest: str
    tracked_flows: int
    elephant_fraction: float
    tenant_kls: Dict[int, float]
    triggers: List[TenantTrigger]
    tier_bytes: Tuple[int, int, int]  # agent→rack, rack→pod, pod→global


@dataclass
class ControlPlaneResult:
    """Everything a day-in-the-life run decided and dispatched."""

    config: ControlPlaneConfig
    outcomes: List[IntervalOutcome] = field(default_factory=list)
    retunes: List[TenantRetune] = field(default_factory=list)
    agent_rack_bytes: int = 0
    rack_pod_bytes: int = 0
    pod_global_bytes: int = 0
    param_update_bytes: int = 0
    stolen_chunks: int = 0
    retried_chunks: int = 0

    def result_digest(self) -> str:
        """Stable digest over every decision the run made."""
        parts = [outcome.digest for outcome in self.outcomes]
        parts.extend(
            f"{t.tenant}:{t.interval}" for o in self.outcomes for t in o.triggers
        )
        parts.extend(
            f"{r.tenant}:{sorted(r.params.as_dict().items())!r}:{r.utility!r}"
            for r in self.retunes
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def to_snapshot(self) -> dict:
        """JSON-safe summary for ``repro report`` (snapshot section)."""
        topo = self.config.topology
        per_switch = (
            self.agent_rack_bytes / (topo.n_agents * len(self.outcomes))
            if self.outcomes
            else 0.0
        )
        return {
            "shards": topo.n_shards,
            "agents": topo.n_agents,
            "racks": topo.n_racks,
            "pods": topo.n_pods,
            "tenants": topo.n_tenants,
            "intervals": len(self.outcomes),
            "strategy": self.config.strategy,
            "agent_rack_bytes": self.agent_rack_bytes,
            "rack_pod_bytes": self.rack_pod_bytes,
            "pod_global_bytes": self.pod_global_bytes,
            "param_update_bytes": self.param_update_bytes,
            "per_switch_report_bytes": per_switch,
            "triggers": [
                {"tenant": t.tenant, "interval": t.interval, "kl": t.kl}
                for o in self.outcomes
                for t in o.triggers
            ],
            "retunes": [
                {
                    "tenant": r.tenant,
                    "trigger_interval": r.trigger_interval,
                    "finished_interval": r.finished_interval,
                    "utility": r.utility,
                    "evaluations": r.evaluations,
                    "params": r.params.as_dict(),
                }
                for r in self.retunes
            ],
            "digest": self.result_digest(),
        }


class ControlPlaneService:
    """Drives collect → aggregate → trigger → tune per interval."""

    def __init__(
        self,
        config: ControlPlaneConfig,
        executor: Optional[SweepExecutor] = None,
    ):
        self.config = config
        self.aggregator = HierarchicalAggregator(config.topology)
        self.triggers = TenantTriggerBank(
            config.topology.n_tenants, theta=config.theta
        )
        self.tuner = MultiplexedTuner(
            config.scenario,
            executor=executor,
            batch_size=config.batch_size,
            schedule=config.schedule,
        )
        self._inline_state: dict = {}
        self._report_sizes = self._wire_sizes()

    def _wire_sizes(self) -> Tuple[int, int, int]:
        """(switch report, aggregate report, param update) wire bytes."""
        topo = self.config.topology
        switch = message_wire_size(
            SwitchReport(
                agent_id=0,
                timestamp=0.0,
                throughput_bytes=0.0,
                pause_seconds=0.0,
                elephant_weight=0.0,
                tracked_flows=0,
            )
        )
        aggregate = message_wire_size(
            AggregateReport(
                level=1,
                node_id=0,
                timestamp=0.0,
                elephant_weight=0.0,
                mice_weight=0.0,
                tracked_flows=topo.n_agents,
            )
        )
        update = message_wire_size(
            ParamUpdate(timestamp=0.0, params=self.tuner.initial_params)
        )
        return switch, aggregate, update

    # -- collection ------------------------------------------------------

    def _collect(
        self, interval: int, result: ControlPlaneResult
    ) -> List[ShardBatch]:
        topo, traffic = self.config.topology, self.config.traffic
        tasks = [
            ShardTask(shard_id, interval, topo, traffic)
            for shard_id in range(topo.n_shards)
        ]
        if self.config.strategy == "inline":
            return _collect_inline(tasks, self._inline_state)
        pool = get_shared_pool(self.config.jobs)
        chunks = [((interval, task.shard_id), [task]) for task in tasks]
        completed, failed, stolen = pool.run(
            chunks, steal_eval=_steal_eval
        )
        result.stolen_chunks += len(stolen)
        batches: Dict[int, ShardBatch] = {}
        for chunk_id, (chunk_results, snapshot) in completed.items():
            if snapshot is not None:
                get_registry().merge_snapshot(snapshot)
            batches[chunk_id[1]] = chunk_results[0]
        for chunk_id, _reason in failed:
            shard_id = chunk_id[1]
            result.retried_chunks += 1
            batches[shard_id] = tasks[shard_id].run_in_worker({})
        return [batches[shard_id] for shard_id in range(topo.n_shards)]

    # -- the day in the life ---------------------------------------------

    def run(self) -> ControlPlaneResult:
        config = self.config
        topo = config.topology
        result = ControlPlaneResult(config=config)
        switch_size, aggregate_size, update_size = self._report_sizes
        with trace.span(
            "controlplane.run",
            {
                "shards": topo.n_shards,
                "agents": topo.n_agents,
                "tenants": topo.n_tenants,
                "intervals": config.intervals,
                "strategy": config.strategy,
            },
        ):
            for interval in range(config.intervals):
                batches = self._collect(interval, result)
                self.aggregator.begin_interval(interval)
                for batch in batches:
                    self.aggregator.ingest(batch)
                agg: AggregationResult = self.aggregator.aggregate()
                _INTERVALS.inc()

                agent_rack = topo.n_agents * switch_size
                rack_pod = topo.n_racks * aggregate_size
                pod_global = topo.n_pods * aggregate_size
                _AGENT_RACK_BYTES.inc(agent_rack)
                _RACK_POD_BYTES.inc(rack_pod)
                _POD_GLOBAL_BYTES.inc(pod_global)
                result.agent_rack_bytes += agent_rack
                result.rack_pod_bytes += rack_pod
                result.pod_global_bytes += pod_global
                if trace.active:
                    trace.event(
                        "controlplane.interval",
                        {
                            "interval": interval,
                            "agents": topo.n_agents,
                            "tracked_flows": agg.tracked_flows,
                            "elephant_fraction": (
                                agg.global_fsd.elephant_fraction()
                            ),
                            "digest": agg.digest,
                        },
                    )
                    trace.event(
                        "controlplane.tier_bytes",
                        {
                            "interval": interval,
                            "agent_rack": agent_rack,
                            "rack_pod": rack_pod,
                            "pod_global": pod_global,
                        },
                    )

                fired = self.triggers.observe(interval, agg.tenant_fsds)
                for trigger in fired:
                    self.tuner.trigger(
                        trigger.tenant,
                        interval,
                        agg.tenant_fsds[trigger.tenant],
                    )
                finished = self.tuner.step(interval)
                for retune in finished:
                    dispatched = (
                        topo.tenant_agent_index(retune.tenant).size
                        * update_size
                    )
                    _PARAM_BYTES.inc(dispatched)
                    result.param_update_bytes += dispatched
                result.retunes.extend(finished)
                tenant_kls = {t: 0.0 for t in range(topo.n_tenants)}
                for trigger in fired:
                    tenant_kls[trigger.tenant] = trigger.kl
                result.outcomes.append(
                    IntervalOutcome(
                        interval=interval,
                        digest=agg.digest,
                        tracked_flows=agg.tracked_flows,
                        elephant_fraction=(
                            agg.global_fsd.elephant_fraction()
                        ),
                        tenant_kls=tenant_kls,
                        triggers=fired,
                        tier_bytes=(agent_rack, rack_pod, pod_global),
                    )
                )
        return result


def run_day_in_the_life(
    config: Optional[ControlPlaneConfig] = None,
    executor: Optional[SweepExecutor] = None,
) -> ControlPlaneResult:
    """Convenience wrapper: build a service and run it once."""
    service = ControlPlaneService(config or ControlPlaneConfig(), executor)
    return service.run()


__all__ = [
    "ControlPlaneConfig",
    "ControlPlaneResult",
    "ControlPlaneService",
    "IntervalOutcome",
    "fsd_digest",
    "run_day_in_the_life",
]
