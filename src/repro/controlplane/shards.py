"""Shard agents: per-worker ToR batches in columnar form.

One :class:`ShardTask` stands for "run every ToR agent of one shard
for one monitor interval".  It is the unit the control-plane service
dispatches to the persistent :class:`~repro.parallel.pool.WorkerPool`
(via the generic ``run_in_worker`` protocol in
:mod:`repro.parallel.worker`), and the result it ships back — a
:class:`ShardBatch` — is already *rack-tier compressed*: per-agent
histogram rows, elephant/mice weight lanes and tracked-flow counts as
flat numpy arrays, not per-report Python objects.  That columnar form
is what rides the pool's shared-memory result slots efficiently and
what the hierarchical aggregator reduces with ``np.add.reduceat``.

Bit-compatibility contract: for every agent the weight lanes and
histogram row equal exactly what :meth:`repro.monitor.fsd.
FlowSizeDistribution.from_columns` computes from the same columns —
same likelihood expression, same dtypes, same ``np.sum`` over the same
contiguous slice — so a flat :func:`~repro.monitor.fsd.
merge_distributions` over per-agent FSD objects and the hierarchical
tier reduction land on bit-identical global distributions (the bench
gate).

Worker-side persistent state: ``run_in_worker`` receives the worker's
local state dict and memoizes each shard's derived index arrays
(agent ids, tenant assignment) across intervals.  The memo is a pure
cache — recomputation yields identical batches — so work stealing and
worker respawns cannot change results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controlplane.topology import ShardTopology
from repro.controlplane.traffic import TrafficConfig, flow_columns
from repro.monitor.fsd import HISTOGRAM_BUCKETS


@dataclass
class ShardBatch:
    """One shard's columnar upload for one monitor interval."""

    shard_id: int
    interval: int
    agent_lo: int
    agent_hi: int
    hist: np.ndarray        # (agents, HISTOGRAM_BUCKETS) float64
    elephant: np.ndarray    # (agents,) float64 weight lane
    mice: np.ndarray        # (agents,) float64 weight lane
    tracked: np.ndarray     # (agents,) int64
    flow_id_lo: int         # dedup range: flow ids in [lo, hi), disjoint
    flow_id_hi: int         # across shards by construction

    @property
    def n_agents(self) -> int:
        return self.agent_hi - self.agent_lo


def shard_columns(
    topology: ShardTopology,
    traffic: TrafficConfig,
    shard_id: int,
    interval: int,
):
    """Raw ``(flow_ids, cum_bytes, state_codes)`` columns of one shard."""
    lo, hi = topology.shard_bounds(shard_id)
    agent_ids = np.arange(lo, hi, dtype=np.int64)
    tenants = np.fromiter(
        (topology.tenant_of_agent(int(a)) for a in agent_ids),
        dtype=np.int64,
        count=agent_ids.size,
    )
    return flow_columns(traffic, agent_ids, tenants, interval)


def batch_from_columns(
    topology: ShardTopology,
    traffic: TrafficConfig,
    shard_id: int,
    interval: int,
    flow_ids: np.ndarray,
    cum: np.ndarray,
    codes: np.ndarray,
) -> ShardBatch:
    """Reduce one shard's columns to its per-agent rack-tier rows."""
    from repro.monitor.states import CODE_ELEPHANT, CODE_MICE

    lo, hi = topology.shard_bounds(shard_id)
    n_agents = hi - lo
    per = traffic.flows_per_agent
    tau = int(traffic.tau)
    cum = np.asarray(cum, dtype=np.int64)

    # The exact likelihood expression of FlowSizeDistribution.
    # from_columns, evaluated over the whole shard at once; per-agent
    # np.sum over contiguous slices reproduces its weights bit-for-bit.
    likelihood = np.where(
        codes == CODE_ELEPHANT,
        1.0,
        np.where(codes == CODE_MICE, 0.0, np.minimum(1.0, cum / tau)),
    )
    complement = 1.0 - likelihood
    elephant = np.empty(n_agents)
    mice = np.empty(n_agents)
    for i in range(n_agents):
        sl = slice(i * per, (i + 1) * per)
        elephant[i] = float(np.sum(likelihood[sl]))
        mice[i] = float(np.sum(complement[sl]))

    # from_columns' log2 bucketing, batched over all agents: one
    # bincount on (agent row × bucket) flattened indices.
    buckets = np.zeros(cum.size, dtype=np.int64)
    positive = cum >= 1
    if positive.any():
        buckets[positive] = np.minimum(
            np.log2(cum[positive].astype(np.float64)).astype(np.int64),
            HISTOGRAM_BUCKETS - 1,
        )
    rows = np.repeat(np.arange(n_agents, dtype=np.int64), per)
    hist = (
        np.bincount(
            rows * HISTOGRAM_BUCKETS + buckets,
            minlength=n_agents * HISTOGRAM_BUCKETS,
        )
        .reshape(n_agents, HISTOGRAM_BUCKETS)
        .astype(float)
    )
    tracked = np.full(n_agents, per, dtype=np.int64)
    return ShardBatch(
        shard_id=shard_id,
        interval=interval,
        agent_lo=lo,
        agent_hi=hi,
        hist=hist,
        elephant=elephant,
        mice=mice,
        tracked=tracked,
        flow_id_lo=int(flow_ids.min()),
        flow_id_hi=int(flow_ids.max()) + 1,
    )


@dataclass(frozen=True)
class ShardTask:
    """Pool-dispatchable unit: one shard, one monitor interval."""

    shard_id: int
    interval: int
    topology: ShardTopology
    traffic: TrafficConfig

    def run_in_worker(self, state: dict) -> ShardBatch:
        """Evaluate in a pool worker (or inline with ``state={}``).

        ``state`` is the worker's process-local dict; the shard's
        derived index arrays are memoized there across intervals.
        """
        cache = state.setdefault("controlplane", {})
        runtime = cache.get(self.shard_id)
        if (
            runtime is None
            or runtime["topology"] != self.topology
            or runtime["traffic"] != self.traffic
        ):
            lo, hi = self.topology.shard_bounds(self.shard_id)
            agent_ids = np.arange(lo, hi, dtype=np.int64)
            tenants = np.fromiter(
                (self.topology.tenant_of_agent(int(a)) for a in agent_ids),
                dtype=np.int64,
                count=agent_ids.size,
            )
            runtime = {
                "topology": self.topology,
                "traffic": self.traffic,
                "agent_ids": agent_ids,
                "tenants": tenants,
                "intervals_served": 0,
            }
            cache[self.shard_id] = runtime
        runtime["intervals_served"] += 1
        flow_ids, cum, codes = flow_columns(
            self.traffic,
            runtime["agent_ids"],
            runtime["tenants"],
            self.interval,
        )
        return batch_from_columns(
            self.topology,
            self.traffic,
            self.shard_id,
            self.interval,
            flow_ids,
            cum,
            codes,
        )
