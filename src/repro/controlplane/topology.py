"""Shard topology: agents → racks → pods → global, plus tenancy.

The sharded control plane places ``n_shards × agents_per_shard``
simulated ToR agents on a three-tier aggregation tree:

* **agent** — one ToR switch's control-plane agent (a local FSD per
  monitor interval, exactly like :class:`repro.monitor.agent.
  SwitchAgent` produces);
* **rack aggregator** — merges ``agents_per_rack`` consecutive agents;
* **pod aggregator** — merges ``racks_per_pod`` consecutive racks;
* **global controller** — merges the pods into the network-wide FSD.

All assignments are *contiguous index ranges* in one canonical agent
order (agent id ``0 .. n_agents-1``): agent ``a`` lives in rack
``a // agents_per_rack``, rack ``r`` lives in pod ``r // racks_per_pod``
and shard boundaries are contiguous too.  Contiguity is what lets the
hierarchical aggregator reduce whole tiers with ``np.add.reduceat``
over a single preallocated matrix instead of walking Python objects.

**Tenancy** is assigned per rack (``rack % n_tenants``): a tenant's
traffic spans many racks and pods, which is exactly the layout that
makes per-tenant FSD partitions non-trivial — they are strided index
sets over the canonical order, not contiguous slices.

The topology is a frozen dataclass so it can ride inside pickled shard
tasks unchanged; the derived index arrays are recomputed cheaply where
needed (they are ``arange`` views, not data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShardTopology:
    """Placement of agents onto shards, racks, pods and tenants."""

    n_shards: int = 4
    agents_per_shard: int = 32
    agents_per_rack: int = 16
    racks_per_pod: int = 4
    n_tenants: int = 2

    def __post_init__(self) -> None:
        if self.n_shards < 1 or self.agents_per_shard < 1:
            raise ValueError("need at least one shard and one agent per shard")
        if self.agents_per_rack < 1 or self.racks_per_pod < 1:
            raise ValueError("rack/pod fan-in must be >= 1")
        if self.n_tenants < 1:
            raise ValueError("need at least one tenant")
        if self.n_agents % self.agents_per_rack != 0:
            raise ValueError(
                f"{self.n_agents} agents do not fill whole racks of "
                f"{self.agents_per_rack}"
            )
        if self.n_racks % self.racks_per_pod != 0:
            raise ValueError(
                f"{self.n_racks} racks do not fill whole pods of "
                f"{self.racks_per_pod}"
            )

    # -- sizes ---------------------------------------------------------

    @property
    def n_agents(self) -> int:
        return self.n_shards * self.agents_per_shard

    @property
    def n_racks(self) -> int:
        return self.n_agents // self.agents_per_rack

    @property
    def n_pods(self) -> int:
        return self.n_racks // self.racks_per_pod

    # -- assignments ----------------------------------------------------

    def shard_bounds(self, shard_id: int) -> tuple:
        """``(agent_lo, agent_hi)`` half-open agent range of one shard."""
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range")
        lo = shard_id * self.agents_per_shard
        return lo, lo + self.agents_per_shard

    def rack_of(self, agent_id: int) -> int:
        return agent_id // self.agents_per_rack

    def pod_of_rack(self, rack_id: int) -> int:
        return rack_id // self.racks_per_pod

    def tenant_of_rack(self, rack_id: int) -> int:
        return rack_id % self.n_tenants

    def tenant_of_agent(self, agent_id: int) -> int:
        return self.tenant_of_rack(self.rack_of(agent_id))

    # -- tier index arrays (reduceat boundaries) -------------------------

    def rack_starts(self) -> np.ndarray:
        """Agent-row offsets where each rack begins (reduceat bounds)."""
        return np.arange(0, self.n_agents, self.agents_per_rack)

    def pod_starts(self) -> np.ndarray:
        """Rack-row offsets where each pod begins (reduceat bounds)."""
        return np.arange(0, self.n_racks, self.racks_per_pod)

    def tenant_agent_index(self, tenant: int) -> np.ndarray:
        """Canonical-order agent ids belonging to ``tenant`` (strided)."""
        if not 0 <= tenant < self.n_tenants:
            raise ValueError(f"tenant {tenant} out of range")
        agents = np.arange(self.n_agents)
        racks = agents // self.agents_per_rack
        return agents[racks % self.n_tenants == tenant]
