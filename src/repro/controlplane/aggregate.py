"""Hierarchical FSD aggregation: rack → pod → global, bit-identical.

The flat baseline (:func:`repro.monitor.fsd.merge_distributions` over
per-agent :class:`FlowSizeDistribution` objects, which is what
:class:`repro.monitor.aggregate.FsdAggregator` does today) walks one
Python object per report: a 31-float histogram tuple, two weight
floats and a per-flow state dict each.  At 1000+ agents that walk *is*
the control-plane hot path.  The :class:`HierarchicalAggregator`
replaces it with one preallocated ``(n_agents, 31)`` histogram matrix
plus weight/tracked lanes; shards write rows, and the three tiers
reduce with ``np.add.reduceat`` over contiguous rack/pod ranges.

Bit-identity contract (the bench gate):

* **Histograms** are small integer counts stored in float64 — sums are
  exact at every tier, so rack → pod → global reduceat equals the flat
  one-shot column sum bit-for-bit regardless of grouping.
* **Weights** are fractional (PE likelihood ``cum/tau``), so float
  addition is *not* associative and a tiered sum would drift from the
  flat merge.  Per-agent weight lanes are therefore carried to the
  global tier untouched and reduced there with a sequential Python
  float loop in canonical agent order (:func:`_ordered_sum`) — the
  exact operand sequence ``merge_distributions`` performs.

Dedup invariant (TOS-bit analogue): every flow is measured at exactly
one agent, expressed here as disjoint per-shard flow-id ranges, and
tracked-flow counts are conserved across tiers.  :meth:`
HierarchicalAggregator.verify_dedup` checks both and raises
:class:`DedupViolation` on overlap — merged FSDs are only meaningful
under this invariant.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.controlplane.shards import ShardBatch, shard_columns
from repro.controlplane.topology import ShardTopology
from repro.controlplane.traffic import TrafficConfig
from repro.monitor.fsd import (
    HISTOGRAM_BUCKETS,
    FlowSizeDistribution,
    merge_distributions,
)

_DIGEST_STRUCT = struct.Struct("<" + "d" * (2 + HISTOGRAM_BUCKETS))


class DedupViolation(ValueError):
    """Two aggregation inputs claim the same flow (TOS dedup broken)."""


def fsd_digest(fsd: FlowSizeDistribution) -> str:
    """Content digest of an FSD's weights + histogram.

    Flow states are deliberately excluded: the hierarchical path never
    materializes per-flow dicts (that is the point), and the weights +
    histogram are exactly the state the KL trigger and SA bias consume.
    """
    payload = _DIGEST_STRUCT.pack(
        fsd.elephant_weight, fsd.mice_weight, *fsd.histogram
    )
    return hashlib.sha256(payload).hexdigest()


def _ordered_sum(values: np.ndarray) -> float:
    """Sequential float sum in array order — merge_distributions' order."""
    total = 0.0
    for value in values.tolist():
        total += value
    return total


@dataclass
class AggregationResult:
    """One interval's reduced tiers."""

    interval: int
    global_fsd: FlowSizeDistribution
    tenant_fsds: Tuple[FlowSizeDistribution, ...]
    rack_hist: np.ndarray   # (n_racks, HISTOGRAM_BUCKETS)
    pod_hist: np.ndarray    # (n_pods, HISTOGRAM_BUCKETS)
    tracked_flows: int
    digest: str


class HierarchicalAggregator:
    """Rack → pod → global reduction over one preallocated matrix."""

    def __init__(self, topology: ShardTopology):
        self.topology = topology
        n = topology.n_agents
        self._hist = np.zeros((n, HISTOGRAM_BUCKETS))
        self._elephant = np.zeros(n)
        self._mice = np.zeros(n)
        self._tracked = np.zeros(n, dtype=np.int64)
        self._filled = np.zeros(n, dtype=bool)
        self._ranges: List[Tuple[int, int, int]] = []  # (lo, hi, shard)
        self._interval = -1
        self._rack_starts = topology.rack_starts()
        self._pod_starts = topology.pod_starts()
        self._tenant_index = [
            topology.tenant_agent_index(t) for t in range(topology.n_tenants)
        ]

    def begin_interval(self, interval: int) -> None:
        self._interval = interval
        self._hist[:] = 0.0
        self._elephant[:] = 0.0
        self._mice[:] = 0.0
        self._tracked[:] = 0
        self._filled[:] = False
        self._ranges = []

    def ingest(self, batch: ShardBatch) -> None:
        """Write one shard's per-agent rows into the tier matrix."""
        if batch.interval != self._interval:
            raise ValueError(
                f"batch interval {batch.interval} != current {self._interval}"
            )
        lo, hi = batch.agent_lo, batch.agent_hi
        if self._filled[lo:hi].any():
            raise DedupViolation(
                f"agents [{lo}, {hi}) reported twice in interval "
                f"{self._interval}"
            )
        self._hist[lo:hi] = batch.hist
        self._elephant[lo:hi] = batch.elephant
        self._mice[lo:hi] = batch.mice
        self._tracked[lo:hi] = batch.tracked
        self._filled[lo:hi] = True
        self._ranges.append((batch.flow_id_lo, batch.flow_id_hi, batch.shard_id))

    def verify_dedup(self) -> None:
        """Disjoint flow-id ranges across shards, or DedupViolation."""
        spans = sorted(self._ranges)
        for (a_lo, a_hi, a_shard), (b_lo, b_hi, b_shard) in zip(
            spans, spans[1:]
        ):
            if b_lo < a_hi:
                raise DedupViolation(
                    f"flow-id ranges of shards {a_shard} and {b_shard} "
                    f"overlap: [{a_lo}, {a_hi}) vs [{b_lo}, {b_hi})"
                )

    def aggregate(self) -> AggregationResult:
        """Reduce the filled matrix through all three tiers."""
        if not self._filled.all():
            missing = int((~self._filled).sum())
            raise ValueError(
                f"{missing} agents missing from interval {self._interval}"
            )
        self.verify_dedup()
        # Integer-count histograms: exact at every tier, any grouping.
        rack_hist = np.add.reduceat(self._hist, self._rack_starts, axis=0)
        pod_hist = np.add.reduceat(rack_hist, self._pod_starts, axis=0)
        global_hist = np.add.reduceat(
            pod_hist, np.array([0]), axis=0
        )[0]
        # Fractional weights: sequential canonical-order sum at the
        # global tier only (see module docstring).
        global_fsd = FlowSizeDistribution(
            elephant_weight=_ordered_sum(self._elephant),
            mice_weight=_ordered_sum(self._mice),
            histogram=tuple(float(v) for v in global_hist),
        )
        tenant_fsds = []
        for index in self._tenant_index:
            tenant_hist = np.sum(self._hist[index], axis=0)
            tenant_fsds.append(
                FlowSizeDistribution(
                    elephant_weight=_ordered_sum(self._elephant[index]),
                    mice_weight=_ordered_sum(self._mice[index]),
                    histogram=tuple(float(v) for v in tenant_hist),
                )
            )
        tracked = int(self._tracked.sum())
        # Tier conservation: the global histogram mass must equal the
        # tracked-flow count (each flow lands in exactly one bucket of
        # exactly one agent row).
        if int(global_hist.sum()) != tracked:
            raise DedupViolation(
                f"histogram mass {int(global_hist.sum())} != tracked "
                f"flows {tracked}"
            )
        return AggregationResult(
            interval=self._interval,
            global_fsd=global_fsd,
            tenant_fsds=tuple(tenant_fsds),
            rack_hist=rack_hist,
            pod_hist=pod_hist,
            tracked_flows=tracked,
            digest=fsd_digest(global_fsd),
        )


def flat_agent_fsds(
    topology: ShardTopology, traffic: TrafficConfig, interval: int
) -> List[FlowSizeDistribution]:
    """Per-agent FSD objects the flat baseline merges (canonical order)."""
    per = traffic.flows_per_agent
    fsds: List[FlowSizeDistribution] = []
    for shard_id in range(topology.n_shards):
        flow_ids, cum, codes = shard_columns(
            topology, traffic, shard_id, interval
        )
        lo, hi = topology.shard_bounds(shard_id)
        for i in range(hi - lo):
            sl = slice(i * per, (i + 1) * per)
            fsds.append(
                FlowSizeDistribution.from_columns(
                    flow_ids[sl], cum[sl], codes[sl], tau=traffic.tau
                )
            )
    return fsds


def flat_global_fsd(
    topology: ShardTopology, traffic: TrafficConfig, interval: int
) -> FlowSizeDistribution:
    """The flat-baseline global FSD (per-agent objects + flat merge)."""
    return merge_distributions(flat_agent_fsds(topology, traffic, interval))


def flat_tenant_fsds(
    topology: ShardTopology, traffic: TrafficConfig, interval: int
) -> Dict[int, FlowSizeDistribution]:
    """Flat-baseline per-tenant FSDs (canonical-order merge per tenant)."""
    fsds = flat_agent_fsds(topology, traffic, interval)
    out: Dict[int, FlowSizeDistribution] = {}
    for tenant in range(topology.n_tenants):
        index = topology.tenant_agent_index(tenant)
        out[tenant] = merge_distributions(fsds[int(a)] for a in index)
    return out
