"""Multiplexed per-tenant SA tuning loops over one shared executor.

When several tenants' KL triggers fire (possibly in the same
interval), each tenant gets its own tuning process — its own
:class:`~repro.tuning.annealing.ImprovedAnnealer` walking its own
frozen evaluation scenario — but all of them share one
:class:`~repro.parallel.executor.SweepExecutor` and its
content-addressed eval cache.  Per control-plane interval the
:class:`MultiplexedTuner` collects every active loop's proposal batch,
dispatches the union as a *single* ``executor.map`` call (so the
worker crew interleaves candidates from all tenants instead of
serializing loop by loop), then feeds each loop back its own slice in
proposal order — preserving the exact Metropolis semantics of
:func:`repro.parallel.sa.batched_anneal` per loop.

Determinism: loops are stepped in sorted-tenant order, each annealer
owns a ``random.Random(rng_seed + tenant)``, and evaluations are pure
functions of their tasks, so the retuned parameters are digest-stable
across executor strategies (inline, threads, sharded pool).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.monitor.fsd import FlowSizeDistribution
from repro.parallel.executor import SweepExecutor
from repro.parallel.tasks import EvalTask, ScenarioSpec
from repro.simulator.dcqcn import DcqcnParams
from repro.telemetry import trace
from repro.telemetry.registry import get_registry
from repro.tuning.annealing import AnnealingSchedule, ImprovedAnnealer
from repro.tuning.parameters import default_params, default_space

_RETUNES = get_registry().counter(
    "repro_controlplane_retunes_total",
    "Per-tenant SA tuning processes run to completion",
)


@dataclass(frozen=True)
class TenantRetune:
    """One finished tuning process and the parameters it dispatched."""

    tenant: int
    trigger_interval: int
    finished_interval: int
    params: DcqcnParams
    utility: float
    evaluations: int
    batches: int


class _TenantLoop:
    """One tenant's in-flight SA process (annealer + frozen scenario)."""

    def __init__(
        self,
        tenant: int,
        scenario: ScenarioSpec,
        annealer: ImprovedAnnealer,
        tp_bias: Tuple[bool, float],
        trigger_interval: int,
    ):
        self.tenant = tenant
        self.scenario = scenario
        self.annealer = annealer
        self.tp_bias = tp_bias
        self.trigger_interval = trigger_interval
        self.evaluations = 0
        self.batches = 0


class MultiplexedTuner:
    """Concurrent per-tenant tuning loops over one shared executor."""

    def __init__(
        self,
        base_scenario: ScenarioSpec,
        executor: Optional[SweepExecutor] = None,
        batch_size: int = 4,
        schedule: Optional[AnnealingSchedule] = None,
        rng_seed: int = 7,
        initial_params: Optional[DcqcnParams] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.base_scenario = base_scenario
        self.executor = executor or SweepExecutor()
        self.batch_size = batch_size
        self.schedule = schedule or AnnealingSchedule()
        self.rng_seed = rng_seed
        self.initial_params = initial_params or default_params()
        self._loops: Dict[int, _TenantLoop] = {}
        self.finished: List[TenantRetune] = []

    # -- lifecycle ------------------------------------------------------

    @property
    def active_tenants(self) -> List[int]:
        return sorted(self._loops)

    def tenant_scenario(self, tenant: int) -> ScenarioSpec:
        """The frozen per-tenant scenario a trigger evaluates against."""
        return replace(
            self.base_scenario,
            workload_seed=self.base_scenario.workload_seed + tenant,
        )

    def trigger(
        self,
        tenant: int,
        interval: int,
        fsd: FlowSizeDistribution,
    ) -> bool:
        """Start (or restart) ``tenant``'s tuning loop.

        The tenant's FSD supplies the guided-randomness bias exactly as
        the single-tenant controller's does.  Returns False when the
        tenant already has a loop in flight — the running process keeps
        its walk; re-triggering mid-tune is the single-tenant restart
        policy, which we deliberately keep simple here.
        """
        if tenant in self._loops:
            return False
        import random

        scenario = self.tenant_scenario(tenant)
        annealer = ImprovedAnnealer(
            default_space(),
            self.schedule,
            rng=random.Random(self.rng_seed + tenant),
        )
        seed_result = self.executor.map(
            [
                EvalTask(
                    scenario=scenario,
                    seed=scenario.seed,
                    params=self.initial_params,
                )
            ]
        )[0]
        annealer.begin(self.initial_params, seed_result.utility)
        loop = _TenantLoop(
            tenant, scenario, annealer, fsd.dominant(), interval
        )
        loop.evaluations = 1
        self._loops[tenant] = loop
        return True

    # -- one control-plane interval -------------------------------------

    def step(self, interval: int) -> List[TenantRetune]:
        """Advance every active loop by one multiplexed proposal batch.

        Returns the loops that finished this interval (their dispatched
        parameters are also appended to :attr:`finished`).
        """
        order = self.active_tenants
        if not order:
            return []
        proposals: List[Tuple[_TenantLoop, List[DcqcnParams]]] = []
        tasks: List[EvalTask] = []
        for tenant in order:
            loop = self._loops[tenant]
            candidates = loop.annealer.propose_batch(
                self.batch_size, loop.tp_bias
            )
            proposals.append((loop, candidates))
            tasks.extend(
                EvalTask(
                    scenario=loop.scenario,
                    seed=loop.scenario.seed,
                    params=candidate,
                    index=len(tasks) + i,
                )
                for i, candidate in enumerate(candidates)
            )
        results = self.executor.map(tasks)
        done: List[TenantRetune] = []
        offset = 0
        for loop, candidates in proposals:
            batch = results[offset : offset + len(candidates)]
            offset += len(candidates)
            loop.annealer.feedback_batch([r.utility for r in batch])
            loop.evaluations += len(batch)
            loop.batches += 1
            if not loop.annealer.running:
                state = loop.annealer.state
                retune = TenantRetune(
                    tenant=loop.tenant,
                    trigger_interval=loop.trigger_interval,
                    finished_interval=interval,
                    params=state.best_solution,
                    utility=state.best_util,
                    evaluations=loop.evaluations,
                    batches=loop.batches,
                )
                _RETUNES.inc()
                if trace.active:
                    trace.event(
                        "controlplane.retune",
                        {
                            "tenant": loop.tenant,
                            "params": state.best_solution.as_dict(),
                            "utility": state.best_util,
                            "evaluations": loop.evaluations,
                        },
                    )
                done.append(retune)
                self.finished.append(retune)
                del self._loops[loop.tenant]
        return done
