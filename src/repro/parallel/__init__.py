"""Parallel evaluation fabric: process-pool sweeps over independent runs.

Every paper artifact reduces to many independent packet-level
simulations — parameter grids (Fig. 5/6), scheme sweeps (Fig. 7-11),
SA ablations (Fig. 12).  This package fans them out:

* :class:`~repro.parallel.tasks.ScenarioSpec` / ``EvalTask`` /
  ``EvalResult`` — the picklable task protocol.
* :class:`~repro.parallel.executor.SweepExecutor` — ordered,
  deterministic process-pool mapping with worker warm start, chunked
  dispatch, timeout/crash retry and eval-cache integration.
* :func:`~repro.parallel.sa.batched_anneal` — K candidates per SA
  temperature step evaluated concurrently.
* :mod:`~repro.parallel.sweeps` — the sweep drivers
  (:func:`offline_grid_search_parallel`, :func:`run_parameter_sweep`,
  :func:`run_scheme_sweep`).
"""

from repro.parallel.executor import (
    SweepExecutor,
    resolve_jobs,
    resolve_strategy,
)
from repro.parallel.pool import (
    WorkerPool,
    close_shared_pool,
    get_shared_pool,
)
from repro.parallel.sa import BatchedAnnealResult, batched_anneal
from repro.parallel.sweeps import (
    offline_grid_search_parallel,
    run_parameter_sweep,
    run_scheme_sweep,
)
from repro.parallel.tasks import (
    EvalResult,
    EvalTask,
    ScenarioSpec,
    derive_task_seed,
    evaluate_task,
    expected_qp_count,
    extract_schedule,
    make_abort_check,
    scheduled_interval_count,
)

__all__ = [
    "BatchedAnnealResult",
    "EvalResult",
    "EvalTask",
    "ScenarioSpec",
    "SweepExecutor",
    "WorkerPool",
    "batched_anneal",
    "close_shared_pool",
    "derive_task_seed",
    "evaluate_task",
    "expected_qp_count",
    "extract_schedule",
    "get_shared_pool",
    "make_abort_check",
    "offline_grid_search_parallel",
    "resolve_jobs",
    "resolve_strategy",
    "run_parameter_sweep",
    "run_scheme_sweep",
    "scheduled_interval_count",
]
