"""Persistent pool worker: the child half of :mod:`repro.parallel.pool`.

A worker process is forked once per pool lifetime, not once per sweep.
It initializes once — imports, a zeroed telemetry registry, a warm
fabric cache — and then serves chunks over its duplex pipe until told
to stop, which is what amortizes the spawn + warm-build cost the old
per-sweep ``ProcessPoolExecutor`` paid on every ``map()``.

Message protocol (parent → worker):

* ``("chunk", chunk_id, [EvalTask, ...])`` — evaluate, reply.
* ``("stop",)`` / pipe EOF — exit cleanly.

Replies (worker → parent):

* ``("done", chunk_id, "shm", nbytes)`` — the pickled
  ``(results, registry_snapshot)`` payload was written into the
  worker's shared-memory result slot; only this tiny header crosses
  the pipe.
* ``("done", chunk_id, "pipe", payload)`` — the payload outgrew the
  slot (or no slot could be created) and ships inline instead.

The registry snapshot rides with every chunk and is reset on capture,
so each chunk's metric delta is merged into the parent exactly once —
the same fork-merge contract the old pool honoured.  The registry is
also reset at worker startup: a fork inherits whatever totals the
parent had accumulated, and shipping those back would double-count.
"""

from __future__ import annotations

import multiprocessing
import pickle
from collections import OrderedDict
from multiprocessing import connection as mp_connection
from typing import Optional, Tuple

from repro.parallel.tasks import (
    EvalResult,
    EvalTask,
    Schedule,
    ScenarioSpec,
    build_scenario,
    evaluate_task,
    extract_schedule,
    warm_engine_mode,
)
from repro.telemetry.registry import get_registry

#: Test hook, called with ``(chunk_id, tasks)`` before a chunk is
#: evaluated.  Forked workers inherit a monkeypatched value — the
#: crashed-worker tests use it to kill a worker mid-chunk.
_CRASH_HOOK = None

#: Distinct scenarios whose warm fabrics a process keeps alive.
_WARM_CAPACITY = 4


class WarmCache:
    """Per-process warm fabrics, keyed by scenario fingerprint.

    For static workloads the flow arrival schedule is extracted once
    and a bare fabric built once; every evaluation then resets and
    replays instead of reconstructing topology.  Small LRU: sweeps are
    dominated by one scenario, SA ablations interleave a handful.
    """

    def __init__(self, capacity: int = _WARM_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[Optional[Schedule], object]]" = (
            OrderedDict()
        )

    def lookup(self, spec: ScenarioSpec) -> Tuple[Optional[Schedule], object]:
        """(schedule, warm network) for ``spec``, building on first use."""
        fp = spec.fingerprint()
        if fp in self._entries:
            self._entries.move_to_end(fp)
            return self._entries[fp]
        schedule = extract_schedule(spec)
        network = None
        if schedule is not None:
            # Empty schedule -> bare fabric; flows are replayed per
            # task.  Built in the mode unpinned tasks will resolve
            # (including the lanes QP floor) so the warm network
            # survives evaluate_task's mode-mismatch guard.
            network, _, _ = build_scenario(
                spec,
                spec.seed,
                [],
                engine_mode=warm_engine_mode(spec, schedule),
            )
        self._entries[fp] = (schedule, network)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return schedule, network


def evaluate_warm(task: EvalTask, warm: WarmCache) -> EvalResult:
    """Evaluate ``task`` against the warm fabric for its scenario."""
    schedule, network = warm.lookup(task.scenario)
    return evaluate_task(task, schedule, network=network)


def run_task(task, warm: WarmCache, state: dict):
    """Dispatch one pool task: EvalTask or anything with ``run_in_worker``.

    The pool is duck-typed: a task that defines ``run_in_worker(state)``
    (e.g. a control-plane :class:`~repro.controlplane.shards.ShardTask`)
    runs through that hook with the worker's process-local ``state``
    dict; everything else is an :class:`EvalTask` served from the warm
    fabric cache.  ``state`` must be used only as a pure cache so that
    inline recomputation (work stealing, crashed-worker retry) yields
    identical results.
    """
    runner = getattr(task, "run_in_worker", None)
    if runner is not None:
        return runner(state)
    return evaluate_warm(task, warm)


def _worker_main(
    worker_id: int,
    conn,
    slot_name: Optional[str],
    slot_size: int,
) -> None:
    """Worker process entry point: serve chunks until stopped."""
    # Fork copies the parent's live counters; deltas must start at zero.
    get_registry().reset()
    slot = None
    if slot_name is not None:
        try:
            from multiprocessing import shared_memory

            slot = shared_memory.SharedMemory(name=slot_name)
        except (ImportError, OSError, ValueError):
            slot = None  # pipe fallback, decided per reply below
    warm = WarmCache()
    # Process-local scratch for duck-typed tasks (pure cache only; see
    # run_task).  Kept a local, not a module global, for fork safety.
    state: dict = {}
    # A forked sibling inherits our parent-side pipe end, so a dead
    # parent does not reliably EOF the pipe.  Waiting on the parent's
    # sentinel alongside the pipe catches that case: if the parent dies
    # (even SIGKILL, where no atexit runs), the sentinel fires and the
    # worker exits instead of lingering as an orphan.
    parent = multiprocessing.parent_process()
    waitables = [conn] if parent is None else [conn, parent.sentinel]
    try:
        while True:
            try:
                ready = mp_connection.wait(waitables)
                if conn not in ready:
                    break  # parent died without saying stop
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away
            if message is None or message[0] == "stop":
                break
            _, chunk_id, tasks = message
            if _CRASH_HOOK is not None:
                _CRASH_HOOK(chunk_id, tasks)
            results = [run_task(task, warm, state) for task in tasks]
            payload = pickle.dumps(
                (results, get_registry().snapshot(reset=True)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if slot is not None and len(payload) <= slot_size:
                slot.buf[: len(payload)] = payload
                conn.send(("done", chunk_id, "shm", len(payload)))
            else:
                conn.send(("done", chunk_id, "pipe", payload))
    finally:
        if slot is not None:
            slot.close()
        conn.close()
