"""Persistent, core-aware worker pool with shared-memory transport.

The old executor built a fresh ``ProcessPoolExecutor`` per ``map()``
call, so every sweep paid interpreter spawn, module import and warm
fabric construction before the first useful event — on short sweeps
that overhead ate the entire parallel speedup (BENCH recorded
``sweep.speedup = 1.03``).  :class:`WorkerPool` keeps its workers
alive across calls:

* **Persistent workers** — forked once (:func:`repro.parallel.worker.
  _worker_main`), each initializes once and serves many chunks over a
  private duplex pipe.  Dead workers are respawned lazily at the next
  :meth:`WorkerPool.run`.
* **Shared-memory result transport** — the parent creates one
  ``multiprocessing.shared_memory`` segment per worker (its *result
  slot*, ``REPRO_SHM_SLOT_BYTES``).  Bulky payloads — recordings, FSD
  histograms, interval arrays pickled inside ``EvalResult`` — are
  written into the slot and only a compact ``("done", id, "shm",
  nbytes)`` header crosses the pipe; oversized payloads fall back to
  pipe pickling transparently.  Slots are parent-owned, so unlink
  happens exactly once at :meth:`WorkerPool.close`.
* **Work stealing** — dispatch is parent-driven, one chunk in flight
  per worker.  While all workers are busy and chunks are still queued,
  the parent reclaims chunks from the *tail* of the queue and runs
  them in-process (``steal_eval``), so one slow candidate cannot
  serialize the batch behind it.  Evaluations are deterministic, so a
  stolen chunk's results are identical to what the worker would have
  produced.
* **Environment propagation** — workers must agree with the parent on
  the ``REPRO_*`` state they inherited at fork (trace run id, recorder
  path, engine mode, ...).  The pool fingerprints
  :data:`PROPAGATED_ENV` at spawn and respawns every worker when the
  fingerprint changes.

The pool is strategy-agnostic plumbing: chunking, retry policy and the
thread/process/inline choice live in
:class:`repro.parallel.executor.SweepExecutor`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import env
from repro.parallel.worker import _worker_main
from repro.telemetry import trace
from repro.telemetry.log import get_logger
from repro.telemetry.registry import get_registry

_log = get_logger("parallel.pool")

_STEALS = get_registry().counter(
    "repro_executor_steals_total",
    "Straggler chunks reclaimed and evaluated in the parent",
)
_WORKER_CRASHES = get_registry().counter(
    "repro_executor_worker_crashes_total",
    "Persistent pool workers that died mid-chunk",
)
_IPC_SHM_BYTES = get_registry().counter(
    "repro_executor_ipc_shm_bytes_total",
    "Result payload bytes shipped via shared-memory slots",
)
_IPC_PIPE_BYTES = get_registry().counter(
    "repro_executor_ipc_pipe_bytes_total",
    "Result payload bytes shipped via the pipe fallback",
)

#: Environment variables forked workers must agree with the parent on;
#: a change respawns the pool (see :meth:`WorkerPool.refresh`).
PROPAGATED_ENV: Tuple[str, ...] = (
    "REPRO_TRACE",
    "REPRO_TRACE_RUN",
    "REPRO_RECORD",
    "REPRO_RECORD_BUDGET",
    "REPRO_LOG_LEVEL",
    "REPRO_PACKET_FREELIST",
    "REPRO_BATCHED_MONITOR",
    "REPRO_HYBRID_ENGINE",
    "REPRO_LANES_MIN_QPS",
)

#: Env knob sizing each worker's shared-memory result slot.
SHM_SLOT_ENV = "REPRO_SHM_SLOT_BYTES"

#: Seconds between result polls; doubles as the straggler threshold —
#: a parent that has polled once without progress starts stealing.
_POLL_S = 0.05

#: Seconds to wait for a worker to exit cleanly before terminating it.
_JOIN_S = 1.0


def _env_fingerprint() -> Tuple[Optional[str], ...]:
    return tuple(env.raw(name) for name in PROPAGATED_ENV)


class _Worker:
    """Parent-side handle for one pool process."""

    __slots__ = ("wid", "process", "conn", "slot", "chunk", "started", "dead")

    def __init__(self, wid, process, conn, slot):
        self.wid = wid
        self.process = process
        self.conn = conn
        self.slot = slot  # SharedMemory or None (pipe-only transport)
        self.chunk = None  # (chunk_id, tasks) in flight
        self.started = 0.0  # perf_counter at dispatch
        self.dead = False  # pipe broke; process may not be reaped yet

    @property
    def alive(self) -> bool:
        # ``dead`` covers the window between pipe EOF and the child
        # becoming reapable: is_alive() still says True there, and
        # trusting it would re-dispatch to a corpse.
        return (
            not self.dead
            and self.process is not None
            and self.process.is_alive()
        )


class WorkerPool:
    """A fixed crew of persistent evaluation workers.

    ``run()`` may be called any number of times; workers (and their
    warm fabric caches) survive between calls.  ``close()`` tears the
    crew down and releases the shared-memory slots.
    """

    def __init__(self, jobs: int, slot_bytes: Optional[int] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.slot_bytes = (
            slot_bytes if slot_bytes is not None else env.get(SHM_SLOT_ENV)
        )
        self.closed = False
        self._ctx = multiprocessing.get_context()
        self._env_fp = _env_fingerprint()
        self._workers: List[_Worker] = [
            self._spawn(wid, self._make_slot()) for wid in range(jobs)
        ]

    # -- lifecycle ------------------------------------------------------

    def _make_slot(self):
        try:
            from multiprocessing import shared_memory

            return shared_memory.SharedMemory(
                create=True, size=self.slot_bytes
            )
        except (ImportError, OSError, ValueError):
            _log.warning(
                "shared-memory slot unavailable; falling back to pipe "
                "transport"
            )
            return None

    def _spawn(self, wid: int, slot) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                child_conn,
                slot.name if slot is not None else None,
                self.slot_bytes,
            ),
            name=f"repro-eval-{wid}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(wid, process, parent_conn, slot)

    def _stop_worker(self, worker: _Worker) -> None:
        if worker.process is not None and worker.process.is_alive():
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                _log.debug("worker %d pipe already closed", worker.wid)
            worker.process.join(_JOIN_S)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_JOIN_S)
        try:
            worker.conn.close()
        except OSError:
            _log.debug("worker %d conn close raced", worker.wid)

    def refresh(self) -> None:
        """Respawn dead workers; restart all on a propagated-env change.

        Called at the top of every :meth:`run`, so a crash or an
        env-visible reconfiguration (``trace.configure`` exporting
        ``REPRO_TRACE_RUN``, a recorder attach, an engine-mode switch)
        between sweeps is healed before dispatch.  Slots are reused
        across respawns — they are parent-owned and content-free
        between chunks.
        """
        fp = _env_fingerprint()
        if fp != self._env_fp:
            self._env_fp = fp
            for worker in self._workers:
                self._stop_worker(worker)
            self._workers = [
                self._spawn(worker.wid, worker.slot)
                for worker in self._workers
            ]
            return
        for i, worker in enumerate(self._workers):
            if not worker.alive:
                self._stop_worker(worker)  # reap + close stale conn
                self._workers[i] = self._spawn(worker.wid, worker.slot)

    def worker_pids(self) -> List[int]:
        """PIDs of live workers (diagnostics and tests)."""
        return [w.process.pid for w in self._workers if w.alive]

    def close(self) -> None:
        """Stop every worker and release the shared-memory slots."""
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            self._stop_worker(worker)
        for worker in self._workers:
            if worker.slot is not None:
                worker.slot.close()
                try:
                    worker.slot.unlink()
                except OSError:
                    _log.debug("slot for worker %d already gone", worker.wid)
        self._workers = []

    # -- dispatch -------------------------------------------------------

    def run(
        self,
        chunks: Sequence[Tuple[Any, Sequence]],
        task_timeout: Optional[float] = None,
        max_workers: Optional[int] = None,
        steal_eval: Optional[Callable[[list], list]] = None,
    ):
        """Dispatch ``chunks`` — ``(chunk_id, tasks)`` pairs — and collect.

        Returns ``(completed, failed, stolen)``:

        * ``completed`` — ``{chunk_id: (results, metrics_snapshot)}``;
          the snapshot is ``None`` for stolen chunks (their metrics
          landed directly in the parent registry).
        * ``failed`` — ``[(chunk_id, reason)]`` with reason ``"crash"``,
          ``"timeout"`` or ``"spawn"``; the caller retries these.
        * ``stolen`` — chunk_ids the parent reclaimed and evaluated via
          ``steal_eval``.

        ``chunk_id`` is opaque to the pool but must be hashable; the
        executor passes the tuple of task positions, which is also what
        the ``executor.steal`` telemetry event reports.
        """
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        self.refresh()
        limit = (
            self.jobs
            if max_workers is None
            else max(1, min(max_workers, self.jobs))
        )
        idle = [w for w in self._workers if w.alive][:limit]
        pending = deque(
            (chunk_id, list(chunk_tasks)) for chunk_id, chunk_tasks in chunks
        )
        completed: Dict[Any, Tuple[list, Optional[dict]]] = {}
        failed: List[Tuple[Any, str]] = []
        stolen: List[Any] = []
        busy: Dict[Any, _Worker] = {}

        if not idle:
            # Pool never came up (fork failure, sandboxing): report
            # everything failed so the caller's retry path takes over.
            return (
                completed,
                [(chunk_id, "spawn") for chunk_id, _ in pending],
                stolen,
            )

        while pending or busy:
            while idle and pending:
                worker = idle.pop()
                chunk_id, chunk_tasks = pending.popleft()
                try:
                    worker.conn.send(("chunk", chunk_id, chunk_tasks))
                except (OSError, BrokenPipeError):
                    # Worker died while idle: requeue, drop the worker.
                    _WORKER_CRASHES.inc()
                    worker.dead = True
                    pending.appendleft((chunk_id, chunk_tasks))
                    continue
                worker.chunk = (chunk_id, chunk_tasks)
                worker.started = time.perf_counter()
                busy[worker.conn] = worker
            if not busy:
                if pending and steal_eval is not None:
                    self._steal(pending, completed, stolen, steal_eval)
                    continue
                # No live workers and nothing to steal with.
                failed.extend(
                    (chunk_id, "crash") for chunk_id, _ in pending
                )
                pending.clear()
                break
            ready = mp_connection.wait(list(busy), timeout=_POLL_S)
            if not ready:
                self._expire(busy, idle, task_timeout, failed)
                if busy and pending and steal_eval is not None:
                    self._steal(pending, completed, stolen, steal_eval)
                continue
            for conn in ready:
                worker = busy.pop(conn)
                chunk_id = worker.chunk[0]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    _WORKER_CRASHES.inc()
                    _log.warning(
                        "pool worker %d died mid-chunk", worker.wid
                    )
                    failed.append((chunk_id, "crash"))
                    worker.chunk = None
                    worker.dead = True
                    worker.process.join(_JOIN_S)  # reap the corpse
                    continue  # refresh() respawns it on the next run()
                _, done_id, transport, data = message
                if transport == "shm":
                    _IPC_SHM_BYTES.inc(data)
                    payload = bytes(worker.slot.buf[:data])
                else:
                    _IPC_PIPE_BYTES.inc(len(data))
                    payload = data
                completed[done_id] = pickle.loads(payload)
                worker.chunk = None
                idle.append(worker)
        return completed, failed, stolen

    def _steal(self, pending, completed, stolen, steal_eval) -> None:
        """Reclaim the tail chunk and evaluate it in the parent."""
        chunk_id, chunk_tasks = pending.pop()
        _STEALS.inc()
        if trace.active:
            trace.event(
                "executor.steal",
                {"positions": list(chunk_id), "remaining": len(pending)},
            )
        completed[chunk_id] = (steal_eval(chunk_tasks), None)
        stolen.append(chunk_id)

    def _expire(self, busy, idle, task_timeout, failed) -> None:
        """Kill workers whose in-flight chunk exceeded the timeout."""
        if not task_timeout:
            return
        now = time.perf_counter()
        expired = [
            worker
            for worker in busy.values()
            if now - worker.started > task_timeout
        ]
        for worker in expired:
            del busy[worker.conn]
            _log.warning(
                "pool worker %d exceeded task timeout; terminating",
                worker.wid,
            )
            failed.append((worker.chunk[0], "timeout"))
            worker.chunk = None
            worker.dead = True
            worker.process.terminate()


# Process-wide shared pool (None-initialised: per-process after fork by
# design — a forked worker must never inherit a live pool handle).
_SHARED_POOL = None
_ATEXIT_REGISTERED = False


def get_shared_pool(jobs: int) -> WorkerPool:
    """Process-wide pool, grown (never shrunk) to ``jobs`` workers.

    Persistence is the point: ``batched_anneal`` calls ``map()``
    hundreds of times and must not pay spawn + warm-build per batch.
    A smaller request reuses the bigger pool — per-call dispatch width
    is capped via ``run(max_workers=...)`` instead.
    """
    global _SHARED_POOL, _ATEXIT_REGISTERED
    pool = _SHARED_POOL
    if pool is not None and not pool.closed and pool.jobs >= jobs:
        return pool
    grown = jobs
    if pool is not None and not pool.closed:
        grown = max(jobs, pool.jobs)
        pool.close()
    _SHARED_POOL = WorkerPool(grown)
    if not _ATEXIT_REGISTERED:
        atexit.register(close_shared_pool)
        _ATEXIT_REGISTERED = True
    return _SHARED_POOL


def close_shared_pool() -> None:
    """Tear down the shared pool (tests, interpreter exit)."""
    global _SHARED_POOL
    if _SHARED_POOL is not None:
        _SHARED_POOL.close()
        _SHARED_POOL = None
