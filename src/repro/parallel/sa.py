"""Batched simulated annealing over the parallel fabric.

The paper's tuning process evaluates one SA candidate per monitor
interval *in situ* — on the live network.  The offline variant (used
by the Fig. 12-style ablations and by pretraining) instead evaluates
candidates on a *frozen* scenario, which makes the evaluations
independent and therefore parallelizable: per temperature step the
annealer proposes K candidates from the current solution, the
executor evaluates them concurrently (dodging the cache for points SA
already visited), and the Metropolis accept/reject is then applied
**in proposal order**, so the guided-randomness and relaxed-schedule
semantics of Algorithm 1 are preserved (see DESIGN.md, "Batched SA").

Multi-fidelity search (``fidelity`` argument) layers two accelerations
on top without touching the full-fidelity semantics:

* **screen** — each batch proposes ``screen_ratio``× more candidates,
  the fluid surrogate scores them all in one vectorized pass, and only
  the top ``batch_size`` graduate to DES evaluation
  (:meth:`~repro.tuning.annealing._AnnealerBase.screen_batch` prunes
  the pending batch so the Metropolis walk only ever sees survivors).
* **early abort** — DES runs carry a threshold derived from the
  incumbent best; a run whose best-achievable mean utility drops below
  it is abandoned mid-flight and its optimistic bound fed back instead.

With ``fidelity`` left at the default (mode ``full``, abort off) the
search is byte-identical to the pre-multi-fidelity implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.parallel.executor import SweepExecutor
from repro.parallel.tasks import EvalTask, ScenarioSpec, evaluate_task
from repro.simulator.dcqcn import DcqcnParams
from repro.telemetry import trace
from repro.tuning.annealing import _AnnealerBase
from repro.tuning.fidelity import FidelityConfig, SurrogateScreen


@dataclass
class BatchedAnnealResult:
    """Outcome of one offline batched-SA search."""

    best_params: DcqcnParams
    best_utility: float
    evaluations: int              # full-fidelity (DES) evaluations
    batches: int
    cache_hits: int
    utility_trace: List[float] = field(default_factory=list)
    fidelity_mode: str = "full"
    surrogate_scored: int = 0     # candidates scored by the fluid model
    screened_out: int = 0         # candidates the screen eliminated
    aborted: int = 0              # DES runs abandoned by early abort


def batched_anneal(
    scenario: ScenarioSpec,
    annealer: _AnnealerBase,
    initial: DcqcnParams,
    batch_size: int = 4,
    executor: Optional[SweepExecutor] = None,
    tp_bias: Optional[Tuple[bool, float]] = None,
    max_batches: Optional[int] = None,
    fidelity: Optional[FidelityConfig] = None,
    strategy: Optional[str] = None,
) -> BatchedAnnealResult:
    """Run one full SA tuning process with K-way concurrent evaluation.

    ``annealer`` may be an :class:`~repro.tuning.annealing.
    ImprovedAnnealer` or ``NaiveAnnealer``; its schedule decides when
    the process ends.  ``tp_bias`` plays the role of the measured FSD
    (frozen for the whole search, as the scenario is frozen too).
    ``fidelity`` selects the evaluation policy; see the module
    docstring.  ``batch_size`` is always the number of *full*
    evaluations per batch — screening proposes more and prunes down.

    The default executor dispatches to the process-wide persistent
    :func:`~repro.parallel.pool.get_shared_pool`, so the hundreds of
    small batches an SA search issues reuse one warm worker crew
    instead of paying spawn + warm-build per batch; ``strategy``
    forwards to :class:`SweepExecutor` (``auto`` when unset).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    fidelity = fidelity or FidelityConfig()
    executor = executor or SweepExecutor(strategy=strategy)
    screen = (
        SurrogateScreen(scenario, fidelity)
        if fidelity.mode in ("screen", "surrogate")
        else None
    )

    seed_result = evaluate_task(
        EvalTask(scenario=scenario, seed=scenario.seed, params=initial)
    )
    if screen is not None:
        seed_fluid = screen.score([initial])[0]
        screen.observe(seed_fluid, seed_result.utility)
    annealer.begin(initial, seed_result.utility)

    evaluations = 1
    batches = 0
    cache_hits = 0
    surrogate_scored = 1 if screen is not None else 0
    screened_out = 0
    aborted = 0
    with trace.span(
        "sa.search", {"batch_size": batch_size, "fidelity": fidelity.mode}
    ):
        while annealer.running and (
            max_batches is None or batches < max_batches
        ):
            candidates = annealer.propose_batch(
                fidelity.proposals_for(batch_size), tp_bias
            )
            if fidelity.mode == "surrogate":
                # Fluid-only batch: no DES dispatch at all; the walk
                # runs on calibrated surrogate scores.
                scores = screen.score(candidates)
                surrogate_scored += len(candidates)
                annealer.feedback_batch(
                    [screen.calibration.apply(s) for s in scores]
                )
                batches += 1
                continue

            scores: Optional[List[float]] = None
            if fidelity.mode == "screen":
                survivor_idx, scores = screen.select(candidates, batch_size)
                surrogate_scored += len(candidates)
                screened_out += len(candidates) - len(survivor_idx)
                survivors = annealer.screen_batch(survivor_idx)
            else:
                survivor_idx = list(range(len(candidates)))
                survivors = candidates

            threshold = fidelity.abort_threshold(annealer.state.best_util)
            tasks = [
                EvalTask(
                    scenario=scenario,
                    seed=scenario.seed,
                    params=c,
                    index=i,
                    abort_threshold=threshold,
                    abort_after_frac=fidelity.abort_after_frac,
                )
                for i, c in enumerate(survivors)
            ]
            results = executor.map(tasks)
            for idx, result in zip(survivor_idx, results):
                if result.aborted:
                    aborted += 1
                elif screen is not None:
                    screen.observe(scores[idx], result.utility)
            annealer.feedback_batch([r.utility for r in results])
            evaluations += len(results)
            cache_hits += executor.last_cache_hits
            batches += 1
            if trace.active:
                trace.event(
                    "sa.batch",
                    {
                        "batch": batches,
                        "size": len(results),
                        "proposed": len(candidates),
                        "aborted": sum(1 for r in results if r.aborted),
                        "cache_hits": executor.last_cache_hits,
                        "temperature": annealer.state.temperature,
                        "best_utility": annealer.state.best_util,
                    },
                )

    state = annealer.state
    best_params = state.best_solution
    best_utility = state.best_util
    if fidelity.mode == "surrogate":
        # The walk ran on surrogate scores; confirm the winner with one
        # full-fidelity run so the reported utility is a measurement.
        confirm = evaluate_task(
            EvalTask(scenario=scenario, seed=scenario.seed, params=best_params)
        )
        evaluations += 1
        best_utility = confirm.utility
    return BatchedAnnealResult(
        best_params=best_params,
        best_utility=best_utility,
        evaluations=evaluations,
        batches=batches,
        cache_hits=cache_hits,
        utility_trace=list(annealer.utility_trace),
        fidelity_mode=fidelity.mode,
        surrogate_scored=surrogate_scored,
        screened_out=screened_out,
        aborted=aborted,
    )
