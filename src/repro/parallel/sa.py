"""Batched simulated annealing over the parallel fabric.

The paper's tuning process evaluates one SA candidate per monitor
interval *in situ* — on the live network.  The offline variant (used
by the Fig. 12-style ablations and by pretraining) instead evaluates
candidates on a *frozen* scenario, which makes the evaluations
independent and therefore parallelizable: per temperature step the
annealer proposes K candidates from the current solution, the
executor evaluates them concurrently (dodging the cache for points SA
already visited), and the Metropolis accept/reject is then applied
**in proposal order**, so the guided-randomness and relaxed-schedule
semantics of Algorithm 1 are preserved (see DESIGN.md, "Batched SA").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.parallel.executor import SweepExecutor
from repro.parallel.tasks import EvalTask, ScenarioSpec, evaluate_task
from repro.simulator.dcqcn import DcqcnParams
from repro.telemetry import trace
from repro.tuning.annealing import _AnnealerBase


@dataclass
class BatchedAnnealResult:
    """Outcome of one offline batched-SA search."""

    best_params: DcqcnParams
    best_utility: float
    evaluations: int
    batches: int
    cache_hits: int
    utility_trace: List[float] = field(default_factory=list)


def batched_anneal(
    scenario: ScenarioSpec,
    annealer: _AnnealerBase,
    initial: DcqcnParams,
    batch_size: int = 4,
    executor: Optional[SweepExecutor] = None,
    tp_bias: Optional[Tuple[bool, float]] = None,
    max_batches: Optional[int] = None,
) -> BatchedAnnealResult:
    """Run one full SA tuning process with K-way concurrent evaluation.

    ``annealer`` may be an :class:`~repro.tuning.annealing.
    ImprovedAnnealer` or ``NaiveAnnealer``; its schedule decides when
    the process ends.  ``tp_bias`` plays the role of the measured FSD
    (frozen for the whole search, as the scenario is frozen too).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    executor = executor or SweepExecutor()

    seed_result = evaluate_task(
        EvalTask(scenario=scenario, seed=scenario.seed, params=initial)
    )
    annealer.begin(initial, seed_result.utility)

    evaluations = 1
    batches = 0
    cache_hits = 0
    with trace.span("sa.search", {"batch_size": batch_size}):
        while annealer.running and (
            max_batches is None or batches < max_batches
        ):
            candidates = annealer.propose_batch(batch_size, tp_bias)
            tasks = [
                EvalTask(
                    scenario=scenario, seed=scenario.seed, params=c, index=i
                )
                for i, c in enumerate(candidates)
            ]
            results = executor.map(tasks)
            annealer.feedback_batch([r.utility for r in results])
            evaluations += len(results)
            cache_hits += executor.last_cache_hits
            batches += 1
            if trace.active:
                trace.event(
                    "sa.batch",
                    {
                        "batch": batches,
                        "size": len(results),
                        "cache_hits": executor.last_cache_hits,
                        "temperature": annealer.state.temperature,
                        "best_utility": annealer.state.best_util,
                    },
                )

    state = annealer.state
    return BatchedAnnealResult(
        best_params=state.best_solution,
        best_utility=state.best_util,
        evaluations=evaluations,
        batches=batches,
        cache_hits=cache_hits,
        utility_trace=list(annealer.utility_trace),
    )
