"""Core-aware sweep execution: adaptive strategy, caching, retries.

:class:`SweepExecutor` maps a list of :class:`~repro.parallel.tasks.
EvalTask` onto an execution strategy and returns results **in task
order** — the contract every consumer (grid search, batched SA, figure
sweeps) relies on to stay byte-compatible with serial execution.

Design points:

* **Strategy selection** (``--strategy auto|process|thread|inline``,
  ``REPRO_EXECUTOR_STRATEGY``) — ``auto`` estimates per-task wall time
  from an online EMA keyed by scenario fingerprint (probing one task
  inline for never-seen scenarios) and dispatches accordingly: tasks
  cheaper than the IPC round trip run inline, a middle band runs on
  threads (no pickling; fine for short tasks where fork dispatch
  dominates), and DES-heavy tasks go to the persistent process pool.
  Every strategy is digest-identical — evaluations are pure.
* **Persistent process pool** — the ``process`` path dispatches to the
  process-wide :func:`~repro.parallel.pool.get_shared_pool`, whose
  workers are forked once and keep their warm fabrics across sweeps
  (``private_pool=True`` gives an executor its own crew instead).
  Results return via shared-memory slots; straggler chunks are
  work-stolen back into the parent.  See :mod:`repro.parallel.pool`.
* **Adaptive chunking** — chunk size targets ~0.2 s of estimated work
  per chunk, clamped so every worker sees at least two chunks (load
  balance and stealing need slack); with no cost estimate the old
  ``ceil(n / (jobs * 4))`` rule applies.  An explicit ``chunk_size``
  always wins.
* **Per-chunk retry** — a chunk that times out, dies with its worker,
  or never reaches a pool (spawn failure) is re-evaluated *in-process
  at its original granularity*: one ``executor.retry`` event and one
  retried-chunks increment per failed chunk, never one giant lumped
  chunk.  Evaluations are deterministic, so retry results are
  identical to what the worker would have produced.
* **Evaluation cache** — with an :class:`~repro.tuning.eval_cache.
  EvalCache` attached, cacheable tasks (frozen params) are looked up
  before dispatch and stored after; only misses touch a pool.

``jobs`` resolution order: explicit argument, then the ``REPRO_JOBS``
environment variable, then ``os.cpu_count()``.  ``jobs=1`` runs
everything in-process (no pool, no pickling) which is also the
fallback wherever a pool cannot be spawned.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro import env
from repro.parallel.pool import WorkerPool, get_shared_pool
from repro.parallel.tasks import EvalResult, EvalTask
from repro.parallel.worker import WarmCache, evaluate_warm
from repro.telemetry import trace
from repro.telemetry.log import get_logger
from repro.telemetry.registry import get_registry
from repro.tuning.eval_cache import EvalCache

_log = get_logger("parallel.executor")

_RETRIED_CHUNKS = get_registry().counter(
    "repro_executor_retried_chunks_total",
    "Chunks re-evaluated in-process after a pool failure",
)
_TIMEOUTS = get_registry().counter(
    "repro_executor_timeouts_total", "Chunks that hit the task timeout"
)
_POOL_TASKS = get_registry().counter(
    "repro_executor_pool_tasks_total", "Tasks dispatched past the cache"
)

#: Env knob / CLI flag selecting the execution strategy.
EXECUTOR_STRATEGY_ENV = "REPRO_EXECUTOR_STRATEGY"

#: Recognized strategies.  ``auto`` picks among the other three.
STRATEGIES = ("auto", "process", "thread", "inline")

#: ``auto`` cost cutoffs (estimated seconds per task): below the first,
#: dispatch overhead of any kind loses to just evaluating; between
#: them, thread dispatch (no pickling) wins; above, processes.
_INLINE_COST_S = 0.002
_THREAD_COST_S = 0.010

#: Adaptive chunking aims for this much estimated work per chunk.
_TARGET_CHUNK_S = 0.2


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` env > cpu count.

    Every source is clamped to ``os.cpu_count()``: evaluation workers
    are CPU-bound, so oversubscribing the machine only adds context
    switching.  An effective count of 1 makes :meth:`SweepExecutor.map`
    fall back to serial in-process execution.
    """
    cpus = os.cpu_count() or 1
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        return min(jobs, cpus)
    from_env = env.get("REPRO_JOBS")
    if from_env is not None:
        return max(1, min(from_env, cpus))
    return cpus


def resolve_strategy(strategy: Optional[str] = None) -> str:
    """Effective strategy: explicit argument beats the environment."""
    if strategy is None:
        strategy = env.get(EXECUTOR_STRATEGY_ENV)
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}"
        )
    return strategy


class SweepExecutor:
    """Maps evaluation tasks over the parallel fabric, in order."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[EvalCache] = None,
        chunk_size: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 1,
        keep_recordings: int = 3,
        strategy: Optional[str] = None,
        private_pool: bool = False,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.keep_recordings = keep_recordings
        self.strategy = resolve_strategy(strategy)
        self.private_pool = private_pool
        # Diagnostics from the last map() call.
        self.last_cache_hits = 0
        self.last_pool_tasks = 0
        self.last_retried_chunks = 0
        self.last_stolen_chunks = 0
        self.last_strategy: Optional[str] = None
        # In-process warm fabrics (parent inline path / stolen chunks)
        # plus one per thread for the thread strategy.
        self._warm = WarmCache()
        self._tls = threading.local()
        # Per-scenario EMA of task wall seconds, feeding `auto`.
        self._cost_ema: Dict[str, float] = {}
        self._pool: Optional[WorkerPool] = None

    # -- public API -----------------------------------------------------

    def map(self, tasks: Sequence[EvalTask]) -> List[EvalResult]:
        """Evaluate every task; results are ordered like ``tasks``.

        Task ``index`` fields are used for aggregation bookkeeping but
        the returned list always matches the input positionally.
        """
        tasks = list(tasks)
        self.last_cache_hits = 0
        self.last_pool_tasks = 0
        self.last_retried_chunks = 0
        self.last_stolen_chunks = 0
        self.last_strategy = None
        if not tasks:
            return []

        results: Dict[int, EvalResult] = {}
        pending: List[int] = []

        # 1. Serve cache hits.
        for pos, task in enumerate(tasks):
            payload = self._cache_get(task)
            if payload is not None:
                results[pos] = EvalResult.from_cache_payload(task, payload)
                self.last_cache_hits += 1
            else:
                pending.append(pos)
        self.last_pool_tasks = len(pending)
        _POOL_TASKS.inc(len(pending))

        # 2. Pick a strategy (may probe one task inline) and chunking.
        strategy, est_cost = self._resolve_map_strategy(
            tasks, pending, results
        )
        chunk = self._chunk_for(len(pending), est_cost)
        self.last_strategy = strategy

        # 3. Evaluate the misses.
        with trace.span(
            "executor.map",
            {"tasks": len(tasks), "jobs": self.jobs, "strategy": strategy},
        ):
            if trace.active:
                trace.event(
                    "executor.strategy",
                    {
                        "strategy": strategy,
                        "tasks": len(tasks),
                        "jobs": self.jobs,
                        "est_cost_ms": (
                            None if est_cost is None else est_cost * 1e3
                        ),
                        "chunk": chunk,
                    },
                )
            if pending:
                if strategy == "inline":
                    for pos in pending:
                        results[pos] = self._evaluate_with_cache(tasks[pos])
                elif strategy == "thread":
                    self._run_threads(tasks, pending, results, chunk)
                else:
                    self._run_pool(tasks, pending, results, chunk)

        self._prune_recordings(results)
        return [results[pos] for pos in range(len(tasks))]

    def close(self) -> None:
        """Tear down a private pool (the shared pool outlives us)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- strategy selection ---------------------------------------------

    def _resolve_map_strategy(
        self,
        tasks: List[EvalTask],
        pending: List[int],
        results: Dict[int, EvalResult],
    ) -> Tuple[str, Optional[float]]:
        """(strategy, estimated cost) for this call.

        ``auto`` reads the wall-time EMA of the dominant scenario; a
        never-measured scenario is probed by evaluating one pending
        task inline (``pending`` shrinks accordingly), which doubles as
        useful work.
        """
        if not pending:
            return "inline", None
        fp = tasks[pending[0]].scenario.fingerprint()
        if self.strategy == "inline" or self.jobs <= 1 or len(pending) <= 1:
            return "inline", self._cost_ema.get(fp)
        if self.strategy != "auto":
            return self.strategy, self._cost_ema.get(fp)
        cost = self._cost_ema.get(fp)
        if cost is None:
            probe = pending.pop(0)
            results[probe] = self._evaluate_with_cache(tasks[probe])
            cost = self._cost_ema.get(fp)
        if not pending or cost is None:
            return "inline", cost
        if cost < _INLINE_COST_S:
            return "inline", cost
        if cost < _THREAD_COST_S:
            return "thread", cost
        return "process", cost

    def _chunk_for(self, n_pending: int, est_cost: Optional[float]) -> int:
        if self.chunk_size:
            return self.chunk_size
        if n_pending <= 0:
            return 1
        if est_cost:
            by_cost = max(1, round(_TARGET_CHUNK_S / est_cost))
            by_balance = max(1, math.ceil(n_pending / (self.jobs * 2)))
            return max(1, min(by_cost, by_balance))
        return max(1, math.ceil(n_pending / (self.jobs * 4)))

    def _note_cost(self, fp: str, wall: float) -> None:
        previous = self._cost_ema.get(fp)
        self._cost_ema[fp] = (
            wall if previous is None else 0.5 * previous + 0.5 * wall
        )

    # -- shared plumbing ------------------------------------------------

    def _prune_recordings(self, results: Dict[int, EvalResult]) -> None:
        """Keep flight recordings only for the best-K candidates.

        Every pool worker records when ``REPRO_RECORD`` is inherited,
        and recordings ride back inside each ``EvalResult``; retaining
        all of them would defeat the recorder's bounded-memory goal for
        large sweeps.  Completed runs outrank aborted ones, higher
        utility wins, and the task index breaks ties deterministically.
        """
        carriers = [r for r in results.values() if r.recording is not None]
        if len(carriers) <= self.keep_recordings:
            return
        carriers.sort(key=lambda r: (r.aborted, -r.utility, r.index))
        for result in carriers[self.keep_recordings:]:
            result.recording = None

    def _cache_get(self, task: EvalTask) -> Optional[dict]:
        if self.cache is None or not task.cacheable:
            return None
        return self.cache.get(
            task.scenario.fingerprint(), task.seed, task.params
        )

    def _cache_put(self, task: EvalTask, result: EvalResult) -> None:
        if self.cache is None or not task.cacheable:
            return
        if result.aborted:
            # An aborted run's utility is a bound, not a measurement;
            # caching it would poison later full-fidelity lookups.
            return
        self.cache.put(
            task.scenario.fingerprint(),
            task.seed,
            task.params,
            result.cache_payload(),
        )

    def _evaluate_inline(self, task: EvalTask) -> EvalResult:
        """Warm in-parent evaluation; feeds the cost EMA, no cache put."""
        result = evaluate_warm(task, self._warm)
        self._note_cost(task.scenario.fingerprint(), result.wall_time)
        return result

    def _evaluate_with_cache(self, task: EvalTask) -> EvalResult:
        result = self._evaluate_inline(task)
        self._cache_put(task, result)
        return result

    # -- thread strategy ------------------------------------------------

    def _thread_chunk(
        self, tasks: List[EvalTask], positions: List[int]
    ) -> List[EvalResult]:
        warm = getattr(self._tls, "warm", None)
        if warm is None:
            # One warm fabric per thread: Network.reset is stateful.
            warm = WarmCache()
            self._tls.warm = warm
        return [evaluate_warm(tasks[pos], warm) for pos in positions]

    def _run_threads(
        self,
        tasks: List[EvalTask],
        pending: List[int],
        results: Dict[int, EvalResult],
        chunk: int,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        chunks = [
            pending[i : i + chunk] for i in range(0, len(pending), chunk)
        ]
        with ThreadPoolExecutor(
            max_workers=min(self.jobs, len(chunks))
        ) as pool:
            futures = [
                (c, pool.submit(self._thread_chunk, tasks, c))
                for c in chunks
            ]
            for positions, future in futures:
                for pos, result in zip(positions, future.result()):
                    results[pos] = result
                    self._cache_put(tasks[pos], result)
                    self._note_cost(
                        tasks[pos].scenario.fingerprint(), result.wall_time
                    )

    # -- process strategy -----------------------------------------------

    def _acquire_pool(self) -> WorkerPool:
        if self.private_pool:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(self.jobs)
            return self._pool
        return get_shared_pool(self.jobs)

    def _steal_chunk(self, chunk_tasks: List[EvalTask]) -> List[EvalResult]:
        """In-parent evaluation of a work-stolen straggler chunk."""
        return [self._evaluate_inline(task) for task in chunk_tasks]

    def _run_pool(
        self,
        tasks: List[EvalTask],
        pending: List[int],
        results: Dict[int, EvalResult],
        chunk: int,
    ) -> None:
        chunks = [
            tuple(pending[i : i + chunk])
            for i in range(0, len(pending), chunk)
        ]
        chunk_items = [(c, [tasks[pos] for pos in c]) for c in chunks]
        try:
            pool = self._acquire_pool()
            completed, failed, stolen = pool.run(
                chunk_items,
                task_timeout=self.task_timeout,
                max_workers=self.jobs,
                steal_eval=self._steal_chunk,
            )
        except (OSError, RuntimeError, ValueError):
            # The pool never came up (fork failure, sandboxing): every
            # chunk retries below, at its original granularity.
            completed, stolen = {}, []
            failed = [(c, "spawn") for c in chunks]
        self.last_stolen_chunks = len(stolen)
        for chunk_id, (chunk_results, worker_metrics) in completed.items():
            if worker_metrics is not None:
                # Fold the worker's metric delta into this process.
                get_registry().merge_snapshot(worker_metrics)
            for pos, result in zip(chunk_id, chunk_results):
                results[pos] = result
                self._cache_put(tasks[pos], result)
                self._note_cost(
                    tasks[pos].scenario.fingerprint(), result.wall_time
                )

        # Retry failures deterministically in-process, chunk by chunk.
        for chunk_id, reason in failed:
            self.last_retried_chunks += 1
            _RETRIED_CHUNKS.inc()
            if reason == "timeout":
                _TIMEOUTS.inc()
            if self.max_retries < 1:
                raise RuntimeError(
                    f"sweep chunk failed and retries are disabled: "
                    f"{list(chunk_id)}"
                )
            _log.warning(
                "chunk %s %s; re-evaluating in-process",
                list(chunk_id),
                "timed out"
                if reason == "timeout"
                else "failed with the pool",
            )
            if trace.active:
                trace.event(
                    "executor.retry",
                    {
                        "positions": list(chunk_id),
                        "timeout": reason == "timeout",
                    },
                )
            for pos in chunk_id:
                if pos not in results:
                    results[pos] = self._evaluate_with_cache(tasks[pos])
