"""Process-pool sweep execution with caching, retries and warm start.

:class:`SweepExecutor` maps a list of :class:`~repro.parallel.tasks.
EvalTask` onto worker processes and returns results **in task order**
— the contract every consumer (grid search, batched SA, figure
sweeps) relies on to stay byte-compatible with serial execution.

Design points:

* **Worker warm start** — each worker runs an initializer that stores
  the sweep's scenario and, for static workloads, precomputes the flow
  arrival schedule once; every subsequent evaluation replays it into a
  fresh fabric instead of re-sampling the workload.
* **Chunked dispatch** — tasks ship in chunks (default
  ``ceil(n / (jobs * 4))``) to amortize pickling overhead while
  keeping the pool load-balanced.
* **Timeout + crashed-worker retry** — a chunk that times out or dies
  with the pool (``BrokenProcessPool``) is re-evaluated *in-process*;
  since evaluations are deterministic, the retry result is identical
  to what the worker would have produced.
* **Evaluation cache** — with a :class:`~repro.tuning.eval_cache.
  EvalCache` attached, cacheable tasks (frozen params) are looked up
  before dispatch and stored after; only misses touch the pool.

``jobs`` resolution order: explicit argument, then the ``REPRO_JOBS``
environment variable, then ``os.cpu_count()``.  ``jobs=1`` runs
everything in-process (no pool, no pickling) which is also the
fallback wherever a pool cannot be spawned.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from repro import env
from repro.parallel.tasks import (
    EvalResult,
    EvalTask,
    Schedule,
    ScenarioSpec,
    build_scenario,
    evaluate_task,
    extract_schedule,
)
from repro.telemetry import trace
from repro.telemetry.log import get_logger
from repro.telemetry.registry import get_registry
from repro.tuning.eval_cache import EvalCache

_log = get_logger("parallel.executor")

_RETRIED_CHUNKS = get_registry().counter(
    "repro_executor_retried_chunks_total",
    "Chunks re-evaluated in-process after a pool failure",
)
_TIMEOUTS = get_registry().counter(
    "repro_executor_timeouts_total", "Chunks that hit the task timeout"
)
_POOL_TASKS = get_registry().counter(
    "repro_executor_pool_tasks_total", "Tasks dispatched past the cache"
)

# Worker-global warm-start state, populated by the pool initializer.
_WORKER_FP: Optional[str] = None
_WORKER_SCHEDULE: Optional[Schedule] = None
_WORKER_NETWORK = None


def _init_worker(spec: Optional[ScenarioSpec]) -> None:
    """Pool initializer: build the scenario schedule once per worker.

    For static workloads the worker also builds one bare fabric up
    front; every evaluation then resets and reuses it instead of
    reconstructing topology (the warm-rebuild half of the warm start).
    """
    global _WORKER_FP, _WORKER_SCHEDULE, _WORKER_NETWORK
    _WORKER_NETWORK = None
    if spec is None:
        _WORKER_FP = None
        _WORKER_SCHEDULE = None
        return
    _WORKER_FP = spec.fingerprint()
    _WORKER_SCHEDULE = extract_schedule(spec)
    if _WORKER_SCHEDULE is not None:
        # Empty schedule -> fabric only; flows are replayed per task.
        _WORKER_NETWORK, _, _ = build_scenario(spec, spec.seed, [])


def _run_chunk(tasks: List[EvalTask]):
    """Worker entry point: evaluate a chunk, reusing warm-start state.

    Returns ``(results, registry_snapshot)``: the snapshot-and-reset of
    the worker's process-global metrics registry rides back with the
    results, so each chunk's metric delta is merged into the parent
    exactly once (the fork-merge half of the telemetry contract).
    """
    results = []
    for task in tasks:
        schedule = (
            _WORKER_SCHEDULE
            if _WORKER_FP is not None
            and task.scenario.fingerprint() == _WORKER_FP
            else None
        )
        network = _WORKER_NETWORK if schedule is not None else None
        results.append(evaluate_task(task, schedule, network=network))
    return results, get_registry().snapshot(reset=True)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` env > cpu count.

    Every source is clamped to ``os.cpu_count()``: evaluation workers
    are CPU-bound, so oversubscribing the machine only adds context
    switching and pool spin-up cost.  An effective count of 1 makes
    :meth:`SweepExecutor.map` fall back to serial in-process execution.
    """
    cpus = os.cpu_count() or 1
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        return min(jobs, cpus)
    from_env = env.get("REPRO_JOBS")
    if from_env is not None:
        return max(1, min(from_env, cpus))
    return cpus


class SweepExecutor:
    """Maps evaluation tasks over a process pool, in order."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[EvalCache] = None,
        chunk_size: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 1,
        keep_recordings: int = 3,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.keep_recordings = keep_recordings
        # Diagnostics from the last map() call.
        self.last_cache_hits = 0
        self.last_pool_tasks = 0
        self.last_retried_chunks = 0
        # In-process warm-start state (mirrors the pool initializer).
        self._warm_fp: Optional[str] = None
        self._warm_schedule: Optional[Schedule] = None
        self._warm_network = None

    # -- public API -----------------------------------------------------

    def map(self, tasks: Sequence[EvalTask]) -> List[EvalResult]:
        """Evaluate every task; results are ordered like ``tasks``.

        Task ``index`` fields are used for aggregation bookkeeping but
        the returned list always matches the input positionally.
        """
        tasks = list(tasks)
        self.last_cache_hits = 0
        self.last_pool_tasks = 0
        self.last_retried_chunks = 0
        if not tasks:
            return []

        # Strategy is decided by worker count and task count alone, so
        # it can be recorded up front (cache hits may later shrink the
        # pool's share of the work, but not the execution path taken).
        strategy = "serial" if self.jobs <= 1 or len(tasks) == 1 else "pool"
        with trace.span(
            "executor.map",
            {"tasks": len(tasks), "jobs": self.jobs, "strategy": strategy},
        ):
            results: Dict[int, EvalResult] = {}
            pending: List[int] = []

            # 1. Serve cache hits.
            for pos, task in enumerate(tasks):
                payload = self._cache_get(task)
                if payload is not None:
                    results[pos] = EvalResult.from_cache_payload(task, payload)
                    self.last_cache_hits += 1
                else:
                    pending.append(pos)

            # 2. Evaluate misses (pool or in-process).
            self.last_pool_tasks = len(pending)
            _POOL_TASKS.inc(len(pending))
            if pending:
                if self.jobs <= 1 or len(pending) == 1:
                    for pos in pending:
                        results[pos] = self._evaluate_with_cache(tasks[pos])
                else:
                    self._run_pool(tasks, pending, results)

        self._prune_recordings(results)
        return [results[pos] for pos in range(len(tasks))]

    # -- internals -------------------------------------------------------

    def _prune_recordings(self, results: Dict[int, EvalResult]) -> None:
        """Keep flight recordings only for the best-K candidates.

        Every pool worker records when ``REPRO_RECORD`` is inherited,
        and recordings ride back inside each ``EvalResult``; retaining
        all of them would defeat the recorder's bounded-memory goal for
        large sweeps.  Completed runs outrank aborted ones, higher
        utility wins, and the task index breaks ties deterministically.
        """
        carriers = [r for r in results.values() if r.recording is not None]
        if len(carriers) <= self.keep_recordings:
            return
        carriers.sort(key=lambda r: (r.aborted, -r.utility, r.index))
        for result in carriers[self.keep_recordings:]:
            result.recording = None

    def _cache_get(self, task: EvalTask) -> Optional[dict]:
        if self.cache is None or not task.cacheable:
            return None
        return self.cache.get(
            task.scenario.fingerprint(), task.seed, task.params
        )

    def _cache_put(self, task: EvalTask, result: EvalResult) -> None:
        if self.cache is None or not task.cacheable:
            return
        if result.aborted:
            # An aborted run's utility is a bound, not a measurement;
            # caching it would poison later full-fidelity lookups.
            return
        self.cache.put(
            task.scenario.fingerprint(),
            task.seed,
            task.params,
            result.cache_payload(),
        )

    def _warm_state(self, task: EvalTask):
        """(schedule, network) for in-process warm-start, or Nones."""
        fp = task.scenario.fingerprint()
        if fp != self._warm_fp:
            self._warm_fp = fp
            self._warm_schedule = extract_schedule(task.scenario)
            self._warm_network = None
            if self._warm_schedule is not None:
                self._warm_network, _, _ = build_scenario(
                    task.scenario, task.scenario.seed, []
                )
        return self._warm_schedule, self._warm_network

    def _evaluate_with_cache(self, task: EvalTask) -> EvalResult:
        schedule, network = self._warm_state(task)
        result = evaluate_task(task, schedule, network=network)
        self._cache_put(task, result)
        return result

    def _run_pool(
        self,
        tasks: List[EvalTask],
        pending: List[int],
        results: Dict[int, EvalResult],
    ) -> None:
        chunk = self.chunk_size or max(
            1, math.ceil(len(pending) / (self.jobs * 4))
        )
        chunks = [
            pending[i : i + chunk] for i in range(0, len(pending), chunk)
        ]
        # Warm-start workers with the dominant scenario of this sweep.
        spec = tasks[pending[0]].scenario
        failed: List[List[int]] = []
        timed_out = False
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                initializer=_init_worker,
                initargs=(spec,),
            )
            futures = [
                (c, pool.submit(_run_chunk, [tasks[pos] for pos in c]))
                for c in chunks
            ]
            for positions, future in futures:
                try:
                    chunk_results, worker_metrics = future.result(
                        timeout=self.task_timeout
                    )
                except TimeoutError:
                    timed_out = True
                    _TIMEOUTS.inc()
                    failed.append(positions)
                    continue
                except (BrokenProcessPool, OSError):
                    failed.append(positions)
                    continue
                # Fold the worker's metric delta into this process.
                get_registry().merge_snapshot(worker_metrics)
                for pos, result in zip(positions, chunk_results):
                    results[pos] = result
                    self._cache_put(tasks[pos], result)
        except (BrokenProcessPool, OSError):
            # Pool never came up (fork failure, sandboxing): run the
            # whole remainder in-process.
            failed = [[pos for c in chunks for pos in c if pos not in results]]
        finally:
            if pool is not None:
                # Don't block on a hung worker: after a timeout, cancel
                # what hasn't started and abandon the stuck process.
                pool.shutdown(wait=not timed_out, cancel_futures=True)

        # 3. Retry failures deterministically in-process.
        for positions in failed:
            self.last_retried_chunks += 1
            _RETRIED_CHUNKS.inc()
            if self.max_retries < 1:
                raise RuntimeError(
                    f"sweep chunk failed and retries are disabled: "
                    f"{positions}"
                )
            _log.warning(
                "chunk %s %s; re-evaluating in-process",
                positions,
                "timed out" if timed_out else "failed with the pool",
            )
            if trace.active:
                trace.event(
                    "executor.retry",
                    {"positions": list(positions), "timeout": timed_out},
                )
            for pos in positions:
                if pos not in results:
                    results[pos] = self._evaluate_with_cache(tasks[pos])
