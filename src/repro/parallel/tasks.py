"""Task and result types for the parallel evaluation fabric.

Everything that crosses a process boundary lives here and is a plain
picklable dataclass:

* :class:`ScenarioSpec` — a *description* of one experiment scenario
  (fabric scale, workload, duration, weights).  Workers rebuild the
  live ``Network``/workload from the spec; the spec's
  :meth:`~ScenarioSpec.fingerprint` is the cache/warm-start identity.
* :class:`EvalTask` — one unit of work: a scenario plus either a
  frozen :class:`~repro.simulator.dcqcn.DcqcnParams` (evaluated under
  a ``StaticTuner``) or a scheme name from
  ``repro.experiments.scenarios.SCHEME_FACTORIES``.
* :class:`EvalResult` — the outcome, including SHA-256 digests of the
  FCT records and interval stats so determinism across workers is
  checkable byte-for-byte.

:func:`evaluate_task` is the *single* evaluation function used by
in-process runs, pool workers, and the cache fill path — which is what
guarantees that parallel sweeps produce results identical to serial
execution.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.simulator.dcqcn import DcqcnParams
from repro.simulator.flow import FlowRecord
from repro.simulator.stats import IntervalStats
from repro.simulator.units import mb, ms
from repro.telemetry import trace
from repro.telemetry.registry import get_registry
from repro.tuning.search import StaticTuner
from repro.tuning.utility import UtilityWeights

_EVALS = get_registry().counter(
    "repro_evals_total", "Scenario evaluations run to completion"
)
_ABORTS = get_registry().counter(
    "repro_evals_aborted_total",
    "Evaluations abandoned early by the utility-bound abort rule",
)
_TASK_SECONDS = get_registry().histogram(
    "repro_task_seconds", help="Wall-clock seconds per evaluation task"
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Deterministic description of one evaluation scenario.

    ``seed`` seeds the fabric (ECN coin flips, probe peer choice);
    ``workload_seed`` seeds the traffic schedule.  Two specs with equal
    fields produce byte-identical runs.
    """

    workload: str = "hadoop"          # hadoop | alltoall | llm | influx
    scale: str = "small"
    duration: float = 0.05
    monitor_interval: float = ms(1.0)
    seed: int = 1
    workload_seed: int = 42
    load: float = 0.3                 # hadoop offered load
    workload_duration: float = 0.0    # 0 -> 0.6 * duration
    n_workers: int = 8                # alltoall / llm fan-out
    flow_size: int = mb(2.0)          # alltoall / llm flow size
    influx_start: float = 0.0         # 0 -> 0.3 * duration
    influx_duration: float = 0.0      # 0 -> 0.3 * duration
    weights: Tuple[float, float, float] = (0.2, 0.5, 0.3)
    stop_on_completion: bool = False  # alltoall: stop when all flows done

    def fingerprint(self) -> str:
        """Stable content hash identifying this scenario."""
        canonical = repr(
            tuple(
                (name, getattr(self, name))
                for name in sorted(self.__dataclass_fields__)
            )
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def utility_weights(self) -> UtilityWeights:
        return UtilityWeights(*self.weights)


@dataclass(frozen=True)
class EvalTask:
    """One independent simulation to run.

    Exactly one of ``params`` / ``scheme`` must be set.  ``seed``
    overrides the scenario's fabric seed so sweeps can hold the
    scenario constant while varying seeds (or vice versa); ``index``
    is the task's position in its sweep, used for ordered aggregation.
    """

    scenario: ScenarioSpec
    seed: int
    index: int = 0
    params: Optional[DcqcnParams] = None
    scheme: Optional[str] = None
    #: Early-abort rule (multi-fidelity evaluation).  When set, the run
    #: is abandoned once its best-achievable mean utility — assuming
    #: every remaining interval scores a perfect 1.0 — falls below this
    #: threshold.  The rule is a pure function of the task fields and
    #: the utility stream, so whether a given task aborts is
    #: deterministic and completed runs are byte-identical to runs with
    #: the threshold unset.
    abort_threshold: Optional[float] = None
    #: Fraction of the scheduled intervals that must elapse before the
    #: abort rule may fire (warm-up guard against noisy early intervals).
    abort_after_frac: float = 0.5
    #: Hybrid-engine mode for this evaluation (``off`` / ``lanes`` /
    #: ``hybrid``); ``None`` resolves ``REPRO_HYBRID_ENGINE`` at network
    #: construction.  Lives on the task, not the scenario spec, so
    #: scenario fingerprints — and therefore cache keys and warm-start
    #: identities — are unchanged for the default modes (``off`` and
    #: ``lanes`` are digest-identical, so they legitimately share cache
    #: entries; ``hybrid`` results are never cached).
    engine_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.params is None) == (self.scheme is None):
            raise ValueError("set exactly one of params / scheme")
        if not 0.0 <= self.abort_after_frac <= 1.0:
            raise ValueError("abort_after_frac must be in [0, 1]")

    @property
    def cacheable(self) -> bool:
        """Only frozen-parameter, full-fidelity evaluations are pure.

        A ``hybrid``-mode run is approximate: caching it would let a
        fluid-model utility masquerade as a packet-level measurement in
        later full-fidelity lookups (same poisoning rule as aborted
        runs).
        """
        if self.params is None:
            return False
        from repro.simulator.hybrid import resolve_hybrid_mode

        return resolve_hybrid_mode(self.engine_mode) != "hybrid"


@dataclass
class EvalResult:
    """Outcome of one evaluation (picklable, JSON-flattenable core)."""

    index: int
    seed: int
    utility: float                    # mean utility over all intervals
    utilities: List[float]
    records: List[FlowRecord]
    n_flows_total: int
    dispatches: int
    dropped_packets: int
    events: int
    wall_time: float
    worker_pid: int
    fct_digest: str
    interval_digest: str
    from_cache: bool = False
    #: True when the early-abort rule abandoned the run; ``utility`` is
    #: then an upper bound, not a measurement, and the result is never
    #: cached or allowed to become an incumbent.
    aborted: bool = False
    #: Flight-recorder snapshot (plain picklable dict) when recording
    #: was enabled in the evaluating process.  Rides the fork-merge
    #: protocol back to the parent; ``SweepExecutor`` prunes all but
    #: the best-K recordings before results reach user code.  Never
    #: part of :meth:`cache_payload` — recordings are too large to
    #: persist per cache entry, and digests already identify the run.
    recording: Optional[dict] = None

    def mean_utility(self, skip: int = 0) -> float:
        values = self.utilities[skip:]
        return sum(values) / len(values) if values else 0.0

    def cache_payload(self) -> dict:
        """The JSON-safe slice of the result worth persisting."""
        return {
            "utility": self.utility,
            "utilities": list(self.utilities),
            "n_flows_total": self.n_flows_total,
            "dispatches": self.dispatches,
            "dropped_packets": self.dropped_packets,
            "events": self.events,
            "fct_digest": self.fct_digest,
            "interval_digest": self.interval_digest,
        }

    @classmethod
    def from_cache_payload(cls, task: "EvalTask", payload: dict) -> "EvalResult":
        return cls(
            index=task.index,
            seed=task.seed,
            utility=payload["utility"],
            utilities=list(payload["utilities"]),
            records=[],  # not persisted; digests identify the run
            n_flows_total=payload["n_flows_total"],
            dispatches=payload["dispatches"],
            dropped_packets=payload["dropped_packets"],
            events=payload["events"],
            wall_time=0.0,
            worker_pid=os.getpid(),
            fct_digest=payload["fct_digest"],
            interval_digest=payload["interval_digest"],
            from_cache=True,
        )


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


def fct_digest(records: List[FlowRecord]) -> str:
    """SHA-256 over the byte-exact FCT record stream."""
    h = hashlib.sha256()
    for r in records:
        h.update(
            f"{r.flow_id},{r.src},{r.dst},{r.size},"
            f"{r.start_time!r},{r.finish_time!r},{r.tag}\n".encode()
        )
    return h.hexdigest()


def interval_digest(intervals: List[IntervalStats]) -> str:
    """SHA-256 over the byte-exact interval stat stream."""
    h = hashlib.sha256()
    for s in intervals:
        flow_bytes = ",".join(
            f"{k}:{v}" for k, v in sorted(s.flow_bytes.items())
        )
        h.update(
            f"{s.t_start!r},{s.t_end!r},{s.throughput_util!r},{s.norm_rtt!r},"
            f"{s.pfc_ok!r},{s.mean_rtt!r},{s.rtt_samples},{s.pause_fraction!r},"
            f"{s.active_uplinks},{s.total_tx_bytes},{s.dropped_packets},"
            f"[{flow_bytes}]\n".encode()
        )
    return h.hexdigest()


def derive_task_seed(base_seed: int, index: int) -> int:
    """Deterministic, process-independent per-task seed.

    Hash-based (not ``hash()``, which is salted per process) so a task
    list built in the parent and a retry built in a worker agree.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Scenario construction and evaluation
# ---------------------------------------------------------------------------

#: Static flow schedule: (src, dst, size, start_time, tag) tuples.
Schedule = List[Tuple[int, int, int, float, str]]


def extract_schedule(spec: ScenarioSpec) -> Optional[Schedule]:
    """Precompute the flow arrival schedule for *static* workloads.

    Hadoop and one-shot alltoall pre-schedule every arrival at install
    time, so the schedule can be generated once per worker and replayed
    into each fresh fabric — the pool's warm start.  Reactive workloads
    (llm, influx) schedule future flows from completion callbacks and
    return None (rebuilt per evaluation).
    """
    if spec.workload not in ("hadoop", "alltoall", "incast"):
        return None
    if spec.workload == "alltoall" and spec.stop_on_completion:
        return None  # stop_when needs the live workload object
    network, _workload, _stop = build_scenario(spec, spec.seed)
    return [
        (f.src, f.dst, f.size, f.start_time, f.tag)
        for f in network.flows.values()
    ]


def expected_qp_count(
    spec: ScenarioSpec, schedule: Optional[Schedule] = None
) -> Optional[int]:
    """Estimated concurrent QP (flow) population of one evaluation.

    Used to decide whether the vectorized lane bank is worth engaging
    (:func:`repro.simulator.hybrid.lanes_floor`).  A precomputed
    schedule gives the exact flow count; fan-out workloads are
    estimated from their worker count; open-loop arrival workloads
    return None (population unknown, keep the requested mode).
    """
    if schedule is not None:
        return len(schedule)
    if spec.workload in ("alltoall", "llm"):
        return spec.n_workers * max(1, spec.n_workers - 1)
    if spec.workload == "incast":
        return spec.n_workers
    return None


def warm_engine_mode(
    spec: ScenarioSpec, schedule: Optional[Schedule]
) -> str:
    """Engine mode a warm fabric for ``spec`` should be built with.

    Matches what :func:`evaluate_task` resolves for tasks that do not
    pin ``engine_mode`` — including the lanes→off QP floor — so warm
    networks survive the mode-mismatch guard instead of being rebuilt
    on every task.
    """
    from repro.simulator.hybrid import lanes_floor, resolve_hybrid_mode

    return lanes_floor(
        resolve_hybrid_mode(None), expected_qp_count(spec, schedule)
    )


def build_scenario(
    spec: ScenarioSpec,
    seed: int,
    schedule: Optional[Schedule] = None,
    engine_mode: Optional[str] = None,
):
    """Fresh ``(network, workload, stop_when)`` for one evaluation.

    ``schedule`` (from :func:`extract_schedule`) replays a precomputed
    arrival list instead of re-sampling the workload; flow ids and
    event ordering are identical either way.  ``engine_mode`` selects
    the hybrid flow/packet engine (``None`` resolves the env default).
    """
    # Imported here: experiments.scenarios pulls in the full scheme
    # registry, which itself imports tuning modules.
    from repro.experiments.scenarios import (
        install_hadoop,
        install_influx,
        install_llm,
        make_network,
    )
    from repro.workloads import AllToAllOnce, IncastWorkload

    network = make_network(spec.scale, seed=seed, engine_mode=engine_mode)
    stop_when = None

    if schedule is not None:
        for src, dst, size, start, tag in schedule:
            network.add_flow(src, dst, size, start, tag=tag)
        return network, None, None

    if spec.workload == "hadoop":
        workload = install_hadoop(
            network,
            load=spec.load,
            duration=spec.workload_duration or spec.duration * 0.6,
            seed=spec.workload_seed,
        )
    elif spec.workload == "alltoall":
        workload = AllToAllOnce(
            n_workers=spec.n_workers, flow_size=spec.flow_size
        )
        workload.install(network)
        if spec.stop_on_completion:
            stop_when = workload.all_completed
    elif spec.workload == "incast":
        # Fan-in is capped by the fabric: at most n_hosts - 1 senders
        # can converge on the receiver.
        last_sender = min(spec.n_workers, len(network.hosts) - 1)
        workload = IncastWorkload(
            receiver=0,
            senders=list(range(1, last_sender + 1)),
            flow_size=spec.flow_size,
        )
        workload.install(network)
    elif spec.workload == "llm":
        workload = install_llm(
            network, n_workers=spec.n_workers, flow_size=spec.flow_size
        )
    elif spec.workload == "influx":
        workload = install_influx(
            network,
            influx_start=spec.influx_start or spec.duration * 0.3,
            influx_duration=spec.influx_duration or spec.duration * 0.3,
            seed=spec.workload_seed,
        )
    else:
        raise ValueError(f"unknown workload {spec.workload!r}")
    return network, workload, stop_when


def scheduled_interval_count(spec: ScenarioSpec) -> int:
    """Monitor intervals a full run of ``spec`` closes (runner loop)."""
    return max(1, math.ceil(spec.duration / spec.monitor_interval - 1e-9))


def make_abort_check(task: EvalTask):
    """Deterministic early-abort predicate for ``task``, or None.

    After interval ``k`` of ``n`` with utility sum ``S``, the best
    achievable mean utility is ``(S + (n - k)) / n`` — every remaining
    interval scoring a perfect 1.0.  Once the warm-up fraction has
    elapsed, a run whose bound is below ``task.abort_threshold`` cannot
    beat the incumbent and is abandoned.  The predicate depends only on
    the task fields and the utility stream, so abort decisions are
    reproducible across workers and runs.
    """
    threshold = task.abort_threshold
    if threshold is None:
        return None
    n_total = scheduled_interval_count(task.scenario)
    min_k = max(1, math.ceil(task.abort_after_frac * n_total - 1e-9))

    def abort_check(utilities: List[float]) -> bool:
        k = len(utilities)
        if k < min_k or k >= n_total:
            return False
        bound = (sum(utilities) + (n_total - k)) / n_total
        return bound < threshold

    return abort_check


def evaluate_task(
    task: EvalTask,
    schedule: Optional[Schedule] = None,
    network=None,
) -> EvalResult:
    """Run one task to completion and summarize it.

    Pure in ``task`` (given a fixed code version): calling it twice, in
    any process, yields identical digests.

    ``network`` (optional) is a warm fabric built earlier from the same
    scenario spec: it is :meth:`~repro.simulator.network.Network.reset`
    and the precomputed ``schedule`` replayed into it, skipping
    topology construction entirely.  Only valid together with a
    ``schedule`` (static workloads); the reset path is digest-identical
    to a fresh build.
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenarios import make_tuner
    from repro.simulator.hybrid import lanes_floor, resolve_hybrid_mode

    spec = task.scenario
    stop_when = None
    mode = resolve_hybrid_mode(task.engine_mode)
    if task.engine_mode is None:
        # The QP floor only overrides the *environment* default: a task
        # that pins its engine mode (fidelity rungs, gating tests) said
        # exactly what it wants and gets it.
        mode = lanes_floor(mode, expected_qp_count(spec, schedule))
    if network is not None and network.hybrid_mode != mode:
        # Warm fabrics are keyed by scenario fingerprint only; a task
        # asking for a different engine mode (e.g. a hybrid screening
        # rung feeding a full-DES confirmation) must not inherit one
        # built for another mode.
        network = None
    if network is not None:
        if schedule is None:
            raise ValueError("warm network reuse requires a precomputed schedule")
        network.reset(task.seed)
        for src, dst, size, start, tag in schedule:
            network.add_flow(src, dst, size, start, tag=tag)
    else:
        network, _workload, stop_when = build_scenario(
            spec, task.seed, schedule, engine_mode=mode
        )
    if task.params is not None:
        tuner = StaticTuner(task.params, "sweep-point")
    else:
        tuner = make_tuner(task.scheme)
    runner = ExperimentRunner(
        network,
        tuner,
        monitor_interval=spec.monitor_interval,
        weights=spec.utility_weights(),
    )
    abort_check = make_abort_check(task)
    t0 = time.perf_counter()
    with trace.span(
        "eval.task",
        {
            "seed": task.seed,
            "kind": task.scheme or "params",
            "index": task.index,
            "scenario": spec.fingerprint(),
        },
    ):
        result = runner.run(
            spec.duration, stop_when=stop_when, abort_check=abort_check
        )
    wall = time.perf_counter() - t0
    _TASK_SECONDS.observe(wall)
    utilities = list(result.utilities)
    if result.aborted:
        _ABORTS.inc()
        # Report the optimistic bound: the true utility of the
        # abandoned candidate is at most this, and by construction it
        # is below the incumbent's threshold.
        n_total = scheduled_interval_count(spec)
        utility_value = (sum(utilities) + (n_total - len(utilities))) / n_total
        if trace.active:
            trace.event(
                "eval.abort",
                {
                    "index": task.index,
                    "seed": task.seed,
                    "intervals_run": len(utilities),
                    "intervals_total": n_total,
                    "bound": utility_value,
                    "threshold": task.abort_threshold,
                },
            )
    else:
        _EVALS.inc()
        utility_value = sum(utilities) / len(utilities) if utilities else 0.0
    return EvalResult(
        index=task.index,
        seed=task.seed,
        utility=utility_value,
        utilities=utilities,
        records=list(result.records),
        n_flows_total=len(network.flows),
        dispatches=result.dispatches,
        dropped_packets=result.dropped_packets,
        events=result.events,
        wall_time=wall,
        worker_pid=os.getpid(),
        fct_digest=fct_digest(result.records),
        interval_digest=interval_digest(result.intervals),
        aborted=result.aborted,
        recording=result.recording,
    )
