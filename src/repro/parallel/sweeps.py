"""Parallel sweep drivers: grids, parameter sets and scheme panels.

These helpers used to live beside their result types (``tuning.grid``)
and the benchmark harness (``experiments.runner``), which forced both
of those lower layers to lazily import the parallel fabric — exactly
the upward edges RL008 forbids.  They are *drivers*: they own an
executor, fan tasks out over the pool, and hand back the lower
layers' own result types, so they belong up here in the parallel
layer where the dependency arrow points down.

* :func:`offline_grid_search_parallel` — the multi-fidelity grid sweep
  (fluid screen / hybrid rung / full DES with early abort).
* :func:`run_parameter_sweep` — frozen parameter sets on one scenario.
* :func:`run_scheme_sweep` — named tuning schemes over seeds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.executor import SweepExecutor
from repro.parallel.tasks import EvalTask
from repro.telemetry import trace
from repro.tuning.fidelity import FidelityConfig, SurrogateScreen
from repro.tuning.grid import DEFAULT_GRID, GridPointResult, expand_grid


def offline_grid_search_parallel(
    scenario,
    grid: Optional[Dict[str, Sequence[float]]] = None,
    jobs: Optional[int] = None,
    cache=None,
    executor=None,
    skip_intervals: int = 0,
    fidelity=None,
    strategy: Optional[str] = None,
) -> Tuple[GridPointResult, List[GridPointResult]]:
    """Offline sweep over a :class:`~repro.parallel.tasks.ScenarioSpec`.

    Same contract as :func:`~repro.tuning.grid.offline_grid_search` —
    ``(best, results)`` with results in grid order — but each point is
    a self-contained :class:`~repro.parallel.tasks.EvalTask`, so the
    sweep fans out over a process pool and reuses the evaluation cache
    across repeated sweeps.  With ``jobs=1`` the results are
    identical, just serial.

    ``fidelity`` (a :class:`~repro.tuning.fidelity.FidelityConfig`)
    optionally thins the sweep: in ``screen`` mode the fluid surrogate
    scores every point and only the top ``1/screen_ratio`` fraction
    runs the DES (the rest report calibrated surrogate utilities,
    marked ``fidelity="fluid"``); ``surrogate`` mode DES-confirms only
    the fluid-best point.  Early abort uses the first completed DES
    point as the incumbent.  The returned ``best`` is always a point
    measured (completely) by the DES.
    """
    points = expand_grid(grid or DEFAULT_GRID)
    executor = executor or SweepExecutor(
        jobs=jobs, cache=cache, strategy=strategy
    )
    fidelity = fidelity or FidelityConfig()

    with trace.span(
        "sweep.grid", {"points": len(points), "fidelity": fidelity.mode}
    ):
        if fidelity.mode == "full" and not fidelity.early_abort:
            tasks = [
                EvalTask(scenario=scenario, seed=scenario.seed, params=p, index=i)
                for i, p in enumerate(points)
            ]
            evals = executor.map(tasks)
            results = [
                GridPointResult(
                    params,
                    res.mean_utility(skip=skip_intervals),
                    recording=res.recording,
                )
                for params, res in zip(points, evals)
            ]
            best = max(results, key=lambda r: r.utility)
            return best, results

        if fidelity.mode == "hybrid":
            # The rung between the fluid surrogate and the full DES:
            # every point runs the hybrid flow/packet engine (fluid
            # elephants, packet-level mice/queues/ECN), then the argmax
            # is re-measured at full fidelity so the reported best is a
            # real DES utility.  Hybrid results are never cached.
            hybrid_evals = executor.map(
                [
                    EvalTask(
                        scenario=scenario,
                        seed=scenario.seed,
                        params=p,
                        index=i,
                        engine_mode="hybrid",
                    )
                    for i, p in enumerate(points)
                ]
            )
            winner = max(
                range(len(points)),
                key=lambda i: (
                    hybrid_evals[i].mean_utility(skip=skip_intervals),
                    -i,
                ),
            )
            # engine_mode=None honours a session-wide `lanes` setting
            # (bit-identical to `off`), so the confirmation stays full
            # fidelity either way.
            confirm = executor.map(
                [
                    EvalTask(
                        scenario=scenario,
                        seed=scenario.seed,
                        params=points[winner],
                        index=winner,
                    )
                ]
            )[0]
            results = [
                GridPointResult(
                    params,
                    res.mean_utility(skip=skip_intervals),
                    fidelity="hybrid",
                    recording=res.recording,
                )
                for params, res in zip(points, hybrid_evals)
            ]
            results[winner] = GridPointResult(
                points[winner],
                confirm.mean_utility(skip=skip_intervals),
                recording=confirm.recording,
            )
            return results[winner], results

        screen = (
            SurrogateScreen(scenario, fidelity)
            if fidelity.mode in ("screen", "surrogate")
            else None
        )
        if fidelity.mode == "surrogate":
            scores = screen.score(points)
            des_indices = [max(range(len(points)), key=lambda i: (scores[i], -i))]
        elif fidelity.mode == "screen":
            keep = max(1, math.ceil(len(points) / fidelity.screen_ratio))
            des_indices, scores = screen.select(points, keep)
        else:  # full + early abort
            scores = None
            des_indices = list(range(len(points)))

        # Establish the abort incumbent with one untimed full evaluation:
        # the fluid-best DES candidate (or simply the first point).
        if scores is not None:
            first = max(des_indices, key=lambda i: (scores[i], -i))
        else:
            first = des_indices[0]
        rest = [i for i in des_indices if i != first]

        def _task(i: int, threshold) -> EvalTask:
            return EvalTask(
                scenario=scenario,
                seed=scenario.seed,
                params=points[i],
                index=i,
                abort_threshold=threshold,
                abort_after_frac=fidelity.abort_after_frac,
            )

        des_results = {first: executor.map([_task(first, None)])[0]}
        threshold = fidelity.abort_threshold(des_results[first].utility)
        if rest:
            for i, res in zip(rest, executor.map([_task(i, threshold) for i in rest])):
                des_results[i] = res

        if screen is not None:
            for i in sorted(des_results):
                res = des_results[i]
                if not res.aborted:
                    screen.observe(scores[i], res.utility)

        results = []
        for i, params in enumerate(points):
            res = des_results.get(i)
            if res is None:
                results.append(
                    GridPointResult(
                        params, screen.calibration.apply(scores[i]), fidelity="fluid"
                    )
                )
            elif res.aborted:
                results.append(
                    GridPointResult(
                        params, res.utility, fidelity="aborted",
                        recording=res.recording,
                    )
                )
            else:
                results.append(
                    GridPointResult(
                        params,
                        res.mean_utility(skip=skip_intervals),
                        recording=res.recording,
                    )
                )
        best = max(
            (r for r in results if r.fidelity == "des"), key=lambda r: r.utility
        )
        return best, results


def run_parameter_sweep(
    scenario,
    param_sets,
    jobs=None,
    cache=None,
    executor=None,
):
    """Evaluate many frozen parameter sets on one scenario, in order.

    ``scenario`` is a :class:`~repro.parallel.tasks.ScenarioSpec`;
    returns one :class:`~repro.parallel.tasks.EvalResult` per entry of
    ``param_sets``, positionally aligned.  With ``jobs > 1`` the points
    run on a process pool; results are identical to serial execution.
    """
    executor = executor or SweepExecutor(jobs=jobs, cache=cache)
    tasks = [
        EvalTask(scenario=scenario, seed=scenario.seed, params=p, index=i)
        for i, p in enumerate(param_sets)
    ]
    return executor.map(tasks)


def run_scheme_sweep(
    scenario,
    schemes,
    seeds=None,
    jobs=None,
    executor=None,
):
    """Evaluate named tuning schemes, optionally over several seeds.

    Returns ``{scheme: [EvalResult, ...]}`` with one result per seed
    (default: the scenario's own seed), ordered like ``seeds``.
    Scheme runs are stateful (the tuner adapts online) so they bypass
    the evaluation cache, but still parallelize.
    """
    executor = executor or SweepExecutor(jobs=jobs)
    seeds = list(seeds) if seeds is not None else [scenario.seed]
    schemes = list(schemes)
    tasks = [
        EvalTask(scenario=scenario, seed=seed, scheme=scheme, index=i)
        for i, (scheme, seed) in enumerate(
            (s, seed) for s in schemes for seed in seeds
        )
    ]
    results = executor.map(tasks)
    grouped = {}
    for task, result in zip(tasks, results):
        grouped.setdefault(task.scheme, []).append(result)
    return grouped
