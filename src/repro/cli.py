"""Command-line interface: run scenarios without writing a script.

::

    python -m repro list-schemes
    python -m repro run --scheme paraleon --workload hadoop --duration 0.1
    python -m repro compare --workload hadoop --schemes default,expert,paraleon
    python -m repro pfc-plan --scale medium --buffer-mb 2

Every command prints a human-readable summary; ``run``/``compare``
report utility components and FCT slowdowns via the same machinery the
benchmarks use, so CLI results and benchmark results agree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.fct import FctStats
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import (
    SCHEME_FACTORIES,
    SPECS,
    install_hadoop,
    install_influx,
    install_llm,
    make_network,
    make_tuner,
)
from repro.simulator.units import mb, ms


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=["hadoop", "llm", "influx"],
        default="hadoop",
        help="traffic scenario (default: hadoop)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SPECS),
        default="medium",
        help="fabric size class (default: medium, 16 hosts)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--duration", type=float, default=0.1,
        help="simulated seconds to run (default: 0.1)",
    )
    parser.add_argument(
        "--load", type=float, default=0.3,
        help="offered load for the hadoop workload (default: 0.3)",
    )
    parser.add_argument(
        "--monitor-interval-ms", type=float, default=1.0,
        help="monitor interval in milliseconds (default: 1.0)",
    )


def _install(args, network):
    if args.workload == "hadoop":
        return install_hadoop(
            network, load=args.load,
            duration=args.duration * 0.6, seed=args.seed,
        )
    if args.workload == "llm":
        return install_llm(network, n_workers=8, flow_size=mb(2.0))
    return install_influx(
        network,
        influx_start=args.duration * 0.3,
        influx_duration=args.duration * 0.3,
        seed=args.seed,
    )


def _run_one(scheme: str, args):
    network = make_network(args.scale, seed=args.seed)
    _install(args, network)
    runner = ExperimentRunner(
        network, make_tuner(scheme),
        monitor_interval=ms(args.monitor_interval_ms),
    )
    result = runner.run(args.duration)
    return network, result


def cmd_list_schemes(_args) -> int:
    print("available tuning schemes:")
    for name in sorted(SCHEME_FACTORIES):
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    network, result = _run_one(args.scheme, args)
    print(f"scheme          : {result.tuner_name}")
    print(f"fabric          : {args.scale} ({network.spec.n_hosts} hosts)")
    print(f"flows completed : {len(result.records)} / {len(network.flows)}")
    print(f"mean utility    : {result.mean_utility(skip=5):.4f}")
    print(f"param dispatches: {result.dispatches}")
    print(f"dropped packets : {result.dropped_packets}")
    if result.records:
        stats = FctStats.compute(args.scheme, result.records, network.spec)
        print(f"avg FCT slowdown: {stats.overall_avg:.2f} "
              f"(p99.9 {stats.overall_p999:.1f})")
    return 0


def cmd_compare(args) -> int:
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in SCHEME_FACTORIES]
    if unknown:
        print(f"unknown schemes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    rows = []
    for scheme in schemes:
        network, result = _run_one(scheme, args)
        row = [result.tuner_name, f"{result.mean_utility(skip=5):.4f}"]
        if result.records:
            stats = FctStats.compute(scheme, result.records, network.spec)
            row.append(f"{stats.overall_avg:.2f}")
        else:
            row.append("-")
        row.append(str(result.dispatches))
        rows.append(row)
    print(
        format_table(
            ["scheme", "mean utility", "avg FCT slowdown", "dispatches"],
            rows,
            title=f"{args.workload} @ {args.scale}, {args.duration}s",
        )
    )
    return 0


def cmd_pfc_plan(args) -> int:
    from repro.simulator.pfc_planning import min_buffer_for_alpha, plan_pfc

    spec = SPECS[args.scale]
    buffer_bytes = int(args.buffer_mb * 1e6)
    plan = plan_pfc(spec, buffer_bytes)
    print(
        f"fabric {args.scale}: {spec.n_hosts} hosts at "
        f"{spec.host_rate_bps / 1e9:.0f} Gbps, "
        f"{spec.prop_delay_s * 1e6:.1f} us wires"
    )
    print(f"shared buffer        : {buffer_bytes / 1e6:.2f} MB")
    print(f"PFC headroom per port: {plan.headroom_per_port} B")
    print(f"planned alpha        : {plan.alpha:.4f} "
          f"(operational cap 1/8 = 0.125)")
    print(
        f"min lossless buffer at alpha=1/8: "
        f"{min_buffer_for_alpha(spec) / 1e6:.2f} MB"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Paraleon reproduction: run DCQCN tuning scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schemes", help="list tuning schemes").set_defaults(
        func=cmd_list_schemes
    )

    run_parser = sub.add_parser("run", help="run one scheme on a scenario")
    run_parser.add_argument(
        "--scheme", default="paraleon", choices=sorted(SCHEME_FACTORIES)
    )
    _add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    cmp_parser = sub.add_parser("compare", help="run several schemes")
    cmp_parser.add_argument(
        "--schemes", default="default,expert,paraleon",
        help="comma-separated scheme list",
    )
    _add_common(cmp_parser)
    cmp_parser.set_defaults(func=cmd_compare)

    pfc_parser = sub.add_parser(
        "pfc-plan", help="precompute the stable PFC alpha for a fabric"
    )
    pfc_parser.add_argument("--scale", choices=sorted(SPECS), default="medium")
    pfc_parser.add_argument("--buffer-mb", type=float, default=2.0)
    pfc_parser.set_defaults(func=cmd_pfc_plan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
