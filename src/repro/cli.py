"""Command-line interface: run scenarios without writing a script.

::

    python -m repro list-schemes
    python -m repro run --scheme paraleon --workload hadoop --duration 0.1
    python -m repro run --scheme paraleon --jobs 4 --trace t.jsonl
    python -m repro compare --workload hadoop --schemes default,expert,paraleon
    python -m repro sweep --workload hadoop --jobs 4
    python -m repro pfc-plan --scale medium --buffer-mb 2
    python -m repro telemetry t.jsonl            # summarize one trace
    python -m repro telemetry a.jsonl b.jsonl    # trace-diff two runs
    python -m repro telemetry --validate t.jsonl # schema-check every line
    python -m repro run --record r.json ...      # flight-record a run
    python -m repro report r.json --out r.html   # render the run report
    python -m repro bench trend                  # deltas across BENCH_*.json
    python -m repro env                          # list REPRO_* variables
    python -m repro env --markdown               # README env-var table

Every command prints a human-readable summary; ``run``/``compare``
report utility components and FCT slowdowns via the same machinery the
benchmarks use, so CLI results and benchmark results agree.  All
evaluation commands route through the parallel fabric
(:mod:`repro.parallel`): ``--jobs N`` fans independent runs out over N
worker processes (default: ``REPRO_JOBS`` env or the CPU count) with
results identical to ``--jobs 1``; ``--no-cache`` bypasses the
persistent evaluation cache under ``.repro_cache/``.

Output discipline (see :mod:`repro.telemetry.log`): the *product* of a
command goes to **stdout** via :func:`~repro.telemetry.log.echo` so it
pipes cleanly; diagnostics and usage errors go to **stderr** through
the ``repro`` logger, leveled by ``REPRO_LOG_LEVEL``.  ``--trace PATH``
(or ``REPRO_TRACE=PATH``) records a structured JSONL trace of the run
— engine intervals, FSD uploads, KL decisions, SA steps, cache and
executor activity — which ``python -m repro telemetry`` analyzes.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.experiments.fct import FctStats
from repro.experiments.report import format_table
from repro.experiments.scenarios import SCHEME_FACTORIES, SPECS, make_tuner
from repro.parallel import EvalTask, ScenarioSpec, SweepExecutor
from repro.simulator.units import ms
from repro.telemetry import recorder, trace
from repro.telemetry.log import echo, get_logger
from repro.tuning.eval_cache import EvalCache, default_cache

_log = get_logger("cli")


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=["hadoop", "llm", "influx", "incast"],
        default="hadoop",
        help="traffic scenario (default: hadoop)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SPECS),
        default="medium",
        help="fabric size class (default: medium, 16 hosts)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--duration", type=float, default=0.1,
        help="simulated seconds to run (default: 0.1)",
    )
    parser.add_argument(
        "--load", type=float, default=0.3,
        help="offered load for the hadoop workload (default: 0.3)",
    )
    parser.add_argument(
        "--monitor-interval-ms", type=float, default=1.0,
        help="monitor interval in milliseconds (default: 1.0)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for independent runs "
             "(default: REPRO_JOBS env, then CPU count)",
    )
    parser.add_argument(
        "--strategy",
        choices=["auto", "process", "thread", "inline"],
        default=None,
        help="parallel eval strategy: auto measures per-task cost and "
             "picks, process = persistent worker pool with "
             "shared-memory transport, thread, inline; results are "
             "digest-identical across strategies (default: "
             "REPRO_EXECUTOR_STRATEGY env, auto when unset)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent evaluation cache (.repro_cache/)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append a structured JSONL trace of this run to PATH "
             "(same as REPRO_TRACE=PATH)",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="write a flight-recorder snapshot (queue depth, DCQCN "
             "rate/alpha, PFC counters, flow FCTs) to PATH; render it "
             "with `python -m repro report` (same as REPRO_RECORD=PATH)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="capture a cProfile of this command to PATH "
             "(inspect with `python -m pstats PATH`)",
    )
    parser.add_argument(
        "--batched-monitor",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="vectorized monitoring data plane: buffer sketch "
             "observations and process them in batches "
             "(default: REPRO_BATCHED_MONITOR env, on when unset; "
             "results are bit-identical either way)",
    )
    parser.add_argument(
        "--hybrid-engine",
        choices=["off", "lanes", "hybrid"],
        default=None,
        metavar="MODE",
        help="hybrid flow/packet engine: off = pure DES, lanes = "
             "vectorized DCQCN timer lanes (bit-identical, faster), "
             "hybrid = fluid fast path for elephant flows (fastest, "
             "approximate) (default: REPRO_HYBRID_ENGINE env, off "
             "when unset)",
    )


def _make_spec(args) -> ScenarioSpec:
    """The CLI scenario as a picklable spec (same knobs as before)."""
    return ScenarioSpec(
        workload=args.workload,
        scale=args.scale,
        duration=args.duration,
        monitor_interval=ms(args.monitor_interval_ms),
        seed=args.seed,
        workload_seed=args.seed,
        load=args.load,
    )


def _make_executor(args) -> tuple:
    """``(executor, cache)`` honoring ``--jobs``/``--strategy``/``--no-cache``."""
    cache: Optional[EvalCache] = default_cache(enabled=not args.no_cache)
    executor = SweepExecutor(
        jobs=args.jobs, cache=cache, strategy=args.strategy
    )
    return executor, cache


def cmd_list_schemes(_args) -> int:
    echo("available tuning schemes:")
    for name in sorted(SCHEME_FACTORIES):
        echo(f"  {name}")
    return 0


def cmd_run(args) -> int:
    spec = _make_spec(args)
    executor, _cache = _make_executor(args)
    result = executor.map(
        [EvalTask(scenario=spec, seed=args.seed, scheme=args.scheme)]
    )[0]
    fabric = SPECS[args.scale]
    echo(f"scheme          : {make_tuner(args.scheme).name}")
    echo(f"fabric          : {args.scale} ({fabric.n_hosts} hosts)")
    echo(f"flows completed : {len(result.records)} / {result.n_flows_total}")
    echo(f"mean utility    : {result.mean_utility(skip=5):.4f}")
    echo(f"param dispatches: {result.dispatches}")
    echo(f"dropped packets : {result.dropped_packets}")
    if result.records:
        stats = FctStats.compute(args.scheme, result.records, fabric)
        echo(f"avg FCT slowdown: {stats.overall_avg:.2f} "
             f"(p99.9 {stats.overall_p999:.1f})")
    if trace.active:
        echo(f"trace           : {trace.trace_path()}")
    if recorder.active and result.recording is not None:
        path = recorder.write_snapshot(result.recording)
        echo(f"recording       : {path}")
    return 0


def cmd_compare(args) -> int:
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in SCHEME_FACTORIES]
    if unknown:
        _log.error("unknown schemes: %s", ", ".join(unknown))
        return 2
    spec = _make_spec(args)
    executor, _cache = _make_executor(args)
    tasks = [
        EvalTask(scenario=spec, seed=args.seed, scheme=scheme, index=i)
        for i, scheme in enumerate(schemes)
    ]
    results = executor.map(tasks)
    fabric = SPECS[args.scale]
    rows = []
    for scheme, result in zip(schemes, results):
        row = [make_tuner(scheme).name, f"{result.mean_utility(skip=5):.4f}"]
        if result.records:
            stats = FctStats.compute(scheme, result.records, fabric)
            row.append(f"{stats.overall_avg:.2f}")
        else:
            row.append("-")
        row.append(str(result.dispatches))
        rows.append(row)
    echo(
        format_table(
            ["scheme", "mean utility", "avg FCT slowdown", "dispatches"],
            rows,
            title=f"{args.workload} @ {args.scale}, {args.duration}s",
        )
    )
    return 0


def cmd_sweep(args) -> int:
    from repro.parallel.sweeps import offline_grid_search_parallel
    from repro.tuning.fidelity import FidelityConfig
    from repro.tuning.grid import DEFAULT_GRID

    spec = _make_spec(args)
    executor, cache = _make_executor(args)
    fidelity = FidelityConfig(
        mode=args.fidelity,
        screen_ratio=args.screen_ratio,
        early_abort=args.early_abort,
    )
    t0 = time.perf_counter()
    best, results = offline_grid_search_parallel(
        spec,
        DEFAULT_GRID,
        executor=executor,
        skip_intervals=args.skip,
        fidelity=fidelity,
    )
    wall = time.perf_counter() - t0
    des_points = sum(1 for r in results if r.fidelity == "des")
    aborted = sum(1 for r in results if r.fidelity == "aborted")
    hybrid = sum(1 for r in results if r.fidelity == "hybrid")
    echo(f"grid points     : {len(results)}")
    echo(f"fidelity        : {fidelity.mode} "
         f"(DES {des_points}, aborted {aborted}, hybrid {hybrid}, "
         f"fluid {len(results) - des_points - aborted - hybrid})")
    echo(f"jobs            : {executor.jobs}")
    echo(f"strategy        : {executor.strategy}"
         + (f" -> {executor.last_strategy}"
            if executor.last_strategy
            and executor.last_strategy != executor.strategy else ""))
    echo(f"wall time       : {wall:.2f} s")
    if cache is not None:
        stats = cache.stats()
        echo(f"cache           : {stats['hits']} hits / "
             f"{stats['misses']} misses ({stats['entries']} entries)")
        cache.save()
    echo(f"best utility    : {best.utility:.4f}")
    echo("best parameters :")
    for name, value in sorted(best.params.as_dict().items()):
        echo(f"  {name:28s} = {value!r}")
    if recorder.active and best.recording is not None:
        # The executor's best-K pruning keeps the winner's recording;
        # writing it makes "why did the winner win" inspectable.
        path = recorder.write_snapshot(best.recording)
        echo(f"best recording  : {path}")
    return 0


def cmd_controlplane(args) -> int:
    import json

    from repro.controlplane.service import (
        ControlPlaneConfig,
        ControlPlaneService,
    )
    from repro.controlplane.topology import ShardTopology
    from repro.controlplane.traffic import (
        TenantProfile,
        TrafficConfig,
        TrafficShift,
    )

    try:
        topology = ShardTopology(
            n_shards=args.shards,
            agents_per_shard=args.agents_per_shard,
            agents_per_rack=args.agents_per_rack,
            racks_per_pod=args.racks_per_pod,
            n_tenants=args.tenants,
        )
    except ValueError as exc:
        _log.error("bad topology: %s", exc)
        return 2
    shifts = ()
    if not args.no_shift:
        shift_interval = (
            args.shift_interval
            if args.shift_interval is not None
            else max(1, args.intervals // 3)
        )
        shifts = (
            TrafficShift(
                tenant=args.shift_tenant,
                interval=shift_interval,
                profile=TenantProfile(
                    elephant_fraction=args.shift_elephant,
                    pe_fraction=0.10,
                ),
            ),
        )
    traffic = TrafficConfig(seed=args.seed, shifts=shifts)
    config = ControlPlaneConfig(
        topology=topology,
        traffic=traffic,
        intervals=args.intervals,
        theta=args.theta,
        strategy=args.strategy,
        jobs=args.jobs or 2,
    )
    executor = SweepExecutor(
        jobs=args.jobs,
        cache=default_cache(enabled=not args.no_cache),
        strategy="process" if args.strategy == "pool" else "inline",
    )
    t0 = time.perf_counter()
    result = ControlPlaneService(config, executor=executor).run()
    wall = time.perf_counter() - t0
    echo(f"topology        : {topology.n_shards} shards x "
         f"{topology.agents_per_shard} agents = {topology.n_agents} ToRs, "
         f"{topology.n_racks} racks, {topology.n_pods} pods, "
         f"{topology.n_tenants} tenants")
    echo(f"strategy        : {config.strategy}")
    echo(f"intervals       : {args.intervals} ({wall:.2f} s wall)")
    triggers = [t for o in result.outcomes for t in o.triggers]
    echo(f"triggers fired  : "
         + (", ".join(
             f"tenant {t.tenant} @ interval {t.interval} (KL {t.kl:.3f})"
             for t in triggers
         ) or "none"))
    for retune in result.retunes:
        echo(f"retune          : tenant {retune.tenant} finished @ interval "
             f"{retune.finished_interval}, utility {retune.utility:.4f} "
             f"({retune.evaluations} evaluations)")
    echo(f"bytes agent→rack: {result.agent_rack_bytes}")
    echo(f"bytes rack→pod  : {result.rack_pod_bytes}")
    echo(f"bytes pod→global: {result.pod_global_bytes}")
    echo(f"bytes dispatch  : {result.param_update_bytes}")
    echo(f"run digest      : {result.result_digest()}")
    if trace.active:
        echo(f"trace           : {trace.trace_path()}")
    if args.out:
        snapshot = {
            "meta": {"kind": "controlplane", "source": "repro controlplane"},
            "control_plane": result.to_snapshot(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        echo(f"snapshot        : {args.out} "
             f"(render with `python -m repro report {args.out}`)")
    return 0


def cmd_pfc_plan(args) -> int:
    from repro.simulator.pfc_planning import min_buffer_for_alpha, plan_pfc

    spec = SPECS[args.scale]
    buffer_bytes = int(args.buffer_mb * 1e6)
    plan = plan_pfc(spec, buffer_bytes)
    echo(
        f"fabric {args.scale}: {spec.n_hosts} hosts at "
        f"{spec.host_rate_bps / 1e9:.0f} Gbps, "
        f"{spec.prop_delay_s * 1e6:.1f} us wires"
    )
    echo(f"shared buffer        : {buffer_bytes / 1e6:.2f} MB")
    echo(f"PFC headroom per port: {plan.headroom_per_port} B")
    echo(f"planned alpha        : {plan.alpha:.4f} "
         f"(operational cap 1/8 = 0.125)")
    echo(
        f"min lossless buffer at alpha=1/8: "
        f"{min_buffer_for_alpha(spec) / 1e6:.2f} MB"
    )
    return 0


def cmd_env(args) -> int:
    from repro import env as env_registry

    if args.markdown:
        echo(env_registry.markdown_table())
    else:
        echo(env_registry.format_listing())
    return 0


def _load_trace_summary(path):
    """TraceSummary for ``path``, or None (with a message) if unreadable.

    Absent or unreadable traces are an expected state for analysis
    commands — the run may simply not have been traced — so the caller
    reports cleanly and exits 0 instead of raising.
    """
    from repro.telemetry.summary import TraceSummary

    try:
        return TraceSummary.from_file(path)
    except OSError as exc:
        echo(f"cannot read trace {path} ({exc.strerror or exc}); "
             "nothing to report")
        return None


def cmd_telemetry(args) -> int:
    from repro.telemetry.schema import validate_file
    from repro.telemetry.summary import format_diff, format_summary

    paths = args.trace_file
    if args.validate:
        status = 0
        for path in paths:
            try:
                count, problems = validate_file(path)
            except OSError as exc:
                _log.error("cannot read %s: %s", path, exc)
                return 2
            if problems:
                status = 1
                echo(f"{path}: {count} records, "
                     f"{len(problems)} schema problem(s)")
                for lineno, problem in problems[:20]:
                    echo(f"  line {lineno}: {problem}")
                if len(problems) > 20:
                    echo(f"  ... and {len(problems) - 20} more")
            else:
                echo(f"{path}: {count} records, all schema-valid")
        return status

    if len(paths) == 1:
        summary = _load_trace_summary(paths[0])
        if summary is None:
            return 0
        if not summary.records:
            echo(f"{paths[0]}: empty trace (0 records); nothing to summarize")
            return 0
        echo(format_summary(summary, top=args.top))
        return 0
    if len(paths) == 2:
        a = _load_trace_summary(paths[0])
        b = _load_trace_summary(paths[1])
        if a is None or b is None:
            return 0
        echo(format_diff(a, b))
        return 0
    _log.error("telemetry takes one trace file (summary) or two (diff)")
    return 2


def cmd_report(args) -> int:
    from repro.telemetry import report as report_mod
    from repro.telemetry.recorder import load_snapshot

    try:
        recording = load_snapshot(args.recording)
    except OSError as exc:
        echo(f"no recording at {args.recording} ({exc.strerror or exc}); "
             "run with --record PATH (or REPRO_RECORD=PATH) to produce one")
        return 0
    except ValueError as exc:
        _log.error("cannot parse recording %s: %s", args.recording, exc)
        return 2
    fmt = args.format
    if fmt is None:
        out = args.out or ""
        fmt = "markdown" if out.endswith((".md", ".markdown")) else "html"
    trace_summary = None
    if args.trace_file:
        summary = _load_trace_summary(args.trace_file)
        if summary is not None and summary.records:
            trace_summary = summary
    text = report_mod.render(
        recording,
        fmt=fmt,
        trace_summary=trace_summary,
        top=args.top,
        source=args.recording,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        echo(f"report written  : {args.out} ({fmt}, {len(text)} bytes)")
    else:
        echo(text)
    return 0


def cmd_bench(args) -> int:
    import glob

    from repro.telemetry import report as report_mod

    paths = args.files or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        echo("no BENCH_*.json snapshots found; run `make bench` to create one")
        return 0
    try:
        trend = report_mod.bench_trend(paths, threshold=args.threshold)
    except OSError as exc:
        _log.error("cannot read bench snapshot: %s", exc)
        return 2
    except ValueError as exc:
        _log.error("cannot parse bench snapshot: %s", exc)
        return 2
    echo(report_mod.format_trend(trend))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Paraleon reproduction: run DCQCN tuning scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schemes", help="list tuning schemes").set_defaults(
        func=cmd_list_schemes
    )

    run_parser = sub.add_parser("run", help="run one scheme on a scenario")
    run_parser.add_argument(
        "--scheme", default="paraleon", choices=sorted(SCHEME_FACTORIES)
    )
    _add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    cmp_parser = sub.add_parser("compare", help="run several schemes")
    cmp_parser.add_argument(
        "--schemes", default="default,expert,paraleon",
        help="comma-separated scheme list",
    )
    _add_common(cmp_parser)
    cmp_parser.set_defaults(func=cmd_compare)

    sweep_parser = sub.add_parser(
        "sweep", help="offline exhaustive grid search (parallel)"
    )
    sweep_parser.add_argument(
        "--fidelity",
        choices=("full", "hybrid", "screen", "surrogate"),
        default="full",
        help="evaluation fidelity: full DES for every point, hybrid "
        "flow/packet engine for every point with a full-DES "
        "confirmation of the winner, fluid-model screening (top "
        "1/ratio of points run the DES), or surrogate scoring with a "
        "single DES confirmation (default: full)",
    )
    sweep_parser.add_argument(
        "--screen-ratio", type=float, default=3.0,
        help="screening keep ratio: with --fidelity screen, 1 in "
        "SCREEN_RATIO grid points graduates to full simulation "
        "(default: 3)",
    )
    sweep_parser.add_argument(
        "--early-abort", action="store_true",
        help="abandon full simulations whose utility bound cannot reach "
        "the incumbent best (first completed point)",
    )
    sweep_parser.add_argument(
        "--skip", type=int, default=5,
        help="warm-up monitor intervals excluded from the mean (default: 5)",
    )
    _add_common(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    cp_parser = sub.add_parser(
        "controlplane",
        help="run the sharded many-ToR control plane 'day in the life'",
    )
    from repro import env as env_registry

    cp_parser.add_argument(
        "--shards", type=_positive_int,
        default=env_registry.get("REPRO_CP_SHARDS"),
        help="agent shards (default: REPRO_CP_SHARDS env, 4 when unset)",
    )
    cp_parser.add_argument(
        "--agents-per-shard", type=_positive_int,
        default=env_registry.get("REPRO_CP_AGENTS_PER_SHARD"),
        help="simulated ToR agents per shard "
             "(default: REPRO_CP_AGENTS_PER_SHARD env, 32 when unset)",
    )
    cp_parser.add_argument(
        "--tenants", type=_positive_int,
        default=env_registry.get("REPRO_CP_TENANTS"),
        help="tenant count; racks are assigned round-robin "
             "(default: REPRO_CP_TENANTS env, 2 when unset)",
    )
    cp_parser.add_argument(
        "--agents-per-rack", type=_positive_int, default=16,
        help="rack aggregator fan-in (default: 16)",
    )
    cp_parser.add_argument(
        "--racks-per-pod", type=_positive_int, default=4,
        help="pod aggregator fan-in (default: 4)",
    )
    cp_parser.add_argument(
        "--intervals", type=_positive_int, default=6,
        help="monitor intervals to simulate (default: 6)",
    )
    cp_parser.add_argument("--seed", type=int, default=1)
    cp_parser.add_argument(
        "--theta", type=float, default=0.01,
        help="per-tenant KL trigger threshold (default: 0.01)",
    )
    cp_parser.add_argument(
        "--strategy", choices=["inline", "pool"], default="inline",
        help="shard collection: inline in-process, or one chunk per "
             "shard on the persistent worker pool; results are "
             "digest-identical (default: inline)",
    )
    cp_parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="pool workers for --strategy pool and the tuning loops "
             "(default: REPRO_JOBS env, then CPU count)",
    )
    cp_parser.add_argument(
        "--shift-tenant", type=int, default=0,
        help="tenant whose traffic matrix shifts mid-run (default: 0)",
    )
    cp_parser.add_argument(
        "--shift-interval", type=int, default=None,
        help="interval the shift lands on (default: intervals // 3)",
    )
    cp_parser.add_argument(
        "--shift-elephant", type=float, default=0.40,
        help="post-shift elephant fraction for the shifted tenant "
             "(default: 0.40)",
    )
    cp_parser.add_argument(
        "--no-shift", action="store_true",
        help="run a quiet day: no traffic shift, no triggers",
    )
    cp_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent evaluation cache (.repro_cache/)",
    )
    cp_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write a report-compatible JSON snapshot of the run to PATH",
    )
    cp_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append a structured JSONL trace of this run to PATH "
             "(same as REPRO_TRACE=PATH)",
    )
    cp_parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="capture a cProfile of this command to PATH",
    )
    cp_parser.set_defaults(func=cmd_controlplane)

    pfc_parser = sub.add_parser(
        "pfc-plan", help="precompute the stable PFC alpha for a fabric"
    )
    pfc_parser.add_argument("--scale", choices=sorted(SPECS), default="medium")
    pfc_parser.add_argument("--buffer-mb", type=float, default=2.0)
    pfc_parser.set_defaults(func=cmd_pfc_plan)

    env_parser = sub.add_parser(
        "env",
        help="list every REPRO_* environment variable (type, default, "
        "current value)",
    )
    env_parser.add_argument(
        "--markdown", action="store_true",
        help="emit the generated README environment-variable table",
    )
    env_parser.set_defaults(func=cmd_env)

    tel_parser = sub.add_parser(
        "telemetry",
        help="summarize a JSONL trace, diff two traces, or validate schema",
    )
    tel_parser.add_argument(
        "trace_file", nargs="+",
        help="trace file(s): one to summarize, two to diff",
    )
    tel_parser.add_argument(
        "--validate", action="store_true",
        help="check every record against the trace schema and exit",
    )
    tel_parser.add_argument(
        "--top", type=int, default=10,
        help="span names to show in the self-time table (default: 10)",
    )
    tel_parser.set_defaults(func=cmd_telemetry)

    report_parser = sub.add_parser(
        "report",
        help="render an HTML/markdown run report from a flight recording",
    )
    report_parser.add_argument(
        "recording",
        help="recording snapshot JSON (written by --record / REPRO_RECORD)",
    )
    report_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    report_parser.add_argument(
        "--format", choices=("html", "markdown"), default=None,
        help="report format (default: inferred from the --out suffix, "
             "html otherwise)",
    )
    report_parser.add_argument(
        "--trace-file", default=None, metavar="PATH", dest="trace_file",
        help="embed this JSONL trace's span self-time table in the report",
    )
    report_parser.add_argument(
        "--top", type=int, default=10,
        help="span names to show in the embedded self-time table "
             "(default: 10)",
    )
    report_parser.set_defaults(func=cmd_report)

    bench_parser = sub.add_parser(
        "bench", help="benchmark-history tooling"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    trend_parser = bench_sub.add_parser(
        "trend",
        help="per-metric deltas and regressions across committed "
             "BENCH_*.json snapshots",
    )
    trend_parser.add_argument(
        "files", nargs="*",
        help="bench snapshots, oldest first "
             "(default: sorted BENCH_*.json glob in the working directory)",
    )
    trend_parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional worsening vs the previous snapshot that counts "
             "as a regression (default: 0.10)",
    )
    trend_parser.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    batched = getattr(args, "batched_monitor", None)
    if batched is not None:
        # Export before the executor exists so pool workers inherit it.
        from repro import env
        from repro.monitor.agent import BATCHED_MONITOR_ENV

        env.export_env(BATCHED_MONITOR_ENV, batched)
    engine_mode = getattr(args, "hybrid_engine", None)
    if engine_mode is not None:
        # Same contract as --batched-monitor: exported before any pool
        # spawns so workers build their fabrics in the same mode.
        from repro import env
        from repro.simulator.hybrid import HYBRID_ENGINE_ENV

        env.export_env(HYBRID_ENGINE_ENV, engine_mode)
    traced_here = bool(getattr(args, "trace", None))
    if traced_here:
        trace.configure(args.trace)
    # Same lifecycle as --trace: configure exports REPRO_RECORD so pool
    # workers record too; their snapshots ride back inside EvalResult.
    recorded_here = bool(getattr(args, "record", None))
    if recorded_here:
        recorder.configure(args.record)
    profile_path = getattr(args, "profile", None)
    try:
        if profile_path:
            from repro.experiments.runner import profile_capture

            with profile_capture(profile_path):
                status = args.func(args)
            echo(f"profile         : {profile_path} "
                 f"(inspect with `python -m pstats {profile_path}`)")
            return status
        return args.func(args)
    finally:
        if recorded_here:
            recorder.disable()
        if traced_here:
            trace.disable()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
