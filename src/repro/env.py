"""Central registry of ``REPRO_*`` environment variables.

Every environment knob the package honours is declared **once** here —
name, type, default, and a docstring — and every runtime read or write
of the process environment goes through this module.  That buys three
things the previous scattered ``os.environ.get`` calls could not:

* **One parsing convention.**  Booleans accept ``0/false/no/off``
  (case-insensitive) as false everywhere, instead of three site-local
  dialects; disable-able paths accept ``0``/``off``/empty uniformly.
* **A self-documenting surface.**  ``python -m repro env`` lists every
  variable with its type, default, and current value;
  ``python -m repro env --markdown`` emits the README table, so docs
  are generated from the same declarations the runtime parses.
* **A statically checkable invariant.**  The replint RL004 check
  (``tools/replint``) flags any direct ``os.environ``/``os.getenv``
  access outside this file, so new knobs cannot bypass the registry.

Reads are *live*: values are parsed from ``os.environ`` at call time
(no import-time snapshot), so tests may monkeypatch the environment
and pool workers inherit whatever the parent exported via
:func:`export_env` before the pool spawned.
"""

from __future__ import annotations

import os  # the one module allowed to touch os.environ (replint RL004)
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: Strings read as boolean false (case-insensitive, stripped).
_FALSE_WORDS = ("0", "false", "no", "off")

#: Strings that disable an optional-path variable.
_PATH_OFF = ("", "0", "off")


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment variable."""

    name: str
    kind: str  # "str" | "int" | "bool" | "path"
    default: Any
    doc: str

    def parse(self, raw: Optional[str]) -> Any:
        """Parsed value of ``raw``; ``None``/empty falls to the default."""
        if raw is None:
            return self.default
        if self.kind == "bool":
            text = raw.strip().lower()
            if not text:
                return self.default
            return text not in _FALSE_WORDS
        if self.kind == "int":
            text = raw.strip()
            if not text:
                return self.default
            try:
                return max(1, int(text))
            except ValueError:
                return self.default
        if self.kind == "path":
            if raw.strip().lower() in _PATH_OFF:
                return None
            return raw
        if not raw:
            return self.default
        return raw


REGISTRY: Dict[str, EnvVar] = {}


def _declare(name: str, kind: str, default: Any, doc: str) -> EnvVar:
    var = EnvVar(name=name, kind=kind, default=default, doc=doc)
    REGISTRY[name] = var
    return var


# ---------------------------------------------------------------------------
# The catalog.  Order here is presentation order in `python -m repro env`
# and the generated README table.
# ---------------------------------------------------------------------------

_declare(
    "REPRO_JOBS", "int", None,
    "Worker processes for parallel evaluation; `--jobs N` overrides, "
    "CPU count is the fallback. Values < 1 clamp to 1.",
)
_declare(
    "REPRO_EXECUTOR_STRATEGY", "str", "auto",
    "Parallel eval strategy (`--strategy`): `auto` estimates per-task "
    "cost online and picks, `process` = persistent worker pool with "
    "shared-memory transport, `thread`, `inline`. Results are "
    "digest-identical across strategies.",
)
_declare(
    "REPRO_SHM_SLOT_BYTES", "int", 1 << 20,
    "Size of each pool worker's shared-memory result slot, in bytes; "
    "chunk payloads larger than the slot fall back to pipe transport.",
)
_declare(
    "REPRO_EVAL_CACHE", "path", str(os.path.join(".repro_cache", "eval_cache.json")),
    "Evaluation-cache JSON path; `0`/`off`/empty disables the cache "
    "(like `--no-cache`).",
)
_declare(
    "REPRO_TRACE", "path", None,
    "Append a structured JSONL trace of the run to this path (same as "
    "`--trace PATH`); `0`/`off`/empty disables. Pool workers inherit it.",
)
_declare(
    "REPRO_TRACE_RUN", "str", None,
    "Run id joining a trace already in progress; exported by "
    "`trace.configure` so pool workers tag records with the parent's "
    "run id. Not normally set by hand.",
)
_declare(
    "REPRO_RECORD", "path", None,
    "Write a flight-recorder snapshot of the run (queue depth, per-QP "
    "rate/alpha, PFC counters, flow lifecycle) to this JSON path (same "
    "as `--record PATH`); `0`/`off`/empty disables. Pool workers "
    "inherit it and ship recordings back with their results.",
)
_declare(
    "REPRO_RECORD_BUDGET", "int", 512,
    "Flight-recorder sample budget: when a run closes more monitor "
    "intervals than this, retained samples are stride-decimated "
    "deterministically so memory stays bounded at any run length.",
)
_declare(
    "REPRO_LOG_LEVEL", "str", "WARNING",
    "Level for the `repro.*` stderr logger: a name (`DEBUG`, `INFO`, "
    "...) or a numeric level.",
)
_declare(
    "REPRO_PACKET_FREELIST", "bool", True,
    "Packet free-list recycling in the simulator hot path; disable "
    "(`0`/`off`) when debugging object identity. Read at import time.",
)
_declare(
    "REPRO_BATCHED_MONITOR", "bool", True,
    "Vectorized monitoring data plane (`--batched-monitor`); results "
    "are bit-identical either way, the scalar path is just slower.",
)
_declare(
    "REPRO_HYBRID_ENGINE", "str", "off",
    "Hybrid flow/packet engine mode (`--hybrid-engine`): `off` = pure "
    "DES (digest-identical to the seed), `lanes` = vectorized DCQCN "
    "timer lanes (bit-identical, faster), `hybrid` = fluid fast path "
    "for elephants (fastest, approximate).",
)
_declare(
    "REPRO_LANES_MIN_QPS", "int", 256,
    "Expected-QP floor for `--hybrid-engine lanes`: scenarios whose "
    "concurrent QP population is below this fall back to the scalar "
    "`off` path (the lane bank's batch arithmetic loses on tiny "
    "populations; the `hybrid_engine` bench showed `lanes` losing to "
    "`off` at 240 QPs, hence the floor sits above that). "
    "Digest-identical either way; the decision is recorded as an "
    "`engine.lanes_fallback` trace event.",
)
_declare(
    "REPRO_CP_SHARDS", "int", 4,
    "Sharded control plane (`repro controlplane`): number of agent "
    "shards; with strategy `pool` each shard's ToR batch is evaluated "
    "as one chunk on the persistent worker pool.",
)
_declare(
    "REPRO_CP_AGENTS_PER_SHARD", "int", 32,
    "Simulated ToR agents per control-plane shard; total agents = "
    "shards x agents-per-shard, and must fill whole racks.",
)
_declare(
    "REPRO_CP_TENANTS", "int", 2,
    "Tenant count for the sharded control plane; racks are assigned "
    "round-robin (rack % tenants), and each tenant gets an "
    "independent KL trigger and tuning loop.",
)
_declare(
    "REPRO_BENCH_JSON", "path", None,
    "Write machine-readable perf-bench results to this path "
    "(`make bench` sets it to `BENCH_<date>.json`).",
)
_declare(
    "REPRO_BENCH_SMOKE", "bool", False,
    "Shrink the perf benchmarks to smoke size (CI shared runners); "
    "timing assertions are skipped.",
)
_declare(
    "REPRO_BENCH_STRICT", "bool", False,
    "Turn perf-bench baseline comparisons into hard assertions "
    "(the local regression gate).",
)


# ---------------------------------------------------------------------------
# Access API
# ---------------------------------------------------------------------------


def _lookup(name: str) -> EnvVar:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"{name} is not a registered REPRO_* variable; declare it in "
            "repro/env.py"
        ) from None


def raw(name: str) -> Optional[str]:
    """Unparsed ``os.environ`` value of a *registered* variable."""
    _lookup(name)
    return os.environ.get(name)


def get(name: str) -> Any:
    """Parsed, live value of a registered variable (default if unset)."""
    return _lookup(name).parse(os.environ.get(name))


def export_env(name: str, value: Any) -> None:
    """Publish ``name=value`` to the process environment.

    The registry is also the chokepoint for *writes*: values exported
    here are inherited by pool workers spawned afterwards (how
    ``--trace`` and ``--batched-monitor`` propagate).
    """
    _lookup(name)
    if isinstance(value, bool):
        value = "1" if value else "0"
    os.environ[name] = str(value)


def clear_env(name: str) -> None:
    """Remove a registered variable from the process environment."""
    _lookup(name)
    os.environ.pop(name, None)


def describe() -> Iterator[EnvVar]:
    """Registered variables in declaration order."""
    return iter(REGISTRY.values())


# ---------------------------------------------------------------------------
# Introspection / docs generation (`python -m repro env`)
# ---------------------------------------------------------------------------


def _default_text(var: EnvVar) -> str:
    if var.default is None:
        return "unset"
    if var.kind == "bool":
        return "on" if var.default else "off"
    return f"`{var.default}`"


def markdown_table() -> str:
    """The README "Environment variables" table (generated, not typed)."""
    lines: List[str] = [
        "| Variable | Type | Default | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for var in describe():
        lines.append(
            f"| `{var.name}` | {var.kind} | {_default_text(var)} "
            f"| {var.doc} |"
        )
    return "\n".join(lines)


def format_listing() -> str:
    """Human-readable listing with current values (the CLI default)."""
    lines: List[str] = []
    for var in describe():
        current = os.environ.get(var.name)
        state = f"= {current!r}" if current is not None else "(unset)"
        lines.append(f"{var.name:24s} {var.kind:5s} {state}")
        lines.append(f"    default: {_default_text(var)}")
        lines.append(f"    {var.doc}")
    return "\n".join(lines)
