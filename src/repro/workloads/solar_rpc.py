"""SolarRPC workload: Poisson mice (< 128 KB) RDMA WRITEs.

Section IV-C: the controller tells every server agent to issue RDMA
WRITE operations with sizes following the Solar distribution and
Poisson arrivals.  All flows are mice, so when this workload lands on
top of an alltoall the network-wide FSD flips to mice-dominated —
the trigger for Paraleon's latency-friendly retuning in Fig. 14.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.simulator.flow import Flow
from repro.simulator.network import Network
from repro.workloads.distributions import EmpiricalCdf, SOLAR_RPC_CDF


class SolarRpcWorkload:
    """Poisson mice arrivals over a host subset for a fixed duration."""

    def __init__(
        self,
        rate_per_host: float = 2000.0,
        cdf: EmpiricalCdf = SOLAR_RPC_CDF,
        seed: int = 77,
        start: float = 0.0,
        duration: float = 0.03,
        hosts: Optional[List[int]] = None,
        tag: str = "solar",
    ):
        if rate_per_host <= 0:
            raise ValueError("rate_per_host must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate_per_host = rate_per_host
        self.cdf = cdf
        self.seed = seed
        self.start = start
        self.duration = duration
        self.hosts = hosts
        self.tag = tag
        self.flows: List[Flow] = []

    def install(self, network: Network) -> List[Flow]:
        rng = random.Random(self.seed)
        hosts = self.hosts or list(range(network.spec.n_hosts))
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        end = self.start + self.duration
        for src in hosts:
            t = self.start + rng.expovariate(self.rate_per_host)
            while t < end:
                dst = rng.choice(hosts)
                while dst == src:
                    dst = rng.choice(hosts)
                size = self.cdf.sample(rng)
                self.flows.append(network.add_flow(src, dst, size, t, tag=self.tag))
                t += rng.expovariate(self.rate_per_host)
        return self.flows
