"""FB_Hadoop workload: Poisson arrivals from the Hadoop size CDF.

Every host generates flows as an independent Poisson process whose
rate is chosen so that offered load equals ``load`` × host line rate;
destinations are uniform over the other hosts.  This is the standard
RDMA-evaluation workload construction (HPCC, ACC, and this paper all
use it) and yields the mice-dominated-count / elephant-dominated-bytes
mix that drives Paraleon's FSD-based decisions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.simulator.flow import Flow
from repro.simulator.network import Network
from repro.workloads.distributions import EmpiricalCdf, FB_HADOOP_CDF


class FbHadoopWorkload:
    """Poisson FB_Hadoop traffic over all hosts (or a subset)."""

    def __init__(
        self,
        load: float = 0.3,
        cdf: EmpiricalCdf = FB_HADOOP_CDF,
        seed: int = 42,
        start: float = 0.0,
        duration: float = 0.05,
        hosts: Optional[List[int]] = None,
        tag: str = "hadoop",
    ):
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0, 1)")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.load = load
        self.cdf = cdf
        self.seed = seed
        self.start = start
        self.duration = duration
        self.hosts = hosts
        self.tag = tag
        self.flows: List[Flow] = []

    def install(self, network: Network) -> List[Flow]:
        """Pre-schedule all arrivals (Poisson process per host)."""
        rng = random.Random(self.seed)
        hosts = self.hosts or list(range(network.spec.n_hosts))
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        mean_size = self.cdf.mean()
        per_host_rate = (
            self.load * network.spec.host_rate_bps / 8.0 / mean_size
        )  # flows per second per sending host
        end = self.start + self.duration

        for src in hosts:
            t = self.start + rng.expovariate(per_host_rate)
            while t < end:
                dst = rng.choice(hosts)
                while dst == src:
                    dst = rng.choice(hosts)
                size = self.cdf.sample(rng)
                self.flows.append(
                    network.add_flow(src, dst, size, t, tag=self.tag)
                )
                t += rng.expovariate(per_host_rate)
        return self.flows
