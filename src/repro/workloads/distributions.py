"""Empirical flow-size distributions.

``EmpiricalCdf`` samples flow sizes by linear interpolation between
published CDF points — the same technique the HPCC/ns-3 RDMA
evaluation stack uses for its workload files.

* ``FB_HADOOP_CDF`` approximates the Facebook Hadoop cluster
  distribution from Roy et al., *Inside the Social Network's
  (Datacenter) Network* (SIGCOMM 2015): the overwhelming majority of
  flows are small (mice) while the overwhelming majority of *bytes*
  come from multi-megabyte elephants, which is the property the
  paper's monitoring design leans on.
* ``SOLAR_RPC_CDF`` models the Solar storage RPC workload (Miao et
  al., SIGCOMM 2022) as described in Section IV-C: all flows are mice
  below 128 KB.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence, Tuple



class EmpiricalCdf:
    """Piecewise-linear inverse-CDF sampler over flow sizes (bytes)."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(size) for size, _ in points]
        probs = [float(p) for _, p in points]
        if probs[0] != 0.0 or abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must start at 0 and end at 1")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be non-decreasing")
        if any(b < a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("CDF sizes must be non-decreasing")
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (>= 1 byte)."""
        u = rng.random()
        i = bisect.bisect_right(self._probs, u)
        i = min(max(i, 1), len(self._probs) - 1)
        p0, p1 = self._probs[i - 1], self._probs[i]
        s0, s1 = self._sizes[i - 1], self._sizes[i]
        if p1 == p0:
            size = s1
        else:
            size = s0 + (s1 - s0) * (u - p0) / (p1 - p0)
        return max(1, int(size))

    def mean(self) -> float:
        """Expected flow size under linear interpolation."""
        total = 0.0
        for i in range(1, len(self._probs)):
            mass = self._probs[i] - self._probs[i - 1]
            total += mass * (self._sizes[i] + self._sizes[i - 1]) / 2.0
        return total

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        i = bisect.bisect_right(self._probs, q)
        i = min(max(i, 1), len(self._probs) - 1)
        p0, p1 = self._probs[i - 1], self._probs[i]
        s0, s1 = self._sizes[i - 1], self._sizes[i]
        if p1 == p0:
            return s1
        return s0 + (s1 - s0) * (q - p0) / (p1 - p0)


# Approximation of the published Facebook Hadoop flow-size CDF:
# median ~O(1 KB), ~80% of flows under ~10 KB, but a heavy elephant
# tail past 1 MB that carries most of the bytes.
FB_HADOOP_CDF = EmpiricalCdf(
    [
        (100, 0.0),
        (300, 0.10),
        (500, 0.20),
        (700, 0.30),
        (1_000, 0.40),
        (2_000, 0.53),
        (4_000, 0.60),
        (10_000, 0.70),
        (40_000, 0.80),
        (120_000, 0.85),
        (400_000, 0.90),
        (1_500_000, 0.95),
        (5_000_000, 0.98),
        (30_000_000, 1.0),
    ]
)

# Solar RPC: storage RPCs, all mice below 128 KB, mode around a few KB.
SOLAR_RPC_CDF = EmpiricalCdf(
    [
        (256, 0.0),
        (1_024, 0.20),
        (4_096, 0.55),
        (16_384, 0.80),
        (65_536, 0.95),
        (131_072, 1.0),
    ]
)


# DCTCP web-search workload (Alizadeh et al., SIGCOMM 2010): query
# traffic with a flatter size profile than Hadoop — fewer sub-KB mice,
# a fat middle, and elephants to ~30 MB.  Included because RDMA tuning
# papers (ACC, HPCC) commonly evaluate on it alongside FB_Hadoop.
WEB_SEARCH_CDF = EmpiricalCdf(
    [
        (6_000, 0.0),
        (10_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.0),
    ]
)

# Alibaba cloud-storage style mix (Gao et al., NSDI 2021): bimodal —
# small metadata ops and large (multi-MB) data chunks, little middle.
ALI_STORAGE_CDF = EmpiricalCdf(
    [
        (500, 0.0),
        (1_000, 0.30),
        (4_000, 0.50),
        (8_000, 0.60),
        (64_000, 0.65),
        (2_000_000, 0.70),
        (4_000_000, 0.85),
        (8_000_000, 0.95),
        (30_000_000, 1.0),
    ]
)
