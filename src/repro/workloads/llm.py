"""ON-OFF LLM training workload (alltoall collective).

Section IV-B: 20 workers run alltoall — during the ON period every
worker sends the same flow size to every other worker; when the whole
round completes, the workers spend an OFF period (20 ms) on the model
update, then the next round starts.  alltoall is used because it is
the most network-intensive collective (worst incast pressure).

The round barrier is implemented with flow-completion callbacks, so ON
periods genuinely depend on the straggler worker — exactly why the
paper's tail-FCT improvements translate into training speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.simulator.flow import Flow
from repro.simulator.network import Network
from repro.simulator.units import mb, ms


@dataclass
class RoundRecord:
    """Timing of one completed alltoall round."""

    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class LlmTrainingWorkload:
    """Periodic alltoall among ``workers`` hosts with OFF gaps."""

    def __init__(
        self,
        workers: Optional[List[int]] = None,
        n_workers: int = 8,
        flow_size: int = mb(2.0),
        off_period: float = ms(20.0),
        start: float = 0.0,
        max_rounds: Optional[int] = None,
        tag: str = "llm",
    ):
        if flow_size <= 0:
            raise ValueError("flow_size must be positive")
        if off_period < 0:
            raise ValueError("off_period must be >= 0")
        self.workers = workers
        self.n_workers = n_workers
        self.flow_size = flow_size
        self.off_period = off_period
        self.start = start
        self.max_rounds = max_rounds
        self.tag = tag

        self.rounds: List[RoundRecord] = []
        self.flows: List[Flow] = []
        self._network: Optional[Network] = None
        self._round_index = 0
        self._round_start = 0.0
        self._outstanding: set = set()
        self._stopped = False

    def install(self, network: Network) -> None:
        if self.workers is None:
            self.workers = list(range(min(self.n_workers, network.spec.n_hosts)))
        if len(self.workers) < 2:
            raise ValueError("need at least two workers")
        self._network = network
        network.on_flow_complete(self._on_complete)
        network.sim.at(self.start, self._start_round)

    def stop(self) -> None:
        """Stop launching new rounds (in-flight flows still finish)."""
        self._stopped = True

    # -- round machinery -------------------------------------------------

    def _start_round(self) -> None:
        if self._stopped:
            return
        if self.max_rounds is not None and self._round_index >= self.max_rounds:
            return
        network = self._network
        now = network.sim.now
        self._round_start = now
        self._outstanding = set()
        for src in self.workers:
            for dst in self.workers:
                if src == dst:
                    continue
                flow = network.add_flow(src, dst, self.flow_size, now, tag=self.tag)
                self.flows.append(flow)
                self._outstanding.add(flow.flow_id)

    def _on_complete(self, flow: Flow) -> None:
        if flow.flow_id not in self._outstanding:
            return
        self._outstanding.discard(flow.flow_id)
        if self._outstanding:
            return
        # Round barrier reached: record it and schedule the next round
        # after the model-update OFF period.
        now = self._network.sim.now
        self.rounds.append(
            RoundRecord(self._round_index, self._round_start, now)
        )
        self._round_index += 1
        self._network.sim.schedule(self.off_period, self._start_round)

    # -- reporting ---------------------------------------------------------

    def completed_rounds(self) -> int:
        return len(self.rounds)

    def mean_round_duration(self) -> float:
        if not self.rounds:
            raise ValueError("no completed rounds")
        return sum(r.duration for r in self.rounds) / len(self.rounds)

    def algorithm_bandwidth(self) -> float:
        """NCCL-style busbw proxy: per-round bytes / round duration.

        Bytes exchanged per round are ``(n-1) × flow_size`` per worker;
        we report the per-worker aggregate rate in bits per second,
        averaged over completed rounds.
        """
        if not self.rounds:
            raise ValueError("no completed rounds")
        n = len(self.workers)
        per_worker_bytes = (n - 1) * self.flow_size
        rates = [per_worker_bytes * 8.0 / r.duration for r in self.rounds]
        return sum(rates) / len(rates)
