"""Workload generators for the evaluation scenarios."""

from repro.workloads.distributions import (
    ALI_STORAGE_CDF,
    EmpiricalCdf,
    FB_HADOOP_CDF,
    SOLAR_RPC_CDF,
    WEB_SEARCH_CDF,
)
from repro.workloads.fb_hadoop import FbHadoopWorkload
from repro.workloads.llm import LlmTrainingWorkload
from repro.workloads.solar_rpc import SolarRpcWorkload
from repro.workloads.incast import IncastWorkload, AllToAllOnce

__all__ = [
    "ALI_STORAGE_CDF",
    "EmpiricalCdf",
    "FB_HADOOP_CDF",
    "SOLAR_RPC_CDF",
    "WEB_SEARCH_CDF",
    "FbHadoopWorkload",
    "LlmTrainingWorkload",
    "SolarRpcWorkload",
    "IncastWorkload",
    "AllToAllOnce",
]
