"""Incast and one-shot alltoall primitives.

Building blocks used by the parameter-impact studies (Fig. 5/6 run a
single alltoall and watch throughput/RTT) and by tests that need a
deterministic congestion pattern.
"""

from __future__ import annotations

from typing import List, Optional

from repro.simulator.flow import Flow
from repro.simulator.network import Network
from repro.simulator.units import mb


class IncastWorkload:
    """``n``-to-1: every sender ships one flow to the same receiver."""

    def __init__(
        self,
        receiver: int,
        senders: List[int],
        flow_size: int = mb(1.0),
        start: float = 0.0,
        tag: str = "incast",
    ):
        if receiver in senders:
            raise ValueError("receiver cannot be a sender")
        if not senders:
            raise ValueError("need at least one sender")
        self.receiver = receiver
        self.senders = senders
        self.flow_size = flow_size
        self.start = start
        self.tag = tag
        self.flows: List[Flow] = []

    def install(self, network: Network) -> List[Flow]:
        for src in self.senders:
            self.flows.append(
                network.add_flow(
                    src, self.receiver, self.flow_size, self.start, tag=self.tag
                )
            )
        return self.flows


class AllToAllOnce:
    """A single alltoall round (no ON-OFF periodicity)."""

    def __init__(
        self,
        workers: Optional[List[int]] = None,
        n_workers: int = 8,
        flow_size: int = mb(1.0),
        start: float = 0.0,
        tag: str = "alltoall",
    ):
        self.workers = workers
        self.n_workers = n_workers
        self.flow_size = flow_size
        self.start = start
        self.tag = tag
        self.flows: List[Flow] = []

    def install(self, network: Network) -> List[Flow]:
        workers = self.workers or list(
            range(min(self.n_workers, network.spec.n_hosts))
        )
        if len(workers) < 2:
            raise ValueError("need at least two workers")
        for src in workers:
            for dst in workers:
                if src != dst:
                    self.flows.append(
                        network.add_flow(
                            src, dst, self.flow_size, self.start, tag=self.tag
                        )
                    )
        return self.flows

    def all_completed(self) -> bool:
        return all(flow.completed for flow in self.flows)

    def max_fct(self) -> float:
        if not self.all_completed():
            raise ValueError("alltoall round has not completed")
        return max(flow.fct() for flow in self.flows)
