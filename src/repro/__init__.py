"""Paraleon (a.k.a. "Chameleon") reproduction.

Automatic and adaptive tuning of DCQCN parameters in RDMA networks:
millisecond sketch-based monitoring with sliding-window ternary flow
states, KL-divergence tuning triggers, and guided simulated annealing
over the full RNIC + switch parameter space - together with the
packet-level RoCEv2 simulator, measurement substrates, workloads and
baselines the paper's evaluation depends on.

Quickstart::

    from repro import (
        ClosSpec, Network, NetworkConfig, ParaleonSystem, ExperimentRunner,
    )
    from repro.workloads import FbHadoopWorkload

    net = Network(NetworkConfig(spec=ClosSpec(n_tor=4, n_spine=2,
                                              hosts_per_tor=4)))
    FbHadoopWorkload(load=0.3, duration=0.05).install(net)
    runner = ExperimentRunner(net, ParaleonSystem())
    result = runner.run(duration=0.1)
    result.mean_utility()
"""

from repro.simulator import (
    ClosSpec,
    ClosTopology,
    DcqcnParams,
    Network,
    NetworkConfig,
    Simulator,
)
from repro.core import ParaleonConfig, ParaleonSystem, MonitorKind
from repro.experiments import ExperimentRunner, ExperimentResult, FctStats
from repro.tuning import (
    ImprovedAnnealer,
    NaiveAnnealer,
    ParameterSpace,
    StaticTuner,
    UtilityWeights,
    default_params,
    expert_params,
    utility,
)

__version__ = "1.0.0"

__all__ = [
    "ClosSpec",
    "ClosTopology",
    "DcqcnParams",
    "Network",
    "NetworkConfig",
    "Simulator",
    "ParaleonConfig",
    "ParaleonSystem",
    "MonitorKind",
    "ExperimentRunner",
    "ExperimentResult",
    "FctStats",
    "ImprovedAnnealer",
    "NaiveAnnealer",
    "ParameterSpace",
    "StaticTuner",
    "UtilityWeights",
    "default_params",
    "expert_params",
    "utility",
    "__version__",
]
