"""Count-min sketch — the Light Part of Elastic Sketch.

A ``depth × width`` array of counters; inserts add to one counter per
row, queries take the row-wise minimum.  The estimate never
undercounts (a property the test suite checks with hypothesis) and
overcounts by at most the collision noise of the narrowest row.

Counter rows are ``array('q')`` (signed 64-bit) rather than Python
lists: a row is one contiguous buffer instead of ``width`` boxed ints,
which roughly halves the structure's resident size and makes the
per-interval ``reset`` a single C-level slice copy — the same
flat-register layout the Tofino data plane uses.
"""

from __future__ import annotations

from array import array

from repro.sketch.hashing import hash_family


class CountMinSketch:
    """Classic count-min over integer keys with byte-count values."""

    def __init__(self, width: int, depth: int = 2, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = hash_family(depth, seed=seed ^ 0xC0117E)
        self._zero_row = array("q", [0]) * width
        self._rows = [array("q", self._zero_row) for _ in range(depth)]
        # Pair each row with its hash once; the insert loop then walks a
        # prebuilt list instead of zipping per call.
        self._lanes = list(zip(self._rows, self._hashes))
        self.total_inserted = 0

    def insert(self, key: int, value: int = 1) -> None:
        if value < 0:
            raise ValueError("value must be >= 0")
        width = self.width
        for row, h in self._lanes:
            row[h(key) % width] += value
        self.total_inserted += value

    def query(self, key: int) -> int:
        width = self.width
        return min(row[h(key) % width] for row, h in self._lanes)

    def reset(self) -> None:
        zero = self._zero_row
        for row in self._rows:
            row[:] = zero
        self.total_inserted = 0

    def memory_bytes(self, counter_bytes: int = 4) -> int:
        """SRAM footprint (Table IV style accounting)."""
        return self.width * self.depth * counter_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountMinSketch(width={self.width}, depth={self.depth})"
