"""Count-min sketch — the Light Part of Elastic Sketch.

A ``depth × width`` array of counters; inserts add to one counter per
row, queries take the row-wise minimum.  The estimate never
undercounts (a property the test suite checks with hypothesis) and
overcounts by at most the collision noise of the narrowest row.
"""

from __future__ import annotations

from typing import List

from repro.sketch.hashing import hash_family


class CountMinSketch:
    """Classic count-min over integer keys with byte-count values."""

    def __init__(self, width: int, depth: int = 2, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = hash_family(depth, seed=seed ^ 0xC0117E)
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total_inserted = 0

    def insert(self, key: int, value: int = 1) -> None:
        if value < 0:
            raise ValueError("value must be >= 0")
        for row, h in zip(self._rows, self._hashes):
            row[h(key) % self.width] += value
        self.total_inserted += value

    def query(self, key: int) -> int:
        return min(
            row[h(key) % self.width] for row, h in zip(self._rows, self._hashes)
        )

    def reset(self) -> None:
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
        self.total_inserted = 0

    def memory_bytes(self, counter_bytes: int = 4) -> int:
        """SRAM footprint (Table IV style accounting)."""
        return self.width * self.depth * counter_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountMinSketch(width={self.width}, depth={self.depth})"
