"""Count-min sketch — the Light Part of Elastic Sketch.

A ``depth × width`` array of counters; inserts add to one counter per
row, queries take the row-wise minimum.  The estimate never
undercounts (a property the test suite checks with hypothesis) and
overcounts by at most the collision noise of the narrowest row.

The counters live in one contiguous ``(depth, width)`` int64 ndarray —
the same flat-register layout the Tofino data plane uses — which gives
three things at once: the per-interval ``reset`` is a single C-level
fill, the scalar per-packet ``insert`` indexes row views without boxing
ints, and the batched kernels (:meth:`CountMinSketch.insert_batch` /
:meth:`CountMinSketch.query_batch`) hash whole packet vectors with
:func:`~repro.sketch.hashing.hash32_array` and scatter-add with
``np.add.at``.  Integer addition commutes exactly, so a batch insert is
bit-identical to inserting its packets one at a time in any order.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import hash32_array, hash_family, hash_family_seeds


class CountMinSketch:
    """Classic count-min over integer keys with byte-count values."""

    def __init__(self, width: int, depth: int = 2, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._seeds = hash_family_seeds(depth, seed=seed ^ 0xC0117E)
        self._hashes = hash_family(depth, seed=seed ^ 0xC0117E)
        self._table = np.zeros((depth, width), dtype=np.int64)
        # Pair each row view with its hash once; the scalar insert loop
        # then walks a prebuilt list instead of zipping per call.
        self._lanes = list(zip(self._table, self._hashes))
        self.total_inserted = 0

    def insert(self, key: int, value: int = 1) -> None:
        if value < 0:
            raise ValueError("value must be >= 0")
        width = self.width
        for row, h in self._lanes:
            row[h(key) % width] += value
        self.total_inserted += value

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Add many ``(key, value)`` pairs in one vectorized pass.

        Exactly equivalent to ``for k, v in zip(keys, values):
        insert(k, v)`` — counter addition is commutative and exact in
        int64, so the final table state is order-independent.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.size == 0:
            return
        if values.min() < 0:
            raise ValueError("value must be >= 0")
        for d, seed in enumerate(self._seeds):
            idx = hash32_array(keys, seed) % self.width
            np.add.at(self._table[d], idx, values)
        self.total_inserted += int(values.sum())

    def query(self, key: int) -> int:
        width = self.width
        return int(min(row[h(key) % width] for row, h in self._lanes))

    def query_batch(self, keys: np.ndarray) -> np.ndarray:
        """Row-wise-minimum estimates for a vector of keys (int64)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        estimate = None
        for d, seed in enumerate(self._seeds):
            idx = hash32_array(keys, seed) % self.width
            lane = self._table[d][idx]
            estimate = lane if estimate is None else np.minimum(estimate, lane)
        return estimate

    def reset(self) -> None:
        self._table.fill(0)
        self.total_inserted = 0

    def memory_bytes(self, counter_bytes: int = 4) -> int:
        """Modeled SRAM footprint (Table IV style accounting).

        This is the *hardware* cost: the paper's Tofino deployment
        provisions 4-byte SRAM counters per cell, and all Table IV
        overhead numbers are quoted against that register model — not
        against this process's resident memory.  Pass ``counter_bytes``
        to model other register widths.  For the actual bytes held by
        this Python object see :meth:`native_memory_bytes`.
        """
        return self.width * self.depth * counter_bytes

    def native_memory_bytes(self) -> int:
        """Bytes of process RSS backing the counter table (int64 cells)."""
        return int(self._table.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CountMinSketch(width={self.width}, depth={self.depth})"
