"""Deterministic integer hashing for sketches.

Data-plane sketches need cheap, well-mixed, *seedable* hash functions.
We use the 32-bit finalizer from MurmurHash3 (fmix32) over the key
XOR-ed with a seed-derived constant: single-cycle-ish operations, good
avalanche behaviour, and completely deterministic across runs — which
keeps every experiment reproducible.
"""

from __future__ import annotations

from typing import Callable, List

_MASK32 = 0xFFFFFFFF


def _fmix32(h: int) -> int:
    """MurmurHash3 32-bit finalizer."""
    h &= _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def hash32(key: int, seed: int = 0) -> int:
    """Hash an integer key to 32 bits under the given seed."""
    # Mix the seed through the finalizer first so related seeds give
    # unrelated hash functions.
    return _fmix32(key ^ _fmix32(seed * 0x9E3779B9 + 0x165667B1))


def hash_family(count: int, seed: int = 0) -> List[Callable[[int], int]]:
    """``count`` independent 32-bit hash functions."""
    if count < 1:
        raise ValueError("count must be >= 1")

    def make(i: int) -> Callable[[int], int]:
        derived = seed * 0x01000193 + i * 0x9E3779B9
        return lambda key: hash32(key, derived)

    return [make(i) for i in range(count)]
