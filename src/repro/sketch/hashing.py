"""Deterministic integer hashing for sketches.

Data-plane sketches need cheap, well-mixed, *seedable* hash functions.
We use the 32-bit finalizer from MurmurHash3 (fmix32) over the key
XOR-ed with a seed-derived constant: single-cycle-ish operations, good
avalanche behaviour, and completely deterministic across runs — which
keeps every experiment reproducible.

Two forms are exposed over the same function family:

* scalar — :func:`hash32` / :func:`hash_family`, used by the
  per-packet insert path and anywhere a single key is hashed;
* vectorized — :func:`hash32_array`, the same finalizer over a numpy
  vector of keys.  ``hash32_array(keys, s)[i] == hash32(keys[i], s)``
  bit-for-bit (a property test enforces it), which is what lets the
  batched sketch kernels be digest-identical to sequential insertion.

:func:`hash_family_seeds` is the single source of truth for how a
family of ``count`` independent functions derives its per-row seeds;
both the scalar closures and the array kernels consume it so the two
paths can never drift apart.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

_MASK32 = 0xFFFFFFFF
_U64_MASK32 = np.uint64(_MASK32)


def _fmix32(h: int) -> int:
    """MurmurHash3 32-bit finalizer."""
    h &= _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def hash32(key: int, seed: int = 0) -> int:
    """Hash an integer key to 32 bits under the given seed."""
    # Mix the seed through the finalizer first so related seeds give
    # unrelated hash functions.
    return _fmix32(key ^ _fmix32(seed * 0x9E3779B9 + 0x165667B1))


def hash32_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`hash32` over a vector of non-negative keys.

    Returns an int64 array (values fit in 32 bits, int64 keeps the
    downstream ``% width`` arithmetic in the sketch kernels signed and
    overflow-free).  Element-wise bit-identical to the scalar function.
    """
    derived = np.uint64(_fmix32(seed * 0x9E3779B9 + 0x165667B1))
    h = (np.asarray(keys).astype(np.uint64) ^ derived) & _U64_MASK32
    h ^= h >> np.uint64(16)
    h = (h * np.uint64(0x85EBCA6B)) & _U64_MASK32
    h ^= h >> np.uint64(13)
    h = (h * np.uint64(0xC2B2AE35)) & _U64_MASK32
    h ^= h >> np.uint64(16)
    return h.astype(np.int64)


def hash_family_seeds(count: int, seed: int = 0) -> List[int]:
    """Derived per-function seeds for a family of ``count`` hashes."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [seed * 0x01000193 + i * 0x9E3779B9 for i in range(count)]


def hash_family(count: int, seed: int = 0) -> List[Callable[[int], int]]:
    """``count`` independent 32-bit hash functions."""
    return [
        (lambda key, derived=derived: hash32(key, derived))
        for derived in hash_family_seeds(count, seed)
    ]
