"""Elastic Sketch (Yang et al., SIGCOMM 2018).

The data-plane measurement structure Paraleon deploys at ToR switches.
It splits traffic between:

* a **Heavy Part** — an array of buckets, each holding one candidate
  elephant flow as ``(flowID, vote+, flag, vote-)``.  ``vote+`` counts
  the resident flow's bytes, ``vote-`` counts bytes of colliding
  flows.  When ``vote- / vote+`` exceeds the *ostracism* threshold λ
  the resident is evicted: its ``vote+`` is flushed into the Light
  Part and the challenger takes the bucket with its ``flag`` set
  (meaning part of its earlier traffic may live in the Light Part).
* a **Light Part** — a count-min sketch absorbing ostracized and
  colliding (mice) traffic.

``query`` combines both parts and never undercounts a flow that is
resident in the Heavy Part.  The switch control-plane agent
periodically calls :meth:`read_heavy` + :meth:`reset` (Section III-B),
which is exactly the register read-and-clear cycle the paper performs
on the Tofino.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sketch.cm import CountMinSketch
from repro.sketch.hashing import hash32


@dataclass(frozen=True)
class ElasticSketchConfig:
    """Provisioning of one Elastic Sketch instance."""

    heavy_buckets: int = 1024
    light_width: int = 4096
    light_depth: int = 2
    ostracism_lambda: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heavy_buckets < 1:
            raise ValueError("heavy_buckets must be >= 1")
        if self.light_width < 1 or self.light_depth < 1:
            raise ValueError("light part dimensions must be >= 1")
        if self.ostracism_lambda <= 0:
            raise ValueError("ostracism_lambda must be positive")


class HeavyBucket:
    """One Heavy Part bucket."""

    __slots__ = ("flow_id", "positive_votes", "negative_votes", "flag")

    def __init__(self) -> None:
        self.flow_id: Optional[int] = None
        self.positive_votes = 0
        self.negative_votes = 0
        self.flag = False

    def clear(self) -> None:
        self.flow_id = None
        self.positive_votes = 0
        self.negative_votes = 0
        self.flag = False


class ElasticSketch:
    """Heavy + Light measurement structure over integer flow ids."""

    def __init__(self, config: Optional[ElasticSketchConfig] = None):
        self.config = config or ElasticSketchConfig()
        self._buckets = [HeavyBucket() for _ in range(self.config.heavy_buckets)]
        self._light = CountMinSketch(
            self.config.light_width,
            self.config.light_depth,
            seed=self.config.seed ^ 0x119447,
        )
        self._seed = self.config.seed
        # Hot-path caches for the per-packet insert: bucket count, the
        # pre-xored bucket hash seed, and the ostracism threshold.
        self._n_buckets = len(self._buckets)
        self._bucket_seed = self.config.seed ^ 0x4EA71
        self._lambda = self.config.ostracism_lambda
        self.evictions = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _bucket_of(self, flow_id: int) -> HeavyBucket:
        index = hash32(flow_id, self._bucket_seed) % self._n_buckets
        return self._buckets[index]

    def insert(self, flow_id: int, nbytes: int) -> None:
        """Record ``nbytes`` of flow ``flow_id`` (one per-packet call)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.total_bytes += nbytes
        bucket = self._buckets[hash32(flow_id, self._bucket_seed) % self._n_buckets]

        if bucket.flow_id is None:
            bucket.flow_id = flow_id
            bucket.positive_votes = nbytes
            bucket.negative_votes = 0
            bucket.flag = False
            return

        if bucket.flow_id == flow_id:
            bucket.positive_votes += nbytes
            return

        # Collision: vote against the resident.
        bucket.negative_votes += nbytes
        if (
            bucket.positive_votes > 0
            and bucket.negative_votes >= self._lambda * bucket.positive_votes
        ):
            # Ostracism: flush the resident to the Light Part and seat
            # the challenger with its flag raised.
            self._light.insert(bucket.flow_id, bucket.positive_votes)
            bucket.flow_id = flow_id
            bucket.positive_votes = nbytes
            bucket.negative_votes = 0
            bucket.flag = True
            self.evictions += 1
        else:
            self._light.insert(flow_id, nbytes)

    # ``observe`` is the MeasurementPoint interface used by switches.
    observe = insert

    def query(self, flow_id: int) -> int:
        """Estimated bytes for ``flow_id`` since the last reset."""
        bucket = self._bucket_of(flow_id)
        if bucket.flow_id == flow_id:
            estimate = bucket.positive_votes
            if bucket.flag:
                estimate += self._light.query(flow_id)
            return estimate
        return self._light.query(flow_id)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def read_heavy(self) -> Dict[int, int]:
        """Per-flow byte estimates for all Heavy Part residents."""
        result: Dict[int, int] = {}
        for bucket in self._buckets:
            if bucket.flow_id is None:
                continue
            estimate = bucket.positive_votes
            if bucket.flag:
                estimate += self._light.query(bucket.flow_id)
            result[bucket.flow_id] = result.get(bucket.flow_id, 0) + estimate
        return result

    def unattributed_bytes(self) -> int:
        """Bytes in the Light Part not claimed by a flagged resident.

        A coarse residual used only for diagnostics — per-flow accuracy
        experiments work off :meth:`read_heavy`.
        """
        claimed = sum(
            self._light.query(b.flow_id)
            for b in self._buckets
            if b.flow_id is not None and b.flag
        )
        return max(self._light.total_inserted - claimed, 0)

    def reset(self) -> None:
        """Clear all state (the per-interval register reset)."""
        for bucket in self._buckets:
            bucket.clear()
        self._light.reset()
        self.total_bytes = 0

    def read_and_reset(self) -> Dict[int, int]:
        """Atomic read-then-clear, as the control-plane agent does."""
        result = self.read_heavy()
        self.reset()
        return result

    def memory_bytes(self) -> int:
        """SRAM footprint: heavy buckets (13 B each: 4 B flowID, 4 B
        vote+, 4 B vote-, 1 B flag) plus light counters."""
        return len(self._buckets) * 13 + self._light.memory_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElasticSketch(heavy={len(self._buckets)}, "
            f"light={self._light.width}x{self._light.depth})"
        )
