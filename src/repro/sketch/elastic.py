"""Elastic Sketch (Yang et al., SIGCOMM 2018).

The data-plane measurement structure Paraleon deploys at ToR switches.
It splits traffic between:

* a **Heavy Part** — an array of buckets, each holding one candidate
  elephant flow as ``(flowID, vote+, flag, vote-)``.  ``vote+`` counts
  the resident flow's bytes, ``vote-`` counts bytes of colliding
  flows.  When ``vote- / vote+`` exceeds the *ostracism* threshold λ
  the resident is evicted: its ``vote+`` is flushed into the Light
  Part and the challenger takes the bucket with its ``flag`` set
  (meaning part of its earlier traffic may live in the Light Part).
* a **Light Part** — a count-min sketch absorbing ostracized and
  colliding (mice) traffic.

``query`` combines both parts and never undercounts a flow that is
resident in the Heavy Part.  The switch control-plane agent
periodically calls :meth:`read_heavy` + :meth:`reset` (Section III-B),
which is exactly the register read-and-clear cycle the paper performs
on the Tofino.

Layout: the Heavy Part is **columnar** — four parallel numpy arrays
(``flow_id``, ``vote+``, ``vote-``, ``flag``) instead of an array of
bucket objects.  The per-packet scalar :meth:`insert` indexes the
columns directly; the batched :meth:`insert_batch` used by the switch
observation buffer runs a two-phase kernel:

1. **fast path** — packets whose bucket already holds their own flow,
   in a batch where *no other flow* touches that bucket, only ever add
   to ``vote+``.  Those additions commute exactly (int64), so they are
   applied as one grouped scatter-add (``np.add.at``).
2. **slow path** — every packet aimed at a bucket that is empty, holds
   a different flow, or is contested within the batch replays through
   the scalar rule *in original arrival order*, so ostracism decisions
   and eviction counts are bit-identical to sequential insertion.  The
   Light-Part inserts the slow path emits are themselves batched at the
   end (count-min addition commutes exactly too).

A hypothesis property test drives random and ostracism-heavy
adversarial streams through both paths and asserts state equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sketch.cm import CountMinSketch
from repro.sketch.hashing import hash32, hash32_array
from repro.telemetry.registry import get_registry

_BATCH_PACKETS = get_registry().counter(
    "repro_sketch_batch_packets_total",
    "Packets inserted through ElasticSketch.insert_batch",
)
_BATCH_FAST = get_registry().counter(
    "repro_sketch_batch_fastpath_total",
    "Batch packets handled by the vectorized resident-hit fast path",
)
_BATCH_SLOW = get_registry().counter(
    "repro_sketch_batch_slowpath_total",
    "Batch packets replayed through the scalar collision fallback",
)


@dataclass(frozen=True)
class ElasticSketchConfig:
    """Provisioning of one Elastic Sketch instance."""

    heavy_buckets: int = 1024
    light_width: int = 4096
    light_depth: int = 2
    ostracism_lambda: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heavy_buckets < 1:
            raise ValueError("heavy_buckets must be >= 1")
        if self.light_width < 1 or self.light_depth < 1:
            raise ValueError("light part dimensions must be >= 1")
        if self.ostracism_lambda <= 0:
            raise ValueError("ostracism_lambda must be positive")


class ElasticSketch:
    """Heavy + Light measurement structure over non-negative flow ids."""

    def __init__(self, config: Optional[ElasticSketchConfig] = None):
        self.config = config or ElasticSketchConfig()
        n = self.config.heavy_buckets
        # Columnar Heavy Part: one row per bucket, -1 flow id = empty.
        self._flow_id = np.full(n, -1, dtype=np.int64)
        self._pos = np.zeros(n, dtype=np.int64)
        self._neg = np.zeros(n, dtype=np.int64)
        self._flag = np.zeros(n, dtype=bool)
        self._light = CountMinSketch(
            self.config.light_width,
            self.config.light_depth,
            seed=self.config.seed ^ 0x119447,
        )
        self._seed = self.config.seed
        # Hot-path caches for the per-packet insert: bucket count, the
        # pre-xored bucket hash seed, and the ostracism threshold.
        self._n_buckets = n
        self._bucket_seed = self.config.seed ^ 0x4EA71
        self._lambda = self.config.ostracism_lambda
        #: Lifetime eviction count (diagnostics; survives resets).
        self.evictions = 0
        #: Evictions since the last :meth:`reset` (per monitor interval).
        self.interval_evictions = 0
        #: ``interval_evictions`` of the interval most recently closed
        #: by :meth:`read_and_reset`.
        self.last_interval_evictions = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def insert(self, flow_id: int, nbytes: int) -> None:
        """Record ``nbytes`` of flow ``flow_id`` (one per-packet call)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if flow_id < 0:
            raise ValueError("flow_id must be >= 0")
        self.total_bytes += nbytes
        index = hash32(flow_id, self._bucket_seed) % self._n_buckets
        self._insert_at(index, flow_id, nbytes, self._light.insert)

    def _insert_at(self, index, flow_id, nbytes, light_insert) -> None:
        """The scalar bucket rule, shared by insert and the slow path.

        ``light_insert`` receives any Light-Part traffic the rule
        emits: the real ``CountMinSketch.insert`` on the per-packet
        path, a deferred-batch collector on the slow path.
        """
        fids = self._flow_id
        pos = self._pos
        resident = fids[index]

        if resident < 0:
            fids[index] = flow_id
            pos[index] = nbytes
            self._neg[index] = 0
            self._flag[index] = False
            return

        if resident == flow_id:
            pos[index] += nbytes
            return

        # Collision: vote against the resident.
        neg = self._neg
        neg[index] += nbytes
        positive = pos[index]
        if positive > 0 and neg[index] >= self._lambda * positive:
            # Ostracism: flush the resident to the Light Part and seat
            # the challenger with its flag raised.
            light_insert(int(resident), int(positive))
            fids[index] = flow_id
            pos[index] = nbytes
            neg[index] = 0
            self._flag[index] = True
            self.evictions += 1
            self.interval_evictions += 1
        else:
            light_insert(flow_id, nbytes)

    # ``observe`` is the MeasurementPoint interface used by switches.
    observe = insert

    def insert_batch(self, flow_ids: np.ndarray, nbytes: np.ndarray) -> None:
        """Insert a packet batch, bit-identical to sequential inserts.

        ``flow_ids`` / ``nbytes`` are positionally aligned vectors in
        arrival order.  See the module docstring for the two-phase
        fast/slow split; the telemetry counters
        ``repro_sketch_batch_{fastpath,slowpath}_total`` record how the
        split worked out.
        """
        ids = np.asarray(flow_ids, dtype=np.int64)
        vals = np.asarray(nbytes, dtype=np.int64)
        if ids.size == 0:
            return
        if vals.min() < 0:
            raise ValueError("nbytes must be >= 0")
        if ids.min() < 0:
            raise ValueError("flow_id must be >= 0")
        self.total_bytes += int(vals.sum())

        index = hash32_array(ids, self._bucket_seed) % self._n_buckets
        clean = self._flow_id[index] == ids
        slow_positions = np.flatnonzero(~clean)
        if slow_positions.size:
            # A bucket is fast-path only while *every* packet aimed at
            # it this batch hits its resident; one contested packet
            # sends the whole bucket through the ordered scalar replay.
            contested = np.zeros(self._n_buckets, dtype=bool)
            contested[index[slow_positions]] = True
            fast = clean & ~contested[index]
        else:
            fast = clean

        n_fast = int(np.count_nonzero(fast))
        _BATCH_PACKETS.inc(ids.size)
        _BATCH_FAST.inc(n_fast)
        _BATCH_SLOW.inc(ids.size - n_fast)

        if n_fast:
            # Resident-hit additions commute exactly in int64: a
            # grouped scatter-add equals per-packet sequential adds.
            np.add.at(self._pos, index[fast], vals[fast])

        if n_fast != ids.size:
            slow = np.flatnonzero(~fast)
            slow_buckets = index[slow]
            # Hoist the contested buckets' registers into plain Python
            # ints once, replay the scalar rule on those (dict lookups
            # and int arithmetic, no per-packet numpy item access), and
            # scatter the final registers back.  Fast and slow bucket
            # sets are disjoint — one contested packet drags its whole
            # bucket here — so the ordering vs the scatter-add above is
            # immaterial.
            touched = np.unique(slow_buckets)
            state = {
                bucket: [fid, pos, neg, flag]
                for bucket, fid, pos, neg, flag in zip(
                    touched.tolist(),
                    self._flow_id[touched].tolist(),
                    self._pos[touched].tolist(),
                    self._neg[touched].tolist(),
                    self._flag[touched].tolist(),
                )
            }
            lam = self._lambda
            evicted = 0
            # Divert the scalar rule's Light-Part traffic into a local
            # batch: CM addition commutes, so deferring it is exact.
            pending_keys: list = []
            pending_vals: list = []
            push_key = pending_keys.append
            push_val = pending_vals.append
            for bucket, fid, val in zip(
                slow_buckets.tolist(), ids[slow].tolist(), vals[slow].tolist()
            ):
                row = state[bucket]
                resident = row[0]
                if resident < 0:
                    row[0] = fid
                    row[1] = val
                    row[2] = 0
                    row[3] = False
                elif resident == fid:
                    row[1] += val
                else:
                    row[2] += val
                    positive = row[1]
                    if positive > 0 and row[2] >= lam * positive:
                        push_key(resident)
                        push_val(positive)
                        row[0] = fid
                        row[1] = val
                        row[2] = 0
                        row[3] = True
                        evicted += 1
                    else:
                        push_key(fid)
                        push_val(val)
            replayed = [state[b] for b in touched.tolist()]
            self._flow_id[touched] = [r[0] for r in replayed]
            self._pos[touched] = [r[1] for r in replayed]
            self._neg[touched] = [r[2] for r in replayed]
            self._flag[touched] = [r[3] for r in replayed]
            self.evictions += evicted
            self.interval_evictions += evicted
            if pending_keys:
                self._light.insert_batch(
                    np.asarray(pending_keys, dtype=np.int64),
                    np.asarray(pending_vals, dtype=np.int64),
                )

    # ``observe_batch`` is the batched MeasurementPoint interface the
    # switch observation buffer flushes into.
    observe_batch = insert_batch

    def query(self, flow_id: int) -> int:
        """Estimated bytes for ``flow_id`` since the last reset."""
        index = hash32(flow_id, self._bucket_seed) % self._n_buckets
        if self._flow_id[index] == flow_id:
            estimate = int(self._pos[index])
            if self._flag[index]:
                estimate += self._light.query(flow_id)
            return estimate
        return self._light.query(flow_id)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def read_heavy_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(flow_ids, estimates)`` for all Heavy Part residents.

        Bucket-index order, one row per occupied bucket.  Every flow
        hashes to exactly one bucket so the ids are distinct; the
        values match :meth:`read_heavy` entry-for-entry.
        """
        occupied = np.flatnonzero(self._flow_id >= 0)
        ids = self._flow_id[occupied]
        estimates = self._pos[occupied].copy()
        flagged = self._flag[occupied]
        if flagged.any():
            estimates[flagged] += self._light.query_batch(ids[flagged])
        return ids, estimates

    def read_heavy(self) -> Dict[int, int]:
        """Per-flow byte estimates for all Heavy Part residents."""
        ids, estimates = self.read_heavy_arrays()
        result: Dict[int, int] = {}
        for flow_id, estimate in zip(ids.tolist(), estimates.tolist()):
            result[flow_id] = result.get(flow_id, 0) + estimate
        return result

    def unattributed_bytes(self) -> int:
        """Bytes in the Light Part not claimed by a flagged resident.

        A coarse residual used only for diagnostics — per-flow accuracy
        experiments work off :meth:`read_heavy`.
        """
        flagged = (self._flow_id >= 0) & self._flag
        claimed = int(
            self._light.query_batch(self._flow_id[flagged]).sum()
        ) if flagged.any() else 0
        return max(self._light.total_inserted - claimed, 0)

    def reset(self) -> None:
        """Clear per-interval state (the register reset).

        ``evictions`` (the lifetime total) deliberately survives —
        diagnostics accumulate it across a whole run — while
        ``interval_evictions`` restarts so each interval reports only
        its own ostracism activity.
        """
        self._flow_id.fill(-1)
        self._pos.fill(0)
        self._neg.fill(0)
        self._flag.fill(False)
        self._light.reset()
        self.total_bytes = 0
        self.interval_evictions = 0

    def read_and_reset(self) -> Dict[int, int]:
        """Atomic read-then-clear, as the control-plane agent does.

        Also latches :attr:`last_interval_evictions` so per-interval
        eviction reporting survives the clear.
        """
        result = self.read_heavy()
        self.last_interval_evictions = self.interval_evictions
        self.reset()
        return result

    def read_and_reset_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Array-form :meth:`read_and_reset` (the batched agent path)."""
        ids, estimates = self.read_heavy_arrays()
        self.last_interval_evictions = self.interval_evictions
        self.reset()
        return ids, estimates

    def memory_bytes(self) -> int:
        """SRAM footprint: heavy buckets (13 B each: 4 B flowID, 4 B
        vote+, 4 B vote-, 1 B flag) plus light counters."""
        return self._n_buckets * 13 + self._light.memory_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElasticSketch(heavy={self._n_buckets}, "
            f"light={self._light.width}x{self._light.depth})"
        )
