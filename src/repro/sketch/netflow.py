"""NetFlow-style sampled flow accounting (monitoring baseline).

The paper compares Paraleon's sketch pipeline against the monitoring
available on commodity switches: NetFlow with 1:100 packet sampling
and an O(seconds) export interval.  Two error sources follow directly
from that design and both show up in Fig. 10/11:

* sampling noise — a sampled packet stands in for ``sampling_rate``
  packets' worth of bytes, so small flows are frequently missed
  entirely and estimates are quantized;
* staleness — flow records are only exported once per
  ``export_interval``, far slower than traffic shifts in an RDMA
  cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class NetFlowConfig:
    """Sampling and export settings (defaults per Section IV-B)."""

    sampling_rate: int = 100      # 1:N packet sampling
    export_interval: float = 1.0  # seconds
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        if self.export_interval <= 0:
            raise ValueError("export_interval must be positive")


class NetFlowMonitor:
    """Per-switch sampled flow cache with periodic export."""

    def __init__(self, config: NetFlowConfig = NetFlowConfig()):
        self.config = config
        self._rng = random.Random(config.seed ^ 0x4E7F10)
        self._cache: Dict[int, int] = {}
        self._last_export: Dict[int, int] = {}
        self._last_export_time = 0.0
        self.packets_seen = 0
        self.packets_sampled = 0

    def observe(self, flow_id: int, wire_bytes: int) -> None:
        """Data-plane hook: sample 1:N packets, scale bytes up by N."""
        self.packets_seen += 1
        if self._rng.randrange(self.config.sampling_rate) != 0:
            return
        self.packets_sampled += 1
        scaled = wire_bytes * self.config.sampling_rate
        self._cache[flow_id] = self._cache.get(flow_id, 0) + scaled

    def maybe_export(self, now: float) -> Dict[int, int]:
        """Export the flow cache if the export interval elapsed.

        Returns the most recent export — between exports the consumer
        keeps seeing stale records, which is the staleness the paper's
        comparison highlights.
        """
        if now - self._last_export_time >= self.config.export_interval:
            self._last_export = dict(self._cache)
            self._cache = {}
            self._last_export_time = now
        return self._last_export

    def read_and_reset(self) -> Dict[int, int]:
        """Force an export now (used by unit tests)."""
        result = dict(self._cache)
        self._cache = {}
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetFlowMonitor(1:{self.config.sampling_rate}, "
            f"export={self.config.export_interval}s)"
        )
