"""Sketch-based and sampling-based traffic measurement substrates."""

from repro.sketch.hashing import hash32, hash_family
from repro.sketch.cm import CountMinSketch
from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig, HeavyBucket
from repro.sketch.netflow import NetFlowMonitor, NetFlowConfig

__all__ = [
    "hash32",
    "hash_family",
    "CountMinSketch",
    "ElasticSketch",
    "ElasticSketchConfig",
    "HeavyBucket",
    "NetFlowMonitor",
    "NetFlowConfig",
]
