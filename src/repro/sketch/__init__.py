"""Sketch-based and sampling-based traffic measurement substrates."""

from repro.sketch.hashing import hash32, hash32_array, hash_family, hash_family_seeds
from repro.sketch.cm import CountMinSketch
from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig
from repro.sketch.netflow import NetFlowMonitor, NetFlowConfig

__all__ = [
    "hash32",
    "hash32_array",
    "hash_family",
    "hash_family_seeds",
    "CountMinSketch",
    "ElasticSketch",
    "ElasticSketchConfig",
    "NetFlowMonitor",
    "NetFlowConfig",
]
