"""Stdlib-logging shim: diagnostics to stderr, user output to stdout.

Every module in ``repro`` that previously reached for a bare
``print()`` now goes through this module:

* :func:`get_logger` — a child of the ``repro`` logger hierarchy.
  The root ``repro`` logger writes to **stderr** with a timestamped
  format; its level comes from the ``REPRO_LOG_LEVEL`` environment
  variable (default ``WARNING``), so diagnostics are silent by default
  and turn on without code changes.
* :func:`echo` — intentional **stdout** user-facing output (CLI
  tables, summaries).  Keeping it here, not in call sites as bare
  ``print``, separates "the product of the command" (stdout, pipeable)
  from "how it's going" (stderr, loggable) everywhere in the package.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro import env

_ROOT_NAME = "repro"
_configured = False


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream at handler creation would pin the stderr object
    that happened to be installed when the first logger was requested —
    wrong under capture harnesses (pytest capsys) and stream rebinding.
    """

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # the base __init__ assigns; ignore
        pass


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = _DynamicStderrHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level_from_env())
    root.propagate = False
    _configured = True


def level_from_env(default: int = logging.WARNING) -> int:
    """Resolve ``REPRO_LOG_LEVEL`` (name or number) to a logging level."""
    raw = env.raw("REPRO_LOG_LEVEL") or ""
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    return getattr(logging, raw.upper(), default)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (stderr, env-leveled)."""
    _configure_root()
    if name:
        return logging.getLogger(f"{_ROOT_NAME}.{name}")
    return logging.getLogger(_ROOT_NAME)


def set_level(level: int) -> None:
    """Override the package log level programmatically."""
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(level)


def echo(message: object = "") -> None:
    """User-facing output on stdout (the CLI's deliverable)."""
    sys.stdout.write(f"{message}\n")


def eecho(message: object = "") -> None:
    """User-facing *error* output on stderr (usage errors)."""
    sys.stderr.write(f"{message}\n")
