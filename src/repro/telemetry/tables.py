"""Monospace table and series rendering primitives.

Shared by the trace summariser (:mod:`repro.telemetry.summary`), the
run-report renderer and the benchmark output helpers in
:mod:`repro.experiments.report`.  Lives in the telemetry layer — the
lowest consumer — so nothing below the experiments layer has to
import upward just to print a table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with per-column width fitting."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    pairs: Sequence[Tuple[float, float]],
    x_label: str = "t",
    y_label: str = "y",
    max_points: int = 24,
) -> str:
    """Compact (x, y) series dump for figure-style benchmarks."""
    if len(pairs) > max_points:
        step = max(1, len(pairs) // max_points)
        pairs = list(pairs[::step])
    body = "  ".join(f"({_fmt(x)},{_fmt(y)})" for x, y in pairs)
    return f"{name} [{x_label},{y_label}]: {body}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
