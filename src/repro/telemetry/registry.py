"""Process-local metrics registry: counters, gauges, histograms.

Zero dependencies, thread-aware, and — the property the parallel
fabric needs — *fork-mergeable*: a worker process accumulates into its
own process-global registry, ships a plain-dict :meth:`MetricsRegistry.
snapshot` back with its results, and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot`.  Merge semantics are the usual
ones for distributed scrape aggregation:

* counters add;
* histograms add bucket-wise (bounds must match);
* gauges take the maximum (a gauge is a level, not a flow; max is the
  only order-free combinator that never *undercounts* a high-water
  mark such as heap size or freelist occupancy).

Metric names follow Prometheus conventions (``repro_*_total`` for
counters, base units in seconds/bytes) and both a Prometheus text
exposition (:meth:`MetricsRegistry.to_prometheus`) and a JSON dump
(:meth:`MetricsRegistry.to_json`) are built in, so a sweep can be
scraped or archived without any client library.

Mutation on the hot path is lock-free on CPython (a counter ``inc`` is
a single float add under the GIL); the registry lock only guards
metric *creation*, snapshotting and merging, which are rare.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Instantaneous level (heap size, occupancy, temperature)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


#: Default latency bucket bounds in seconds (upper-inclusive, like
#: Prometheus ``le``); an overflow (+Inf) bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)

#: Bucket bounds for quantities already normalized to [0, 1].
UNIT_INTERVAL_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0
)


class Histogram:
    """Fixed-bound histogram with Prometheus ``le`` semantics.

    ``bounds`` are strictly increasing upper bounds; an observation
    ``v`` lands in the first bucket whose bound satisfies ``v <= bound``
    (bound-equal values are *included*), or in the implicit overflow
    bucket past the last bound.  Bucket counts are stored
    non-cumulative; exporters cumulate on the way out.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float], help: str = ""):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (last entry is +Inf)."""
        return list(self.counts)

    def cumulative(self) -> List[int]:
        """Cumulative counts, one per bound plus +Inf — ``le`` style."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Name-addressed collection of metrics for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- creation / lookup ---------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, self._counters)
                metric = self._counters[name] = Counter(name, help)
            return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, self._gauges)
                metric = self._gauges[name] = Gauge(name, help)
            return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, bounds, help)
            elif metric.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    f"bounds"
                )
            return metric

    def _check_free(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    f"different type"
                )

    # -- snapshot / merge (the fork protocol) ---------------------------

    def snapshot(self, reset: bool = False) -> dict:
        """Plain-dict dump of every metric (JSON- and pickle-safe).

        ``reset=True`` zeroes the registry atomically with the read —
        a pool worker calls this once per chunk so each chunk's delta
        is merged into the parent exactly once.
        """
        with self._lock:
            snap = {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for n, h in self._histograms.items()
                },
            }
            if reset:
                for c in self._counters.values():
                    c._value = 0.0
                for g in self._gauges.values():
                    g._value = 0.0
                for h in self._histograms.values():
                    h.counts = [0] * (len(h.bounds) + 1)
                    h.sum = 0.0
                    h.count = 0
            return snap

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold a child snapshot into this registry (see module doc)."""
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if value > gauge.value:
                gauge.set(value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name, data["bounds"])
            with self._lock:
                if list(hist.bounds) != list(data["bounds"]):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bound mismatch"
                    )
                counts = data["counts"]
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.sum += data["sum"]
                hist.count += data["count"]

    # -- exporters -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                c = self._counters[name]
                if c.help:
                    lines.append(f"# HELP {name} {c.help}")
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt_value(c.value)}")
            for name in sorted(self._gauges):
                g = self._gauges[name]
                if g.help:
                    lines.append(f"# HELP {name} {g.help}")
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt_value(g.value)}")
            for name in sorted(self._histograms):
                h = self._histograms[name]
                if h.help:
                    lines.append(f"# HELP {name} {h.help}")
                lines.append(f"# TYPE {name} histogram")
                cumulative = h.cumulative()
                for bound, count in zip(h.bounds, cumulative):
                    lines.append(
                        f'{name}_bucket{{le="{_fmt_value(bound)}"}} {count}'
                    )
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{name}_sum {_fmt_value(h.sum)}")
                lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + "\n"

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every registered metric in place (tests, fresh runs).

        Metrics stay registered: instrumentation sites hold module-level
        references to the metric objects, so dropping them would orphan
        every call site. Zeroing preserves those references.
        """
        self.snapshot(reset=True)


def _fmt_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


#: The process-global registry every instrumentation site uses.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY
