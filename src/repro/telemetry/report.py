"""Render flight-recorder snapshots into self-contained run reports.

Consumes the plain-dict snapshots produced by
:mod:`repro.telemetry.recorder` and renders either a single-file HTML
report (inline SVG charts, no external assets, openable from a CI
artifact) or a markdown digest.  The HTML mirrors the paper's
evaluation style: an FCT CDF by flow-size class (Fig. 7), queue-depth
and DCQCN rate/alpha time series, PFC pause events, and the utility
breakdown into its O_TP / O_RTT / O_PFC terms — plus, optionally, the
trace layer's per-span self-time table.

Also home to :func:`bench_trend`, the analysis behind
``python -m repro bench trend``: it walks the committed ``BENCH_*.json``
history and reports per-metric deltas and regressions across PRs.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import trace
from .tables import format_table

_PALETTE = ("#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2")

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1f2937; }
h1 { border-bottom: 2px solid #e5e7eb; padding-bottom: .3rem; }
section { margin: 1.5rem 0; }
svg { background: #f9fafb; border: 1px solid #e5e7eb; }
table { border-collapse: collapse; }
td, th { border: 1px solid #d1d5db; padding: .25rem .6rem; text-align: right; }
th { background: #f3f4f6; }
.legend span { margin-right: 1rem; font-size: .85rem; }
pre { background: #f9fafb; border: 1px solid #e5e7eb; padding: .6rem;
      overflow-x: auto; font-size: .8rem; }
.note { color: #6b7280; font-style: italic; }
"""


# ---------------------------------------------------------------------------
# Inline-SVG chart primitives
# ---------------------------------------------------------------------------


def _polyline(xs: Sequence[float], ys: Sequence[float],
              x_range: Tuple[float, float], y_range: Tuple[float, float],
              width: int, height: int, pad: int) -> str:
    x_lo, x_hi = x_range
    y_lo, y_hi = y_range
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    points = []
    for x, y in zip(xs, ys):
        px = pad + (x - x_lo) / x_span * (width - 2 * pad)
        py = height - pad - (y - y_lo) / y_span * (height - 2 * pad)
        points.append(f"{px:.1f},{py:.1f}")
    return " ".join(points)


def _svg_chart(series: List[Tuple[str, Sequence[float], Sequence[float]]],
               width: int = 640, height: int = 220,
               y_label: str = "") -> str:
    """Line chart of ``(name, xs, ys)`` series as one inline SVG."""
    xs_all = [x for _, xs, _ in series for x in xs]
    ys_all = [y for _, _, ys in series for y in ys]
    if not xs_all:
        return '<p class="note">no samples</p>'
    x_range = (min(xs_all), max(xs_all))
    y_range = (min(min(ys_all), 0.0), max(max(ys_all), 1e-12))
    pad = 32
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    axis = (
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#9ca3af"/>'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        f'stroke="#9ca3af"/>'
    )
    parts.append(axis)
    parts.append(
        f'<text x="{pad}" y="{pad - 8}" font-size="11" fill="#6b7280">'
        f"{_html.escape(y_label)} (max {y_range[1]:.4g})</text>"
    )
    for i, (name, xs, ys) in enumerate(series):
        color = _PALETTE[i % len(_PALETTE)]
        pts = _polyline(xs, ys, x_range, y_range, width, height, pad)
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{pts}"><title>{_html.escape(name)}</title></polyline>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span style="color:{_PALETTE[i % len(_PALETTE)]}">&#9632; '
        f"{_html.escape(name)}</span>"
        for i, (name, _, _) in enumerate(series)
    )
    return "".join(parts) + f'<div class="legend">{legend}</div>'


def _cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    ordered = sorted(values)
    n = len(ordered)
    return list(ordered), [(i + 1) / n for i in range(n)]


# ---------------------------------------------------------------------------
# Section builders
# ---------------------------------------------------------------------------


def _fct_section(snap: Dict[str, Any]) -> str:
    # Lazy: experiments.fct imports simulator modules; keeping the
    # telemetry package import-light mirrors summary.py's table import.
    from repro.experiments.fct import DEFAULT_SIZE_BUCKETS, bucket_label

    flows = snap.get("flows") or []
    if not flows:
        return (
            '<section id="fct-cdf"><h2>FCT CDF by flow class</h2>'
            '<p class="note">no flows completed in this run</p></section>'
        )
    series = []
    for low, high in DEFAULT_SIZE_BUCKETS:
        fcts = [f["fct"] for f in flows if low <= f["size"] < high]
        if fcts:
            xs, ys = _cdf(fcts)
            series.append((f"{bucket_label(low, high)} (n={len(fcts)})", xs, ys))
    chart = _svg_chart(series, y_label="P(FCT <= x)")
    total = snap.get("flows_total", len(flows))
    note = ""
    if total > len(flows):
        note = (
            f'<p class="note">{len(flows)} of {total} completed flows '
            "retained (deterministic decimation)</p>"
        )
    return (
        '<section id="fct-cdf"><h2>FCT CDF by flow class</h2>'
        f"{chart}{note}</section>"
    )


def _queue_section(snap: Dict[str, Any]) -> str:
    time = snap.get("time") or []
    switches = snap.get("switches") or {}
    series = [
        (name, time, data["queue_bytes"]) for name, data in switches.items()
    ]
    chart = _svg_chart(series, y_label="egress queue bytes")
    return (
        '<section id="queue-depth"><h2>Queue depth</h2>'
        f"{chart}</section>"
    )


def _rate_alpha_section(snap: Dict[str, Any]) -> str:
    time = snap.get("time") or []
    qp = snap.get("qp") or {}
    rate_chart = _svg_chart(
        [
            ("rate mean", time, qp.get("rate_mean", [])),
            ("rate min", time, qp.get("rate_min", [])),
        ],
        y_label="DCQCN rate (bit/s)",
    )
    alpha_chart = _svg_chart(
        [
            ("alpha mean", time, qp.get("alpha_mean", [])),
            ("alpha max", time, qp.get("alpha_max", [])),
        ],
        y_label="DCQCN alpha",
    )
    return (
        '<section id="rate-alpha"><h2>DCQCN rate / alpha</h2>'
        f"{rate_chart}{alpha_chart}</section>"
    )


def _pfc_section(snap: Dict[str, Any]) -> str:
    time = snap.get("time") or []
    switches = snap.get("switches") or {}
    series = [
        (name, time, data["pfc_pauses"]) for name, data in switches.items()
    ]
    rows = "".join(
        f"<tr><td>{_html.escape(name)}</td>"
        f"<td>{data['pfc_pauses'][-1] if data['pfc_pauses'] else 0}</td>"
        f"<td>{data['ecn_marked'][-1] if data['ecn_marked'] else 0}</td>"
        f"<td>{data['dropped'][-1] if data['dropped'] else 0}</td></tr>"
        for name, data in switches.items()
    )
    table = (
        "<table><tr><th>switch</th><th>PFC pauses</th>"
        f"<th>ECN marked</th><th>dropped</th></tr>{rows}</table>"
    )
    chart = _svg_chart(series, y_label="cumulative PFC pauses")
    return (
        '<section id="pfc-events"><h2>PFC events</h2>'
        f"{chart}{table}</section>"
    )


def _utility_section(snap: Dict[str, Any]) -> str:
    net = snap.get("network") or {}
    weights = (snap.get("meta") or {}).get("weights")
    time = snap.get("time") or []

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    components = [
        ("O_TP", mean(net.get("throughput_util", []))),
        ("O_RTT", mean(net.get("norm_rtt", []))),
        ("O_PFC", mean(net.get("pfc_ok", []))),
    ]
    rows = []
    for i, (name, value) in enumerate(components):
        weight = weights[i] if weights and len(weights) == 3 else None
        contrib = f"{weight * value:.4f}" if weight is not None else "-"
        wtext = f"{weight:.2f}" if weight is not None else "-"
        rows.append(
            f"<tr><td>{name}</td><td>{value:.4f}</td>"
            f"<td>{wtext}</td><td>{contrib}</td></tr>"
        )
    table = (
        "<table><tr><th>term</th><th>mean</th><th>weight</th>"
        f"<th>contribution</th></tr>{''.join(rows)}"
        f"<tr><th>U</th><td>{mean(net.get('utility', [])):.4f}</td>"
        "<td></td><td></td></tr></table>"
    )
    chart = _svg_chart(
        [
            ("utility", time, net.get("utility", [])),
            ("O_TP", time, net.get("throughput_util", [])),
            ("O_RTT", time, net.get("norm_rtt", [])),
            ("O_PFC", time, net.get("pfc_ok", [])),
        ],
        y_label="utility",
    )
    return (
        '<section id="utility"><h2>Utility breakdown</h2>'
        f"{chart}{table}</section>"
    )


def _meta_section(snap: Dict[str, Any]) -> str:
    meta = snap.get("meta") or {}
    samples = snap.get("samples") or {}
    rows = "".join(
        f"<tr><td>{_html.escape(str(k))}</td>"
        f"<td>{_html.escape(str(v))}</td></tr>"
        for k, v in list(meta.items()) + [
            ("samples seen", samples.get("seen")),
            ("samples kept", samples.get("kept")),
            ("decimation stride", samples.get("stride")),
            ("flows recorded", len(snap.get("flows") or [])),
        ]
    )
    return (
        '<section id="run-meta"><h2>Run metadata</h2>'
        f"<table>{rows}</table></section>"
    )


def _control_plane_section(snap: Dict[str, Any]) -> str:
    """Tier byte totals + Table IV comparison for controlplane runs."""
    cp = snap.get("control_plane")
    if not cp:
        return ""
    intervals = cp.get("intervals") or 0
    agents = cp.get("agents") or 0
    per_switch = cp.get("per_switch_report_bytes") or 0.0
    tier_rows = "".join(
        f"<tr><td>{label}</td><td>{senders}</td>"
        f"<td>{cp.get(key, 0)}</td></tr>"
        for label, senders, key in (
            ("agent &rarr; rack", agents, "agent_rack_bytes"),
            ("rack &rarr; pod", cp.get("racks", 0), "rack_pod_bytes"),
            ("pod &rarr; global", cp.get("pods", 0), "pod_global_bytes"),
            ("param dispatch", cp.get("tenants", 0), "param_update_bytes"),
        )
    )
    tier_table = (
        "<table><tr><th>tier</th><th>senders</th>"
        f"<th>total bytes ({intervals} intervals)</th></tr>{tier_rows}"
        "</table>"
    )
    # Table IV: the paper reports ~520 B per switch report per interval.
    table4 = (
        "<table><tr><th>quantity</th><th>paper (Table IV)</th>"
        "<th>this run</th></tr>"
        "<tr><td>switch report, per switch per interval</td>"
        f"<td>~520 B</td><td>{per_switch:.0f} B</td></tr></table>"
    )
    retunes = cp.get("retunes") or []
    retune_rows = "".join(
        f"<tr><td>{r.get('tenant')}</td><td>{r.get('trigger_interval')}</td>"
        f"<td>{r.get('finished_interval')}</td>"
        f"<td>{r.get('utility', 0.0):.4f}</td>"
        f"<td>{r.get('evaluations')}</td></tr>"
        for r in retunes
    )
    retune_table = (
        "<table><tr><th>tenant</th><th>triggered</th><th>finished</th>"
        f"<th>utility</th><th>evaluations</th></tr>{retune_rows}</table>"
        if retunes
        else "<p>no retunes fired</p>"
    )
    return (
        '<section id="control-plane"><h2>Control-plane message bytes</h2>'
        f"<p>{cp.get('shards')} shards &times; "
        f"{(agents // cp.get('shards')) if cp.get('shards') else 0} agents, "
        f"{cp.get('tenants')} tenants, strategy {cp.get('strategy')}</p>"
        f"{tier_table}{table4}<h2>Per-tenant retunes</h2>{retune_table}"
        "</section>"
    )


def _trace_section(trace_summary: Optional[Any], top: int) -> str:
    if trace_summary is None:
        return ""
    from repro.telemetry.summary import format_summary

    text = format_summary(trace_summary, top=top)
    return (
        '<section id="trace-summary"><h2>Trace span self-time</h2>'
        f"<pre>{_html.escape(text)}</pre></section>"
    )


# ---------------------------------------------------------------------------
# Public renderers
# ---------------------------------------------------------------------------


def render_html(recording: Dict[str, Any],
                trace_summary: Optional[Any] = None,
                top: int = 10) -> str:
    """A single-file HTML run report (inline CSS + SVG, no assets)."""
    mode = (recording.get("meta") or {}).get("hybrid_mode", "off")
    body = "".join(
        [
            f"<h1>Run report (engine mode: {_html.escape(str(mode))})</h1>",
            _meta_section(recording),
            _fct_section(recording),
            _queue_section(recording),
            _rate_alpha_section(recording),
            _pfc_section(recording),
            _utility_section(recording),
            _control_plane_section(recording),
            _trace_section(trace_summary, top),
        ]
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>repro run report</title><style>{_CSS}</style>"
        f"</head><body>{body}</body></html>"
    )


def render_markdown(recording: Dict[str, Any],
                    trace_summary: Optional[Any] = None,
                    top: int = 10) -> str:
    """Markdown digest of a recording (tables only, no charts)."""
    from repro.experiments.fct import DEFAULT_SIZE_BUCKETS, bucket_label

    meta = recording.get("meta") or {}
    samples = recording.get("samples") or {}
    net = recording.get("network") or {}

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    lines = [
        "# Run report",
        "",
        f"- engine mode: {meta.get('hybrid_mode', 'off')}",
        f"- hosts/switches: {meta.get('n_hosts')}/{meta.get('n_switches')}",
        f"- samples: {samples.get('kept')} kept of {samples.get('seen')} "
        f"(stride {samples.get('stride')})",
        f"- flows completed: {recording.get('flows_total', 0)}",
        f"- mean utility: {mean(net.get('utility', [])):.4f} "
        f"(O_TP {mean(net.get('throughput_util', [])):.4f}, "
        f"O_RTT {mean(net.get('norm_rtt', [])):.4f}, "
        f"O_PFC {mean(net.get('pfc_ok', [])):.4f})",
        "",
        "## FCT by flow class",
        "",
    ]
    flows = recording.get("flows") or []
    if not flows:
        lines.append("_no flows completed in this run_")
    else:
        lines.append("| class | count | mean FCT (s) | max FCT (s) |")
        lines.append("| --- | --- | --- | --- |")
        for low, high in DEFAULT_SIZE_BUCKETS:
            fcts = [f["fct"] for f in flows if low <= f["size"] < high]
            if fcts:
                lines.append(
                    f"| {bucket_label(low, high)} | {len(fcts)} "
                    f"| {sum(fcts) / len(fcts):.3g} | {max(fcts):.3g} |"
                )
    lines.extend(["", "## Switch counters", ""])
    lines.append("| switch | PFC pauses | ECN marked | dropped |")
    lines.append("| --- | --- | --- | --- |")
    for name, data in (recording.get("switches") or {}).items():
        lines.append(
            f"| {name} "
            f"| {data['pfc_pauses'][-1] if data['pfc_pauses'] else 0} "
            f"| {data['ecn_marked'][-1] if data['ecn_marked'] else 0} "
            f"| {data['dropped'][-1] if data['dropped'] else 0} |"
        )
    cp = recording.get("control_plane")
    if cp:
        lines.extend(["", "## Control-plane message bytes", ""])
        lines.append(
            f"- topology: {cp.get('shards')} shards, {cp.get('agents')} "
            f"agents, {cp.get('tenants')} tenants "
            f"({cp.get('intervals')} intervals, "
            f"strategy {cp.get('strategy')})"
        )
        lines.append("| tier | total bytes |")
        lines.append("| --- | --- |")
        lines.append(f"| agent → rack | {cp.get('agent_rack_bytes', 0)} |")
        lines.append(f"| rack → pod | {cp.get('rack_pod_bytes', 0)} |")
        lines.append(f"| pod → global | {cp.get('pod_global_bytes', 0)} |")
        lines.append(f"| param dispatch | {cp.get('param_update_bytes', 0)} |")
        lines.append("")
        lines.append("| quantity | paper (Table IV) | this run |")
        lines.append("| --- | --- | --- |")
        lines.append(
            "| switch report, per switch per interval | ~520 B | "
            f"{cp.get('per_switch_report_bytes', 0.0):.0f} B |"
        )
    if trace_summary is not None:
        from repro.telemetry.summary import format_summary

        lines.extend(
            ["", "## Trace span self-time", "", "```",
             format_summary(trace_summary, top=top), "```"]
        )
    return "\n".join(lines) + "\n"


def render(recording: Dict[str, Any], fmt: str = "html",
           trace_summary: Optional[Any] = None, top: int = 10,
           source: str = "snapshot") -> str:
    """Render a recording as ``html`` or ``markdown``."""
    if fmt not in ("html", "markdown"):
        raise ValueError(f"unknown report format {fmt!r}")
    with trace.span("report.render", {"source": source, "format": fmt}):
        if fmt == "html":
            return render_html(recording, trace_summary=trace_summary, top=top)
        return render_markdown(recording, trace_summary=trace_summary, top=top)


# ---------------------------------------------------------------------------
# Bench history trend (`python -m repro bench trend`)
# ---------------------------------------------------------------------------

#: Metric-name fragments that mean "higher is better" / "lower is better".
_HIGHER_BETTER = ("per_sec", "pps", "speedup", "hit_rate", "ratio")
_LOWER_BETTER = ("wall_s", "seconds", "_s",)


def _direction(metric: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown."""
    for frag in _HIGHER_BETTER:
        if frag in metric:
            return 1
    for frag in _LOWER_BETTER:
        if metric.endswith(frag):
            return -1
    return 0


def bench_trend(paths: Sequence[str], threshold: float = 0.10) -> Dict[str, Any]:
    """Per-metric deltas across a series of ``BENCH_*.json`` snapshots.

    ``paths`` must be ordered oldest-first (the sorted ``BENCH_*.json``
    glob is, thanks to the date suffix).  A metric regresses when the
    newest snapshot is worse than the previous one by more than
    ``threshold`` (fractionally) in its known-better direction;
    direction-unknown metrics are reported but never flagged.
    """
    loaded = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            loaded.append((path, json.load(fh)))
    metrics: List[Dict[str, Any]] = []
    regressions = 0
    if len(loaded) >= 2:
        names = set()
        for _, snap in loaded:
            for bench, values in snap.items():
                if not isinstance(values, dict):
                    continue
                for key, value in values.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    names.add((bench, key))
        for bench, key in sorted(names):
            name = f"{bench}.{key}"
            values = []
            for _, snap in loaded:
                value = snap.get(bench, {}).get(key)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    value = None
                values.append(value)
            present = [v for v in values if v is not None]
            if len(present) < 2:
                continue
            last, prev = present[-1], present[-2]
            delta = (last - prev) / abs(prev) if prev else 0.0
            direction = _direction(name)
            regressed = bool(
                direction and prev
                and (-direction * delta) > threshold
            )
            if regressed:
                regressions += 1
            metrics.append(
                {
                    "metric": name,
                    "first": present[0],
                    "prev": prev,
                    "last": last,
                    "delta": delta,
                    "direction": direction,
                    "regressed": regressed,
                }
            )
    trend = {
        "snapshots": [path for path, _ in loaded],
        "metrics": metrics,
        "regressions": regressions,
        "threshold": threshold,
    }
    if trace.active:
        trace.event(
            "bench.trend",
            {
                "snapshots": len(loaded),
                "metrics": len(metrics),
                "regressions": regressions,
            },
        )
    return trend


def format_trend(trend: Dict[str, Any]) -> str:
    """Monospace rendering of a :func:`bench_trend` result."""
    snapshots = trend["snapshots"]
    if len(snapshots) < 2:
        return (
            f"{len(snapshots)} bench snapshot(s) found; need at least two "
            "to compute a trend."
        )
    arrows = {1: "higher-better", -1: "lower-better", 0: "-"}
    rows = [
        (
            m["metric"],
            f"{m['first']:.4g}",
            f"{m['prev']:.4g}",
            f"{m['last']:.4g}",
            f"{m['delta']:+.1%}",
            arrows[m["direction"]],
            "REGRESSED" if m["regressed"] else "",
        )
        for m in trend["metrics"]
    ]
    table = format_table(
        ("metric", "first", "prev", "last", "delta", "direction", "flag"),
        rows,
        title=f"bench trend over {len(snapshots)} snapshots "
              f"({snapshots[0]} .. {snapshots[-1]})",
    )
    tail = (
        f"\n{trend['regressions']} metric(s) regressed more than "
        f"{trend['threshold']:.0%} vs the previous snapshot."
        if trend["regressions"]
        else "\nno regressions beyond threshold."
    )
    return table + tail
