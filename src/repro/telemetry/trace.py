"""Structured run tracing: append-only JSONL span/event records.

One trace file holds interleaved records from the whole run — the main
process and every pool worker append to the same file (single-`write`
lines through an ``O_APPEND`` descriptor, so lines never shear).  Each
record carries a run id, the writing pid, and a monotonic-clock
timestamp relative to that process's emitter start.

Two record kinds:

* ``event`` — a point observation (an SA step, a KL trigger decision,
  a cache lookup);
* ``span`` — a timed region, written at *close* with its start ``ts``
  and ``dur``; nesting is tracked per thread so a span records its
  parent span id.

The emitter is **off by default** and the hot path pays one module-
attribute read plus a branch when disabled: call sites guard with
``if trace.active:``.  Enable with the ``REPRO_TRACE=path`` environment
variable (inherited by pool workers) or programmatically/CLI via
:func:`configure` (which also exports the env var so workers inherit
the destination and run id).

Record schema lives in :mod:`repro.telemetry.schema`; analysis in
:mod:`repro.telemetry.summary`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro import env

#: Fast-path flag. Instrumentation sites read this before building any
#: attribute dict, so a disabled trace costs one attribute load + jump.
active: bool = False

_ENV_PATH = "REPRO_TRACE"
_ENV_RUN = "REPRO_TRACE_RUN"


class TraceEmitter:
    """Owns one open JSONL destination for this process."""

    def __init__(self, path: os.PathLike, run_id: Optional[str] = None):
        self.path = Path(path)
        self.run_id = run_id or uuid.uuid4().hex[:12]
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # Line-buffered append: each record is flushed as one write so
        # concurrent workers appending to the same file stay line-atomic.
        self._fh = open(self.path, "a", buffering=1)
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._span_ids = itertools.count(1)
        self._local = threading.local()
        self._pid = os.getpid()

    # -- internals -------------------------------------------------------

    def now(self) -> float:
        """Seconds since this emitter was created (monotonic)."""
        return time.perf_counter() - self._t0

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._fh.write(line + "\n")

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- record emission -------------------------------------------------

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        stack = self._stack()
        self._write(
            {
                "ts": round(self.now(), 9),
                "run": self.run_id,
                "pid": self._pid,
                "kind": "event",
                "name": name,
                "parent": stack[-1] if stack else None,
                "attrs": attrs or {},
            }
        )

    @contextmanager
    def span(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> Iterator[str]:
        span_id = f"{self._pid:x}.{next(self._span_ids)}"
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        start = self.now()
        try:
            yield span_id
        finally:
            stack.pop()
            self._write(
                {
                    "ts": round(start, 9),
                    "run": self.run_id,
                    "pid": self._pid,
                    "kind": "span",
                    "name": name,
                    "span": span_id,
                    "parent": parent,
                    "dur": round(self.now() - start, 9),
                    "attrs": attrs or {},
                }
            )

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - already broken pipe etc.
            pass


_emitter: Optional[TraceEmitter] = None


# ---------------------------------------------------------------------------
# Module-level API (what instrumentation sites import)
# ---------------------------------------------------------------------------


def configure(
    path: os.PathLike,
    run_id: Optional[str] = None,
    export_env: bool = True,
) -> TraceEmitter:
    """Enable tracing to ``path``; returns the active emitter.

    ``export_env=True`` (default) publishes ``REPRO_TRACE`` /
    ``REPRO_TRACE_RUN`` so pool workers spawned later join the same
    trace file under the same run id.
    """
    global _emitter, active
    if _emitter is not None:
        _emitter.close()
    _emitter = TraceEmitter(path, run_id=run_id)
    active = True
    if export_env:
        env.export_env(_ENV_PATH, _emitter.path)
        env.export_env(_ENV_RUN, _emitter.run_id)
    return _emitter


def disable(clear_env: bool = True) -> None:
    """Stop tracing, close the file, and (by default) clear the env."""
    global _emitter, active
    if _emitter is not None:
        _emitter.close()
    _emitter = None
    active = False
    if clear_env:
        env.clear_env(_ENV_PATH)
        env.clear_env(_ENV_RUN)


def is_enabled() -> bool:
    return active


def current_run_id() -> Optional[str]:
    return _emitter.run_id if _emitter is not None else None


def trace_path() -> Optional[Path]:
    return _emitter.path if _emitter is not None else None


def event(name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
    """Emit a point event (no-op when tracing is disabled)."""
    em = _emitter
    if em is not None:
        em.event(name, attrs)


@contextmanager
def span(
    name: str, attrs: Optional[Dict[str, Any]] = None
) -> Iterator[Optional[str]]:
    """Timed region; yields the span id (or None when disabled)."""
    em = _emitter
    if em is None:
        yield None
        return
    with em.span(name, attrs) as span_id:
        yield span_id


def _init_from_env() -> None:
    """Join a trace announced by the environment (pool workers)."""
    path = env.get(_ENV_PATH)
    if path is None:
        return
    configure(path, run_id=env.get(_ENV_RUN), export_env=False)


_init_from_env()
