"""Trace record schema: the contract between emitters and analyzers.

Every line of a trace file is one JSON object.  Common envelope::

    ts      float   >= 0, monotonic seconds since the writer's emitter
                    started (per-process clock; compare within a pid)
    run     str     run id shared by every process in the run
    pid     int     writing process
    kind    "event" | "span"
    name    str     dotted record name (catalog below)
    parent  str|null enclosing span id, if any
    attrs   object  record-specific payload

Spans additionally carry::

    span    str     unique span id ("<pid hex>.<seq>")
    dur     float   >= 0 seconds

The **catalog** maps known record names to the attr keys they must
carry; unknown names are structurally validated only (forward
compatible: new instrumentation does not break old analyzers).
:func:`validate_record` returns a list of problems (empty = valid) and
:func:`validate_file` walks a whole JSONL file — the CI gate and the
``python -m repro telemetry --validate`` path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

SCHEMA_VERSION = 1

#: Required ``attrs`` keys per known *event* name.
#:
#: This catalog is the telemetry contract in *both* directions: the
#: runtime validator requires every listed key on recorded traces, and
#: the replint RL003 check statically diffs every ``trace.event``/
#: ``trace.span`` call site against it — an emit site may carry
#: exactly these keys, no more, no fewer.  Keep the two in lockstep:
#: changing an instrumentation site means changing this tuple (and
#: vice versa), which is precisely the review speed bump we want.
EVENT_ATTRS: Dict[str, Tuple[str, ...]] = {
    # engine / runner: one per monitor interval
    "engine.interval": (
        "t_end", "events", "utility", "throughput_util", "norm_rtt",
        "pfc_ok", "heap", "cancelled", "compactions", "freelist",
    ),
    # monitor plane
    "monitor.report": (
        "switch", "tracked_flows", "interval_bytes", "payload_bytes",
        "total_flows", "batched",
    ),
    "monitor.fsd_upload": (
        "t", "agents", "payload_bytes", "total_flows", "elephant_fraction",
    ),
    # controller decisions
    "controller.kl": (
        "t", "kl", "theta", "triggered", "tuning_active", "utility",
        "terms",
    ),
    "controller.dispatch": ("t", "params"),
    # simulated annealing (Algorithm 1)
    "sa.begin": ("temperature", "initial_utility", "params", "guided"),
    "sa.step": (
        "temperature", "iteration", "feedbacks", "params", "utility",
        "accepted", "best_utility", "terms",
    ),
    "sa.batch": (
        "batch", "size", "proposed", "aborted", "cache_hits",
        "temperature", "best_utility",
    ),
    # hybrid flow/packet engine: one per fluid sync point
    "engine.hybrid": ("t", "fluid_flows", "fluid_bytes", "virtual_queue_max"),
    "engine.lanes_fallback": ("expected_qps", "threshold"),
    # evaluation fabric
    "cache.lookup": ("hit", "scenario", "seed"),
    "executor.retry": ("positions", "timeout"),
    "executor.strategy": ("strategy", "tasks", "jobs", "est_cost_ms", "chunk"),
    "executor.steal": ("positions", "remaining"),
    # multi-fidelity evaluation
    "fidelity.screen": ("proposed", "kept", "survivors", "scores"),
    "eval.abort": (
        "index", "seed", "intervals_run", "intervals_total", "bound",
        "threshold",
    ),
    # flight recorder / run reports
    "record.snapshot": ("samples", "seen", "stride", "flows", "budget"),
    "bench.trend": ("snapshots", "metrics", "regressions"),
    # sharded control plane: one per monitor interval / trigger check
    "controlplane.interval": (
        "interval", "agents", "tracked_flows", "elephant_fraction",
        "digest",
    ),
    "controlplane.tier_bytes": (
        "interval", "agent_rack", "rack_pod", "pod_global",
    ),
    "controlplane.tenant_kl": ("interval", "tenant", "kl", "theta", "triggered"),
    "controlplane.retune": ("tenant", "params", "utility", "evaluations"),
}

#: Required ``attrs`` keys per known *span* name.
SPAN_ATTRS: Dict[str, Tuple[str, ...]] = {
    "eval.task": ("seed", "kind", "index", "scenario"),
    "executor.map": ("tasks", "jobs", "strategy"),
    "sweep.grid": ("points", "fidelity"),
    "sa.search": ("batch_size", "fidelity"),
    "report.render": ("source", "format"),
    "controlplane.run": ("shards", "agents", "tenants", "intervals", "strategy"),
}

_ENVELOPE_KEYS = ("ts", "run", "pid", "kind", "name", "attrs")


def validate_record(record: Any) -> List[str]:
    """Problems with one decoded record; empty list means valid."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    for key in _ENVELOPE_KEYS:
        if key not in record:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    ts = record["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        problems.append(f"ts must be a non-negative number, got {ts!r}")
    if not isinstance(record["run"], str) or not record["run"]:
        problems.append("run must be a non-empty string")
    if not isinstance(record["pid"], int) or isinstance(record["pid"], bool):
        problems.append("pid must be an integer")
    name = record["name"]
    if not isinstance(name, str) or not name:
        problems.append("name must be a non-empty string")
    attrs = record["attrs"]
    if not isinstance(attrs, dict):
        problems.append("attrs must be an object")
        attrs = {}
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, str):
        problems.append("parent must be a string or null")

    kind = record["kind"]
    if kind == "span":
        span_id = record.get("span")
        if not isinstance(span_id, str) or not span_id:
            problems.append("span record needs a string span id")
        dur = record.get("dur")
        if (
            not isinstance(dur, (int, float))
            or isinstance(dur, bool)
            or dur < 0
        ):
            problems.append("span record needs dur >= 0")
        required = SPAN_ATTRS.get(name, ())
    elif kind == "event":
        required = EVENT_ATTRS.get(name, ())
    else:
        problems.append(f"kind must be 'span' or 'event', got {kind!r}")
        required = ()

    missing = [key for key in required if key not in attrs]
    if missing:
        problems.append(f"{name}: attrs missing {missing}")
    return problems


def validate_line(line: str) -> List[str]:
    """Validate one raw JSONL line."""
    try:
        record = json.loads(line)
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_record(record)


def validate_file(path) -> Tuple[int, List[Tuple[int, str]]]:
    """``(n_records, [(lineno, problem), ...])`` for a whole trace."""
    problems: List[Tuple[int, str]] = []
    count = 0
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            for problem in validate_line(line):
                problems.append((lineno, problem))
    return count, problems
