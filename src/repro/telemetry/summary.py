"""Trace-file analysis: per-stage wall-clock, SA and cache statistics.

Backs ``python -m repro telemetry <trace>`` (single-run summary) and
``python -m repro telemetry <a> <b>`` (trace-diff).  Everything works
on the plain JSONL records defined in :mod:`repro.telemetry.schema`;
no simulator objects are needed, so traces from remote or archived
runs analyze the same as fresh ones.

Span *self-time* is duration minus the summed durations of direct
child spans — the usual profiler decomposition, so a stage that merely
contains an expensive inner stage does not double-bill the wall clock.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.telemetry.tables import format_table


def load_records(path) -> List[dict]:
    """Decode every well-formed JSON line of a trace file."""
    records: List[dict] = []
    with open(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


@dataclass
class SpanAgg:
    """Aggregate timing for one span name."""

    count: int = 0
    total: float = 0.0
    self_time: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything the CLI prints about one trace file."""

    path: str
    records: int = 0
    runs: List[str] = field(default_factory=list)
    pids: int = 0
    wall_clock: float = 0.0             # max over pids of last ts seen
    event_counts: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, SpanAgg] = field(default_factory=dict)
    intervals: int = 0
    sa_steps: int = 0
    sa_accepts: int = 0
    sa_processes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    kl_checks: int = 0
    kl_triggers: int = 0
    dispatches: int = 0

    # -- derived ratios --------------------------------------------------

    @property
    def sa_acceptance_rate(self) -> float:
        return self.sa_accepts / self.sa_steps if self.sa_steps else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @classmethod
    def from_file(cls, path) -> "TraceSummary":
        return cls.from_records(load_records(path), path=str(path))

    @classmethod
    def from_records(
        cls, records: List[dict], path: str = "<records>"
    ) -> "TraceSummary":
        summary = cls(path=path, records=len(records))
        runs: List[str] = []
        pids = set()
        last_ts: Dict[int, float] = defaultdict(float)
        span_dur: Dict[str, float] = {}          # span id -> dur
        span_name: Dict[str, str] = {}           # span id -> name
        child_dur: Dict[str, float] = defaultdict(float)  # parent id -> sum

        for record in records:
            run = record.get("run")
            if isinstance(run, str) and run not in runs:
                runs.append(run)
            pid = record.get("pid")
            pids.add(pid)
            ts = record.get("ts", 0.0) or 0.0
            end = ts + (record.get("dur") or 0.0)
            if isinstance(end, (int, float)) and end > last_ts[pid]:
                last_ts[pid] = end

            name = record.get("name", "?")
            kind = record.get("kind")
            attrs = record.get("attrs") or {}
            if kind == "span":
                agg = summary.spans.setdefault(name, SpanAgg())
                dur = record.get("dur") or 0.0
                agg.count += 1
                agg.total += dur
                span_id = record.get("span")
                if isinstance(span_id, str):
                    span_dur[span_id] = dur
                    span_name[span_id] = name
                parent = record.get("parent")
                if isinstance(parent, str):
                    child_dur[parent] += dur
                continue

            summary.event_counts[name] = summary.event_counts.get(name, 0) + 1
            if name == "engine.interval":
                summary.intervals += 1
            elif name == "sa.step":
                summary.sa_steps += 1
                if attrs.get("accepted"):
                    summary.sa_accepts += 1
            elif name == "sa.begin":
                summary.sa_processes += 1
            elif name == "cache.lookup":
                if attrs.get("hit"):
                    summary.cache_hits += 1
                else:
                    summary.cache_misses += 1
            elif name == "controller.kl":
                summary.kl_checks += 1
                if attrs.get("triggered"):
                    summary.kl_triggers += 1
            elif name == "controller.dispatch":
                summary.dispatches += 1

        # Self-time: subtract direct-child time from each span instance.
        for span_id, dur in span_dur.items():
            name = span_name[span_id]
            self_time = max(0.0, dur - child_dur.get(span_id, 0.0))
            summary.spans[name].self_time += self_time

        summary.runs = runs
        summary.pids = len(pids)
        summary.wall_clock = max(last_ts.values()) if last_ts else 0.0
        return summary


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable single-trace report."""
    lines = [
        f"trace           : {summary.path}",
        f"records         : {summary.records}",
        f"runs            : {', '.join(summary.runs) or '-'}",
        f"processes       : {summary.pids}",
        f"wall clock      : {summary.wall_clock:.3f} s",
        f"intervals       : {summary.intervals}",
        f"KL decisions    : {summary.kl_checks} "
        f"({summary.kl_triggers} triggered)",
        f"param dispatches: {summary.dispatches}",
        f"SA steps        : {summary.sa_steps} over "
        f"{summary.sa_processes} process(es)",
        f"SA acceptance   : {summary.sa_acceptance_rate:.1%}",
        f"cache           : {summary.cache_hits} hits / "
        f"{summary.cache_misses} misses "
        f"(hit ratio {summary.cache_hit_ratio:.1%})",
    ]
    if summary.spans:
        ranked = sorted(
            summary.spans.items(),
            key=lambda item: item[1].self_time,
            reverse=True,
        )[:top]
        rows = [
            [
                name,
                agg.count,
                f"{agg.total:.3f}",
                f"{agg.self_time:.3f}",
                f"{agg.mean * 1e3:.2f}",
            ]
            for name, agg in ranked
        ]
        lines.append("")
        lines.append(
            format_table(
                ["stage", "count", "total s", "self s", "mean ms"],
                rows,
                title="per-stage wall-clock (top spans by self-time)",
            )
        )
    if summary.event_counts:
        rows = [
            [name, count]
            for name, count in sorted(
                summary.event_counts.items(),
                key=lambda item: item[1],
                reverse=True,
            )
        ]
        lines.append("")
        lines.append(format_table(["event", "count"], rows))
    return "\n".join(lines)


def format_diff(a: TraceSummary, b: TraceSummary) -> str:
    """Side-by-side comparison of two runs (trace-diff mode)."""
    def ratio(x: float, y: float) -> str:
        if x == 0:
            return "-"
        return f"{y / x:.2f}x"

    scalar_rows: List[List[object]] = []
    for label, xa, xb in [
        ("records", a.records, b.records),
        ("wall clock s", f"{a.wall_clock:.3f}", f"{b.wall_clock:.3f}"),
        ("intervals", a.intervals, b.intervals),
        ("KL decisions", a.kl_checks, b.kl_checks),
        ("KL triggers", a.kl_triggers, b.kl_triggers),
        ("dispatches", a.dispatches, b.dispatches),
        ("SA steps", a.sa_steps, b.sa_steps),
        (
            "SA acceptance",
            f"{a.sa_acceptance_rate:.1%}",
            f"{b.sa_acceptance_rate:.1%}",
        ),
        (
            "cache hit ratio",
            f"{a.cache_hit_ratio:.1%}",
            f"{b.cache_hit_ratio:.1%}",
        ),
    ]:
        scalar_rows.append([label, xa, xb])
    out = [
        format_table(
            ["metric", Path(a.path).name or "A", Path(b.path).name or "B"],
            scalar_rows,
            title=f"trace-diff: {a.path} vs {b.path}",
        )
    ]

    names = sorted(set(a.spans) | set(b.spans))
    if names:
        rows = []
        for name in names:
            sa = a.spans.get(name, SpanAgg())
            sb = b.spans.get(name, SpanAgg())
            rows.append(
                [
                    name,
                    f"{sa.total:.3f}",
                    f"{sb.total:.3f}",
                    ratio(sa.total, sb.total),
                ]
            )
        out.append("")
        out.append(
            format_table(
                ["stage", "A total s", "B total s", "B/A"],
                rows,
                title="per-stage wall-clock",
            )
        )
    return "\n".join(out)
