"""Unified observability layer: metrics, tracing, logging, analysis.

Four small, dependency-free pieces:

* :mod:`repro.telemetry.registry` — process-local metrics registry
  (counters / gauges / fixed-bucket histograms) with Prometheus-text
  and JSON exporters, and a snapshot/merge protocol so pool workers
  fold their metrics into the parent;
* :mod:`repro.telemetry.trace` — append-only JSONL span/event
  emitter, off unless ``REPRO_TRACE=path`` (or ``--trace``) is set;
  the disabled hot path is one branch;
* :mod:`repro.telemetry.log` — stdlib-logging shim: diagnostics to
  stderr at ``REPRO_LOG_LEVEL``, user-facing CLI output via
  :func:`~repro.telemetry.log.echo` on stdout;
* :mod:`repro.telemetry.schema` / :mod:`repro.telemetry.summary` —
  the trace record contract, a validator, and the analysis behind
  ``python -m repro telemetry`` (summary and trace-diff).

See README.md "Observability" for the metric-name catalog and record
schema.
"""

from repro.telemetry.log import echo, get_logger
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.schema import validate_file, validate_record
from repro.telemetry.summary import TraceSummary, format_diff, format_summary
from repro.telemetry import trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceSummary",
    "echo",
    "format_diff",
    "format_summary",
    "get_logger",
    "get_registry",
    "trace",
    "validate_file",
    "validate_record",
]
