"""Deterministic flight recorder for simulator runs.

The trace layer (:mod:`repro.telemetry.trace`) answers "which code ran
and how long did it take"; the flight recorder answers "what did the
*network* do": per-switch egress queue depth / ECN-mark / PFC-pause
counters, aggregate per-QP DCQCN state (rate, alpha, CNP count) from
whichever congestion-control plane is active (scalar RPs, the
vectorized lane bank, or the hybrid fluid lanes), and per-flow
lifecycle records (start, size, completion -> FCT).

Design constraints, in order:

* **Bit-identical runs.**  Sampling is read-only and happens at monitor
  interval boundaries the engine already closes; the recorder never
  draws randomness, never schedules events, and never touches the
  wall clock (replint RL002), so engine digests are identical with the
  recorder on or off in every engine mode.
* **Bounded memory.**  Each series lives in a :class:`RingBuffer` with
  a fixed sample budget (``REPRO_RECORD_BUDGET``).  When the budget
  overflows the buffer halves itself and doubles its stride — a
  deterministic decimation that is a pure function of the number of
  samples offered, never of timing.
* **One-branch disabled cost.**  Like the trace emitter, the module
  keeps a global :data:`active` flag; when recording is off the hot
  path pays a single attribute test per closed interval.

Recordings are plain picklable dicts (:meth:`RunRecording.snapshot`),
so they ride the existing fork-merge protocol: pool workers attach
them to ``EvalResult`` and ``SweepExecutor`` prunes all but the
best-K before results reach user code.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .. import env
from . import trace

#: Schema version stamped into every snapshot.
RECORDING_VERSION = 1

_ENV_PATH = "REPRO_RECORD"
_ENV_BUDGET = "REPRO_RECORD_BUDGET"

#: Fast-path flag: ``True`` iff recording has been configured.  Hot
#: paths test this instead of calling a function.
active: bool = False

_record_path: Optional[str] = None


# ---------------------------------------------------------------------------
# Module-level enable/disable (mirrors trace.configure / trace.disable)
# ---------------------------------------------------------------------------


def configure(path: str, export_env: bool = True) -> None:
    """Enable recording; the final snapshot is written to ``path``.

    When ``export_env`` is true the path is published to the process
    environment so pool workers spawned afterwards record too (their
    snapshots travel back inside ``EvalResult``, they do not write
    ``path`` themselves — only the parent process does).
    """
    global active, _record_path
    _record_path = path
    active = True
    if export_env:
        env.export_env(_ENV_PATH, path)


def disable(clear_env: bool = True) -> None:
    """Turn recording off (safe to call when already off)."""
    global active, _record_path
    active = False
    _record_path = None
    if clear_env:
        env.clear_env(_ENV_PATH)


def is_enabled() -> bool:
    return active


def record_path() -> Optional[str]:
    """Path the final snapshot will be written to, if recording."""
    return _record_path


def sample_budget() -> int:
    """Per-series sample budget (``REPRO_RECORD_BUDGET``, default 512)."""
    return int(env.get(_ENV_BUDGET))


# ---------------------------------------------------------------------------
# Ring buffer with deterministic stride decimation
# ---------------------------------------------------------------------------


class RingBuffer:
    """Fixed-budget sample buffer with stride-doubling decimation.

    A sample with index ``i`` (0-based, counted over *all* samples ever
    offered) is retained iff ``i % stride == 0``.  Whenever the number
    of retained samples would exceed the budget, every other retained
    sample is dropped and the stride doubles.  The retained set is
    therefore a pure function of the number of samples offered —
    independent of timing, process, or platform — and its size is
    bounded by the budget for any run length.
    """

    __slots__ = ("budget", "stride", "seen", "_rows")

    def __init__(self, budget: int) -> None:
        if budget < 2:
            raise ValueError("RingBuffer budget must be >= 2")
        self.budget = budget
        self.stride = 1
        self.seen = 0
        self._rows: List[Any] = []

    def admit(self) -> bool:
        """Account for one offered sample; True iff it should be kept.

        Split from :meth:`push` so callers can skip *building* the
        sample row entirely when it would be decimated away.
        """
        index = self.seen
        self.seen += 1
        return index % self.stride == 0

    def push(self, row: Any) -> None:
        """Retain an admitted sample, decimating on overflow."""
        self._rows.append(row)
        if len(self._rows) > self.budget:
            self._rows = self._rows[::2]
            self.stride *= 2

    def append(self, row: Any) -> None:
        """Offer one sample (admit + push)."""
        if self.admit():
            self.push(row)

    def rows(self) -> List[Any]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


# ---------------------------------------------------------------------------
# Per-run recording
# ---------------------------------------------------------------------------


class RunRecording:
    """Samples one network's dynamics at monitor-interval boundaries.

    One composite row is kept per admitted interval, so every time
    series in the snapshot decimates in lockstep and stays aligned on
    the shared time axis.
    """

    def __init__(self, network: Any, budget: Optional[int] = None,
                 weights: Optional[tuple] = None) -> None:
        self._network = network
        self._budget = budget if budget is not None else sample_budget()
        self._samples = RingBuffer(self._budget)
        self.meta: Dict[str, Any] = {
            "version": RECORDING_VERSION,
            "hybrid_mode": getattr(network, "hybrid_mode", "off"),
            "n_hosts": len(network.hosts),
            "n_switches": len(network.switches),
            "budget": self._budget,
            "weights": list(weights) if weights is not None else None,
        }
        self._switch_names = [sw.name for sw in network.switches]

    def sample(self, stats: Any, measured_utility: float) -> None:
        """Record one closed monitor interval (read-only)."""
        if not self._samples.admit():
            return
        net = self._network
        qp = net.qp_sample()
        n = qp["n"]
        row = {
            "t": stats.t_end,
            "utility": measured_utility,
            "throughput_util": stats.throughput_util,
            "norm_rtt": stats.norm_rtt,
            "pfc_ok": stats.pfc_ok,
            "flows_completed": len(net.records),
            "qp_n": n,
            "rate_mean": (qp["rate_sum"] / n) if n else 0.0,
            "rate_min": qp["rate_min"] if n else 0.0,
            "alpha_mean": (qp["alpha_sum"] / n) if n else 0.0,
            "alpha_max": qp["alpha_max"] if n else 0.0,
            "cnps": qp["cnps"],
            "switches": [sw.telemetry_sample() for sw in net.switches],
        }
        self._samples.push(row)

    # -- snapshotting -------------------------------------------------

    def _flow_rows(self) -> List[Dict[str, Any]]:
        """Completed-flow records, stride-decimated to 4x the budget."""
        records = self._network.records
        limit = 4 * self._budget
        stride = 1
        while len(records) // stride > limit:
            stride *= 2
        return [rec.as_dict() for rec in records[::stride]]

    def snapshot(self) -> Dict[str, Any]:
        """Pivot the retained rows into a plain, picklable dict."""
        rows = self._samples.rows()
        flows = self._flow_rows()
        snap: Dict[str, Any] = {
            "meta": dict(self.meta),
            "samples": {
                "seen": self._samples.seen,
                "kept": len(rows),
                "stride": self._samples.stride,
            },
            "time": [r["t"] for r in rows],
            "network": {
                "utility": [r["utility"] for r in rows],
                "throughput_util": [r["throughput_util"] for r in rows],
                "norm_rtt": [r["norm_rtt"] for r in rows],
                "pfc_ok": [r["pfc_ok"] for r in rows],
                "flows_completed": [r["flows_completed"] for r in rows],
            },
            "qp": {
                "n": [r["qp_n"] for r in rows],
                "rate_mean": [r["rate_mean"] for r in rows],
                "rate_min": [r["rate_min"] for r in rows],
                "alpha_mean": [r["alpha_mean"] for r in rows],
                "alpha_max": [r["alpha_max"] for r in rows],
                "cnps": [r["cnps"] for r in rows],
            },
            "switches": {
                name: {
                    "queue_bytes": [r["switches"][i]["queue_bytes"] for r in rows],
                    "ecn_marked": [r["switches"][i]["ecn_marked"] for r in rows],
                    "pfc_pauses": [r["switches"][i]["pfc_pauses"] for r in rows],
                    "dropped": [r["switches"][i]["dropped"] for r in rows],
                }
                for i, name in enumerate(self._switch_names)
            },
            "flows": flows,
            "flows_total": len(self._network.records),
        }
        if trace.active:
            trace.event("record.snapshot", {
                "samples": len(rows),
                "seen": self._samples.seen,
                "stride": self._samples.stride,
                "flows": len(flows),
                "budget": self._budget,
            })
        return snap


# ---------------------------------------------------------------------------
# Snapshot persistence
# ---------------------------------------------------------------------------


def write_snapshot(recording: Dict[str, Any], path: Optional[str] = None) -> str:
    """Write a snapshot dict to ``path`` (default: the configured path)."""
    target = path if path is not None else _record_path
    if target is None:
        raise ValueError("no recording path configured; pass path=")
    parent = os.path.dirname(os.path.abspath(target))
    os.makedirs(parent, exist_ok=True)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(recording, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return target


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot previously written by :func:`write_snapshot`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _init_from_env() -> None:
    """Join a recording already configured by a parent process."""
    path = env.get(_ENV_PATH)
    if path:
        configure(path, export_env=False)


_init_from_env()
