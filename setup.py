"""Setup shim.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works in offline environments without the
``wheel`` package (legacy setup.py-develop editable install path).
"""

from setuptools import setup

setup()
