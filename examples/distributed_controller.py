#!/usr/bin/env python3
"""Run the Paraleon control plane over real TCP sockets.

The paper's testbed prototype connects switch/server agents to a
centralized controller via gRPC.  This example runs that plane for
real: a controller listens on localhost, four switch agents and four
server agents connect, upload their per-interval reports, and receive
DCQCN parameter updates pushed by the controller — while the traffic
itself runs in the packet-level simulator behind the agents.

It also prints the Table-IV-style per-interval byte accounting
measured on the actual sockets.

Run:  python examples/distributed_controller.py
"""

from __future__ import annotations

import asyncio
import random

from repro.core.config import ParaleonConfig
from repro.experiments.scenarios import make_network
from repro.monitor.agent import SwitchAgent
from repro.rpc import (
    AgentClient,
    ControllerServer,
    ParamUpdate,
    RnicReport,
    SwitchReport,
    message_wire_size,
)
from repro.simulator.units import kb, ms
from repro.tuning.annealing import ImprovedAnnealer
from repro.tuning.parameters import default_params, default_space
from repro.tuning.utility import DEFAULT_WEIGHTS, utility
from repro.workloads import FbHadoopWorkload

INTERVALS = 40


async def main_async() -> None:
    # --- the fabric under management (simulated) ---
    network = make_network("medium", seed=41)
    FbHadoopWorkload(load=0.3, duration=0.03, seed=41).install(network)
    switch_agents = [SwitchAgent(t, tau=kb(100.0)) for t in network.tors]

    # --- centralized controller over TCP ---
    annealer = ImprovedAnnealer(default_space(), rng=random.Random(3))
    reports_this_interval = []

    def on_message(message):
        reports_this_interval.append(message)

    server = ControllerServer(on_message)
    port = await server.start()
    print(f"controller listening on 127.0.0.1:{port}")

    # --- agents connect (one per ToR switch + one per 4 servers) ---
    clients = []
    for i in range(len(switch_agents) + 4):
        client = AgentClient("127.0.0.1", port)
        await client.connect()
        clients.append(client)
    await asyncio.sleep(0.05)
    switch_clients = clients[: len(switch_agents)]
    rnic_clients = clients[len(switch_agents):]
    print(f"{len(switch_clients)} switch agents, {len(rnic_clients)} server agents connected\n")

    annealer.begin(default_params(), 0.0)
    started = False

    for interval in range(INTERVALS):
        # Advance the fabric one monitor interval.
        network.run_until(network.sim.now + ms(1.0))
        stats = network.stats.end_interval()

        # Switch agents: read+reset sketches, upload local FSDs.
        reports_this_interval.clear()
        for agent, client in zip(switch_agents, switch_clients):
            report = agent.collect(network.sim.now)
            await client.send(
                SwitchReport(
                    agent_id=agent.switch.switch_id,
                    timestamp=network.sim.now,
                    throughput_bytes=float(report.interval_bytes),
                    pause_seconds=0.0,
                    elephant_weight=report.fsd.elephant_weight,
                    tracked_flows=report.tracked_flows,
                    histogram=list(report.fsd.histogram),
                )
            )
        # Server agents: upload RTT/PFC metrics.
        for i, client in enumerate(rnic_clients):
            await client.send(
                RnicReport(1000 + i, network.sim.now, stats.mean_rtt, 0.0)
            )
        await asyncio.sleep(0.01)  # let the frames land

        # Controller: utility + SA step, then broadcast new parameters.
        measured = utility(stats, DEFAULT_WEIGHTS)
        if started:
            annealer.feedback(measured)
        elephants = sum(
            m.elephant_weight for m in reports_this_interval
            if isinstance(m, SwitchReport)
        )
        tracked = sum(
            m.tracked_flows for m in reports_this_interval
            if isinstance(m, SwitchReport)
        )
        bias = None
        if tracked:
            frac = elephants / tracked
            bias = (frac >= 0.5, max(frac, 1 - frac))
        proposal = annealer.propose(bias)
        started = True
        update = ParamUpdate(network.sim.now, proposal)
        await server.broadcast(update)
        for client in clients:
            await client.receive_update(timeout=2.0)
        network.set_all_params(proposal)

        if interval % 8 == 0:
            print(
                f"interval {interval:3d}: utility={measured:.3f} "
                f"tracked_flows={tracked:3d} "
                f"uploaded={sum(message_wire_size(m) for m in reports_this_interval)}B "
                f"pushed={message_wire_size(update)}B/agent"
            )

    print("\nTable IV-style accounting over the socket plane:")
    print(f"  controller received : {server.bytes_received} B "
          f"({server.messages_received} messages)")
    print(f"  controller sent     : {server.bytes_sent} B")
    per_interval_up = server.bytes_received / INTERVALS
    per_interval_down = server.bytes_sent / INTERVALS
    print(f"  per monitor interval: {per_interval_up:.0f} B up, "
          f"{per_interval_down:.0f} B down")
    print(f"  flows completed in the managed fabric: {len(network.records)}")

    for client in clients:
        await client.close()
    await server.close()


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
