#!/usr/bin/env python3
"""Quickstart: tune DCQCN on a simulated RDMA fabric with Paraleon.

Builds a two-tier CLOS fabric, offers a mice-dominated FB_Hadoop
workload, and runs the full Paraleon closed loop (Elastic-Sketch
monitoring -> KL trigger -> guided simulated annealing) against the
frozen NVIDIA default setting.  Takes ~20 s.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClosSpec,
    ExperimentRunner,
    Network,
    NetworkConfig,
    ParaleonSystem,
    StaticTuner,
    default_params,
)
from repro.experiments.fct import FctStats
from repro.simulator.units import ms
from repro.workloads import FbHadoopWorkload


def build_network(seed: int = 7) -> Network:
    spec = ClosSpec(
        n_tor=4,            # 4 top-of-rack switches
        n_spine=2,          # 2 spine switches (2:1 oversubscription)
        hosts_per_tor=4,    # 16 servers total
    )
    return Network(NetworkConfig(spec=spec, seed=seed))


def run(tuner, label: str):
    network = build_network()
    FbHadoopWorkload(load=0.3, duration=0.06, seed=7).install(network)
    runner = ExperimentRunner(network, tuner, monitor_interval=ms(1.0))
    result = runner.run(0.12)
    stats = FctStats.compute(label, result.records, network.spec)
    print(f"\n{label}")
    print(f"  flows completed : {len(result.records)}")
    print(f"  mean utility    : {result.mean_utility(skip=5):.4f}")
    print(f"  avg FCT slowdown: {stats.overall_avg:.2f}")
    for bucket, cell in stats.buckets.items():
        print(
            f"    {bucket:>12}: avg {cell['avg']:6.2f}   "
            f"p99.9 {cell['p999']:6.1f}   (n={int(cell['count'])})"
        )
    return stats


def main() -> None:
    print("Paraleon quickstart: FB_Hadoop @30% on a 16-host CLOS fabric")
    default_stats = run(StaticTuner(default_params(), "Default"), "Frozen NVIDIA defaults")
    paraleon_stats = run(ParaleonSystem(), "Paraleon (adaptive)")

    gain = (1 - paraleon_stats.overall_avg / default_stats.overall_avg) * 100
    print(
        f"\nParaleon reduced the overall average FCT slowdown by "
        f"{gain:.1f}% vs the frozen defaults."
    )


if __name__ == "__main__":
    main()
