#!/usr/bin/env python3
"""Related-work demo: DCQCN vs Swift-style delay-based CC (Section VI).

The paper targets DCQCN because it is the deployed de-facto standard,
but notes that RTT-based schemes (TIMELY, Swift) face the same tuning
problem and that Paraleon's philosophy applies to them too.  This
example runs the same incast under both congestion controllers and
shows the classic contrast: DCQCN's ECN-driven AIMD collapses and
recovers slowly at default parameters, while Swift's delay target
converges quickly — which is precisely *why* DCQCN parameter tuning
matters so much.

Run:  python examples/swift_vs_dcqcn.py
"""

from __future__ import annotations

from repro.simulator.network import Network, NetworkConfig
from repro.simulator.topology import ClosSpec
from repro.simulator.trace import FabricTracer
from repro.simulator.units import mb, ms

SPEC = ClosSpec(n_tor=2, n_spine=1, hosts_per_tor=4)
SENDERS = (0, 1, 2)
RECEIVER = 4
FLOW_SIZE = mb(2.0)


def run(cc: str) -> None:
    network = Network(NetworkConfig(spec=SPEC, cc=cc, seed=2))
    tracer = FabricTracer(network, period=ms(1.0))
    tracer.start()
    flows = [network.add_flow(s, RECEIVER, FLOW_SIZE, 0.0) for s in SENDERS]
    network.run_until(ms(120.0))

    print(f"\n=== {cc.upper()} ===")
    ideal = len(SENDERS) * FLOW_SIZE * 8 / SPEC.host_rate_bps * 1e3
    for flow in flows:
        status = f"{flow.fct() * 1e3:6.2f} ms" if flow.completed else "stalled"
        print(f"  flow {flow.src}->{flow.dst}: {status}")
    done = [f.fct() for f in flows if f.completed]
    if len(done) == len(flows):
        efficiency = ideal / (max(done) * 1e3) * 100
        print(f"  3-share ideal {ideal:.1f} ms -> efficiency {efficiency:.0f}%")
    print(f"  ECN marks: {network.total_ecn_marked()}, "
          f"PFC pauses: {network.total_pfc_pauses()}, "
          f"drops: {network.total_dropped_packets()}")
    print(f"  peak queue: {tracer.max_queue_bytes() // 1000} KB")

    # Show the rate trajectory of one flow.
    series = tracer.rate_series(flows[0].flow_id)
    if series:
        points = "  ".join(
            f"({t * 1e3:.0f}ms,{r / 1e9:.2f}G)" for t, r in series[::3][:10]
        )
        print(f"  flow 0 rate trajectory: {points}")


def main() -> None:
    print(
        f"{len(SENDERS)}-to-1 incast, {FLOW_SIZE // mb(1)} MB per flow, "
        f"{SPEC.host_rate_bps / 1e9:.0f} Gbps fabric"
    )
    run("dcqcn")
    run("swift")
    print(
        "\nDCQCN's slow recovery at default parameters is the paper's "
        "motivation; Swift's delay target sidesteps it but brings its "
        "own tuning surface (target delay, AI step, beta)."
    )


if __name__ == "__main__":
    main()
