#!/usr/bin/env python3
"""Per-cluster controllers demo (Section V, large-scale environments).

One fabric, two tenant clusters with opposite needs: ToRs 0-1 run LLM
training (throughput-sensitive), ToRs 2-3 serve RPC mice
(latency-sensitive).  A single homogeneous controller has to pick one
compromise setting; per-cluster controllers converge to heterogeneous
DCQCN parameters, each matched to its tenant.

Run:  python examples/multicluster.py
"""

from __future__ import annotations

from repro.core import (
    ClusterSpec,
    MultiClusterParaleon,
    ParaleonConfig,
)
from repro.experiments.runner import ExperimentRunner
from repro.simulator.network import Network, NetworkConfig
from repro.simulator.topology import ClosSpec
from repro.simulator.units import kb, mb, ms
from repro.tuning.annealing import AnnealingSchedule
from repro.tuning.utility import (
    DEFAULT_WEIGHTS,
    THROUGHPUT_SENSITIVE_WEIGHTS,
)
from repro.workloads import LlmTrainingWorkload, SolarRpcWorkload

KNOBS = (
    "rpg_ai_rate",
    "rpg_hai_rate",
    "rate_reduce_monitor_period",
    "min_time_between_cnps",
    "k_min",
    "k_max",
    "p_max",
)


def main() -> None:
    spec = ClosSpec(n_tor=4, n_spine=2, hosts_per_tor=4)
    network = Network(NetworkConfig(spec=spec, seed=9))

    # Tenant 1: training on hosts 0-7 (ToRs 0-1).
    LlmTrainingWorkload(
        workers=list(range(8)), flow_size=mb(2.0), off_period=ms(3.0)
    ).install(network)
    # Tenant 2: RPC mice on hosts 8-15 (ToRs 2-3).
    SolarRpcWorkload(
        rate_per_host=3000.0, duration=0.07, hosts=list(range(8, 16)), seed=9
    ).install(network)

    system = MultiClusterParaleon(
        [
            ClusterSpec("training", [0, 1], weights=THROUGHPUT_SENSITIVE_WEIGHTS),
            ClusterSpec("rpc", [2, 3], weights=DEFAULT_WEIGHTS),
        ],
        config=ParaleonConfig(
            tau=kb(100.0),
            schedule=AnnealingSchedule(
                initial_temp=90.0, final_temp=30.0,
                cooling_rate=0.8, iterations_per_temp=10,
            ),
        ),
    )

    print("running 80 ms with independent per-cluster controllers...")
    ExperimentRunner(network, system, monitor_interval=ms(1.0)).run(0.08)

    params = system.cluster_params()
    print(f"\nsettings diverged: {system.settings_diverged()}\n")
    print(f"{'parameter':<28} {'training cluster':>18} {'rpc cluster':>14}")
    for knob in KNOBS:
        t_val = getattr(params["training"], knob)
        r_val = getattr(params["rpc"], knob)
        if knob.endswith("rate"):
            row = (f"{t_val / 1e6:.0f} Mbps", f"{r_val / 1e6:.0f} Mbps")
        elif "time" in knob or "period" in knob:
            row = (f"{t_val * 1e6:.0f} us", f"{r_val * 1e6:.0f} us")
        elif knob.startswith("k_"):
            row = (f"{t_val // 1000} KB", f"{r_val // 1000} KB")
        else:
            row = (f"{t_val:.2f}", f"{r_val:.2f}")
        print(f"{knob:<28} {row[0]:>18} {row[1]:>14}")

    for name, cluster in system.clusters.items():
        controller = cluster.controller
        print(
            f"\ncluster {name!r}: {controller.tuning_processes_started} "
            f"processes, {cluster.dispatches} dispatches, "
            f"last utility {controller.utility_trace()[-1]:.3f}"
        )


if __name__ == "__main__":
    main()
