#!/usr/bin/env python3
"""Offline pretraining: derive a static DCQCN setting for a workload.

This is how the Fig. 9 "Pretrained 1/2" baselines come to exist: run
Paraleon offline against a known workload, let the annealing process
converge, and freeze the best parameter set it found.  The script
prints the frozen setting next to the hand-maintained values in
``repro.baselines.static`` so they can be refreshed.

Run:  python examples/pretrain_static.py [llm|hadoop]
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner, ParaleonSystem
from repro.core import ParaleonConfig
from repro.experiments.scenarios import make_network
from repro.simulator.units import mb, ms
from repro.tuning.annealing import AnnealingSchedule
from repro.tuning.utility import (
    DEFAULT_WEIGHTS,
    THROUGHPUT_SENSITIVE_WEIGHTS,
)
from repro.workloads import FbHadoopWorkload, LlmTrainingWorkload


def pretrain(workload_name: str):
    network = make_network("medium", seed=55)
    if workload_name == "llm":
        LlmTrainingWorkload(
            n_workers=8, flow_size=mb(2.0), off_period=ms(5.0)
        ).install(network)
        weights = THROUGHPUT_SENSITIVE_WEIGHTS
    elif workload_name == "hadoop":
        FbHadoopWorkload(load=0.3, duration=0.12, seed=55).install(network)
        weights = DEFAULT_WEIGHTS
    else:
        raise SystemExit(f"unknown workload {workload_name!r}; use llm|hadoop")

    # A compressed schedule so the offline process converges within
    # the simulated window.
    config = ParaleonConfig(
        weights=weights,
        schedule=AnnealingSchedule(
            initial_temp=90.0,
            final_temp=20.0,
            cooling_rate=0.8,
            iterations_per_temp=12,
        ),
    )
    system = ParaleonSystem(config=config)
    runner = ExperimentRunner(
        network, system, monitor_interval=ms(1.0), weights=weights
    )
    print(f"pretraining on {workload_name!r} (~150 monitor intervals)...")
    runner.run(0.15)

    controller = system.controller
    best = controller.last_best or controller.deployed
    print(
        f"tuning processes: {controller.tuning_processes_started} started, "
        f"{controller.tuning_processes_finished} completed"
    )
    print("\nFrozen pretrained setting:")
    for name, value in sorted(best.as_dict().items()):
        print(f"  {name:28s} = {value!r}")
    return best


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "hadoop"
    pretrain(workload)


if __name__ == "__main__":
    main()
