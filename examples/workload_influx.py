#!/usr/bin/env python3
"""Traffic-dynamics demo: adapting to a workload influx (Fig. 8).

An LLM alltoall runs as background traffic; at t=30 ms an FB_Hadoop
burst floods the fabric with mice for 30 ms.  Watch Paraleon's
controller detect the flow-size-distribution shift via KL divergence,
restart its annealing process hot, swing the DCQCN parameters
delay-friendly for the mice, and swing back once the burst drains.

Run:  python examples/workload_influx.py
"""

from __future__ import annotations

from repro import ExperimentRunner, ParaleonSystem
from repro.core import ParaleonConfig
from repro.experiments.scenarios import install_influx, make_network
from repro.simulator.units import ms
from repro.tuning.utility import THROUGHPUT_SENSITIVE_WEIGHTS

INFLUX_START_MS = 30.0
INFLUX_END_MS = 60.0


def bar(value: float, scale: float, width: int = 30) -> str:
    filled = min(width, int(value / scale * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    network = make_network("medium", seed=21)
    install_influx(
        network,
        influx_start=INFLUX_START_MS * 1e-3,
        influx_duration=(INFLUX_END_MS - INFLUX_START_MS) * 1e-3,
        llm_workers=8,
        hadoop_load=0.5,
        seed=21,
    )
    system = ParaleonSystem(
        config=ParaleonConfig(weights=THROUGHPUT_SENSITIVE_WEIGHTS)
    )
    runner = ExperimentRunner(network, system, monitor_interval=ms(1.0))
    result = runner.run(0.1)

    print(
        "time   phase    elephant%  KL-trigger  "
        "throughput                       RTT (us)"
    )
    controller = system.controller
    for stats, log in zip(result.intervals, controller.log):
        t_ms = stats.t_end * 1e3
        if t_ms < INFLUX_START_MS:
            phase = "LLM"
        elif t_ms < INFLUX_END_MS:
            phase = "INFLUX"
        else:
            phase = "drain"
        if int(t_ms) % 2:  # print every other interval
            continue
        rtt_us = stats.mean_rtt * 1e6
        print(
            f"{t_ms:5.0f}  {phase:7}  {log.elephant_fraction * 100:6.0f}%   "
            f"{'TRIGGER' if log.kl > system.config.theta else '       '}   "
            f"{bar(stats.throughput_util, 0.6)}  {rtt_us:7.1f}"
        )

    print(
        f"\ntuning processes: {controller.tuning_processes_started} started, "
        f"{controller.tuning_processes_restarted} hot-restarted on dominance "
        f"flips, {controller.tuning_processes_finished} completed"
    )
    print(f"parameter dispatches: {result.dispatches}")


if __name__ == "__main__":
    main()
