#!/usr/bin/env python3
"""Monitoring pipeline demo: why Paraleon's design choices matter.

Feeds the same FB_Hadoop traffic through three monitoring designs —
NetFlow sampling, naive Elastic Sketch, and Paraleon's sketch +
sliding-window ternary states — and scores each against the
simulator's ground-truth flow sizes every millisecond (Fig. 10/11).
Also demonstrates the TOS dedup bit by toggling it off and watching
the network-wide flow count inflate.

Run:  python examples/sketch_accuracy.py
"""

from __future__ import annotations

from repro.experiments.scenarios import make_network
from repro.monitor.agent import NaiveSketchAgent, NetFlowAgent, SwitchAgent
from repro.monitor.aggregate import FsdAggregator
from repro.simulator.units import kb, ms
from repro.workloads import FbHadoopWorkload

TAU = kb(100.0)
DURATION_MS = 30


def measure(agent_factory, label: str, dedup_note: str = "") -> None:
    network = make_network("medium", seed=31)
    workload = FbHadoopWorkload(load=0.3, duration=0.025, seed=31)
    workload.install(network)
    truth = {f.flow_id: f.size >= TAU for f in workload.flows}

    agents = [agent_factory(t) for t in network.tors]
    aggregator = FsdAggregator(agents)
    scores, measured_counts, true_counts = [], [], []
    for _ in range(DURATION_MS):
        network.run_until(network.sim.now + ms(1.0))
        stats = network.stats.end_interval()
        fsd = aggregator.collect(network.sim.now)
        live = {f: truth[f] for f in stats.flow_bytes if f in truth}
        if live:
            scores.append(fsd.classification_accuracy(live))
            measured_counts.append(fsd.total_flows)
            true_counts.append(len(live))

    accuracy = sum(scores) / len(scores)
    inflation = sum(measured_counts) / max(sum(true_counts), 1)
    print(
        f"{label:<28} accuracy {accuracy * 100:5.1f}%   "
        f"measured/true flows {inflation:4.2f}{dedup_note}"
    )


def main() -> None:
    print(
        f"FB_Hadoop @30%, {DURATION_MS} ms, 1 ms monitor interval, "
        f"elephant threshold tau = {TAU // 1000} KB\n"
    )
    measure(lambda t: NetFlowAgent(t, tau=TAU), "NetFlow (1:100, 1s export)")
    measure(
        lambda t: NaiveSketchAgent(t, tau=TAU),
        "Elastic Sketch (naive)",
    )
    measure(
        lambda t: SwitchAgent(t, tau=TAU),
        "Paraleon (sliding window)",
    )
    measure(
        lambda t: SwitchAgent(t, tau=TAU, dedup_marking=False),
        "Paraleon without TOS dedup",
        dedup_note="  <- cross-ToR flows double counted",
    )


if __name__ == "__main__":
    main()
