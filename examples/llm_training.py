#!/usr/bin/env python3
"""LLM training scenario: alltoall rounds under different DCQCN tuning.

Reproduces the motivation of Table II / Fig. 13 at laptop scale: an
ON-OFF alltoall collective (each round barriers on its straggler, like
NCCL) runs under the NVIDIA default setting, the Table-I expert
setting, and Paraleon with the paper's throughput-sensitive weights.
The per-round duration is exactly what gates training-step time.

Run:  python examples/llm_training.py
"""

from __future__ import annotations

from repro import ExperimentRunner, ParaleonSystem, StaticTuner
from repro.core import ParaleonConfig
from repro.experiments.scenarios import make_network
from repro.simulator.units import mb, ms
from repro.tuning.parameters import default_params, expert_params
from repro.tuning.utility import THROUGHPUT_SENSITIVE_WEIGHTS
from repro.workloads import LlmTrainingWorkload

N_WORKERS = 8
FLOW_SIZE = mb(2.0)
ROUNDS = 3


def run(tuner, label: str) -> float:
    network = make_network("testbed", seed=11)
    workload = LlmTrainingWorkload(
        n_workers=N_WORKERS,
        flow_size=FLOW_SIZE,
        off_period=ms(2.0),
        max_rounds=ROUNDS,
    )
    workload.install(network)
    runner = ExperimentRunner(network, tuner, monitor_interval=ms(1.0))
    runner.run(1.5, stop_when=lambda: workload.completed_rounds() >= ROUNDS)

    bandwidth = workload.algorithm_bandwidth() / 1e9
    print(f"\n{label}")
    print(f"  completed rounds   : {workload.completed_rounds()}")
    for record in workload.rounds:
        print(f"    round {record.index}: {record.duration * 1e3:7.2f} ms")
    print(f"  mean round duration: {workload.mean_round_duration() * 1e3:.2f} ms")
    print(f"  algorithm bandwidth: {bandwidth:.2f} Gbps per worker")
    return bandwidth


def main() -> None:
    print(
        f"{N_WORKERS}x{N_WORKERS} alltoall, {FLOW_SIZE // mb(1)} MB per peer, "
        f"{ROUNDS} rounds (straggler-barriered, like NCCL)"
    )
    default_bw = run(StaticTuner(default_params(), "Default"), "NVIDIA default setting")
    expert_bw = run(StaticTuner(expert_params(), "Expert"), "Expert setting (Table I)")
    paraleon_bw = run(
        ParaleonSystem(
            config=ParaleonConfig(weights=THROUGHPUT_SENSITIVE_WEIGHTS)
        ),
        "Paraleon (throughput-sensitive weights)",
    )

    print("\nSummary (algorithm bandwidth per worker):")
    print(f"  Default : {default_bw:.2f} Gbps")
    print(f"  Expert  : {expert_bw:.2f} Gbps  ({expert_bw / default_bw:.2f}x default)")
    print(f"  Paraleon: {paraleon_bw:.2f} Gbps  ({paraleon_bw / default_bw:.2f}x default)")


if __name__ == "__main__":
    main()
