"""replint framework: findings, pragmas, baseline, check protocol, runner.

Design goals, in order:

1. **Zero dependencies** — stdlib ``ast`` + ``json`` only, so the lint
   gate runs anywhere the repo's tests run (and in CI before any
   install step beyond the checkout).
2. **Facts, then findings** — a check splits into a pure per-file
   :meth:`Check.extract` (AST -> JSON-serializable facts, the unit the
   incremental cache persists) and cheap :meth:`Check.file_findings` /
   :meth:`Check.finalize` passes that derive findings from facts.  A
   warm run touches no AST at all: unchanged files replay their cached
   facts, and whole-program passes re-evaluate only the
   strongly-connected components whose inputs changed.
3. **Escape hatches that leave a paper trail** — a per-line pragma
   (``# replint: disable=RL001``), a file-level pragma
   (``# replint: disable-file=RL009``) for generated or fixture files,
   and a committed baseline for grandfathered findings.  Baseline keys
   deliberately exclude line numbers so unrelated edits above a
   grandfathered finding don't churn the file.

Everything user-visible is deterministically ordered: findings sort on
the total key ``(path, line, check, message)``, so cold and warm runs
— and runs on different machines — produce byte-identical reports.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from tools.replint.graph import ProjectGraph, extract_file_facts

#: Pragma grammar: ``# replint: disable=RL001`` / ``=RL001,RL005`` /
#: ``=all``, anywhere in the line's trailing comment.  The file-level
#: variant ``# replint: disable-file=RL009`` suppresses a check for
#: the whole file, wherever it appears (conventionally line 1).
_PRAGMA_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)",
    re.IGNORECASE,
)
_FILE_PRAGMA_RE = re.compile(
    r"#\s*replint:\s*disable-file="
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)",
    re.IGNORECASE,
)

_ALL = "all"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    check: str  # "RL001"
    path: str  # repo-relative posix path
    line: int  # 1-based
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.path}::{self.check}::{self.message}"

    @property
    def sort_key(self):
        """Total order: ties on (path, line, check) break on message,
        so report order never depends on check evaluation order."""
        return (self.path, self.line, self.check, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.check} {self.message}"


class FileContext:
    """One parsed source file handed to every check's ``extract``."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._pragmas: Optional[Dict[int, Set[str]]] = None
        self._file_disables: Optional[Set[str]] = None

    @property
    def pragmas(self) -> Dict[int, Set[str]]:
        """lineno -> set of lowercased check ids disabled on that line."""
        if self._pragmas is None:
            table: Dict[int, Set[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _PRAGMA_RE.search(line)
                if match is None:
                    continue
                table[lineno] = {
                    name.strip().lower()
                    for name in match.group(1).split(",")
                }
            self._pragmas = table
        return self._pragmas

    @property
    def file_disables(self) -> Set[str]:
        """Lowercased check ids disabled for the whole file."""
        if self._file_disables is None:
            disabled: Set[str] = set()
            for line in self.lines:
                match = _FILE_PRAGMA_RE.search(line)
                if match:
                    disabled.update(
                        name.strip().lower()
                        for name in match.group(1).split(",")
                    )
            self._file_disables = disabled
        return self._file_disables

    def suppressed(self, check_id: str, line: int) -> bool:
        wanted = check_id.lower()
        if _ALL in self.file_disables or wanted in self.file_disables:
            return True
        disabled = self.pragmas.get(line)
        if not disabled:
            return False
        return _ALL in disabled or wanted in disabled


@dataclass
class FileRecord:
    """Everything the runner keeps per file — and what the cache stores.

    A record is a pure function of (relpath, content, analyzer
    version); re-running a check against a cached record is guaranteed
    to reproduce the cold-run findings.
    """

    relpath: str
    content_hash: str
    pragmas: Dict[int, Set[str]]
    file_disables: Set[str]
    graph: Dict
    facts: Dict[str, Any]  # check id -> extracted facts

    def suppressed(self, check_id: str, line: int) -> bool:
        wanted = check_id.lower()
        if _ALL in self.file_disables or wanted in self.file_disables:
            return True
        disabled = self.pragmas.get(line)
        if not disabled:
            return False
        return _ALL in disabled or wanted in disabled

    def to_json(self) -> Dict:
        return {
            "relpath": self.relpath,
            "content_hash": self.content_hash,
            "pragmas": {
                str(line): sorted(ids) for line, ids in self.pragmas.items()
            },
            "file_disables": sorted(self.file_disables),
            "graph": self.graph,
            "facts": self.facts,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "FileRecord":
        return cls(
            relpath=data["relpath"],
            content_hash=data["content_hash"],
            pragmas={
                int(line): set(ids)
                for line, ids in data["pragmas"].items()
            },
            file_disables=set(data["file_disables"]),
            graph=data["graph"],
            facts=data["facts"],
        )


class ProjectIndex:
    """Whole-program view handed to every check's ``finalize``."""

    def __init__(
        self,
        records: Sequence[FileRecord],
        root: Path,
        cache=None,
        stats: Optional[Dict[str, int]] = None,
    ):
        self.records = list(records)
        self.by_path: Dict[str, FileRecord] = {
            r.relpath: r for r in self.records
        }
        self.root = Path(root)
        self.cache = cache
        self.stats = stats if stats is not None else {}
        self._graph: Optional[ProjectGraph] = None

    @property
    def graph(self) -> ProjectGraph:
        if self._graph is None:
            self._graph = ProjectGraph(
                {r.relpath: r.graph for r in self.records}
            )
        return self._graph

    def content_hash(self, relpath: str) -> str:
        record = self.by_path.get(relpath)
        return record.content_hash if record else ""

    def facts(self, check_id: str, relpath: str):
        record = self.by_path.get(relpath)
        return record.facts.get(check_id) if record else None

    def global_signature(self, extra: str = "") -> str:
        """Signature over every record — key for whole-tree passes."""
        digest = hashlib.sha256()
        for record in sorted(self.records, key=lambda r: r.relpath):
            digest.update(record.relpath.encode())
            digest.update(record.content_hash.encode())
        digest.update(extra.encode())
        return digest.hexdigest()


class Check:
    """Base class for one lint rule.

    Subclasses set ``id`` / ``name`` / ``description`` and implement
    some subset of:

    * :meth:`extract` — pure per-file AST -> facts (JSON-serializable;
      cached by content hash, so it must not read anything but the
      given :class:`FileContext`);
    * :meth:`file_findings` — findings derivable from one file's facts
      alone;
    * :meth:`finalize` — whole-program findings from the
      :class:`ProjectIndex` (graph, all files' facts, pass cache).

    ``start`` resets per-run state so a check instance can be reused
    across runs (the test suite does).
    """

    id: str = "RL000"
    name: str = "base"
    description: str = ""

    def start(self) -> None:
        """Reset per-run state."""

    def extract(self, ctx: FileContext) -> Any:
        return None

    def file_findings(self, relpath: str, facts: Any) -> Iterable[Finding]:
        return ()

    def finalize(self, project: ProjectIndex) -> Iterable[Finding]:
        return ()

    # -- helpers shared by concrete checks ------------------------------

    def finding(self, ctx_or_path, line: int, message: str) -> Finding:
        relpath = (
            ctx_or_path.relpath
            if isinstance(ctx_or_path, FileContext)
            else str(ctx_or_path)
        )
        return Finding(self.id, relpath, line, message)


@dataclass
class LintResult:
    """Everything a reporter needs."""

    findings: List[Finding] = field(default_factory=list)  # new, unbaselined
    baselined: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    checks: List[Check] = field(default_factory=list)
    #: Incremental-run counters: files_parsed / files_cached /
    #: sccs_evaluated / sccs_reused.  Excluded from reports so cold and
    #: warm runs render byte-identically.
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def all_findings(self) -> List[Finding]:
        return sorted(
            self.findings + self.baselined + self.parse_errors,
            key=lambda f: f.sort_key,
        )


# ---------------------------------------------------------------------------
# Baseline file
# ---------------------------------------------------------------------------


def occurrence_keys(findings: Sequence[Finding]) -> List[str]:
    """Baseline keys for ``findings``, disambiguating duplicates.

    Keys are line-number-free so edits above a grandfathered finding
    don't churn the baseline; identical (path, check, message) triples
    are numbered (``...#2``, ``...#3``) in total sort order — *not*
    input order — so the n-th duplicate always maps to the same key
    even when an unrelated finding lands between two copies.
    """
    order = sorted(range(len(findings)), key=lambda i: findings[i].sort_key)
    counts: Dict[str, int] = {}
    keys: List[str] = [""] * len(findings)
    for i in order:
        base = findings[i].baseline_key
        n = counts.get(base, 0) + 1
        counts[base] = n
        keys[i] = base if n == 1 else f"{base}#{n}"
    return keys


def load_baseline(path: Optional[Path]) -> Set[str]:
    """Baseline keys from ``path``; missing file means empty baseline."""
    if path is None or not Path(path).exists():
        return set()
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file: {path}")
    return set(data["findings"])


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    ordered = sorted(findings, key=lambda f: f.sort_key)
    keys = sorted(occurrence_keys(ordered))
    payload = {"version": 1, "findings": keys}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ---------------------------------------------------------------------------
# File discovery + runner
# ---------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through verbatim)."""
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.parts
                if any(
                    p == "__pycache__" or p.startswith(".") for p in parts
                ):
                    continue
                found.append(sub)
    return found


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _build_record(
    path: Path, relpath: str, source: str, checks: Sequence[Check]
) -> FileRecord:
    ctx = FileContext(path, relpath, source)
    return FileRecord(
        relpath=relpath,
        content_hash=hashlib.sha256(source.encode()).hexdigest(),
        pragmas=ctx.pragmas,
        file_disables=ctx.file_disables,
        graph=extract_file_facts(relpath, ctx.tree),
        facts={check.id: check.extract(ctx) for check in checks},
    )


def run_replint(
    paths: Sequence[Path],
    checks: Sequence[Check],
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
    cache=None,
) -> LintResult:
    """Run ``checks`` over every Python file under ``paths``.

    ``root`` anchors repo-relative paths in findings and baseline keys
    (defaults to the current working directory — i.e. the repo root
    when invoked via ``make lint`` / ``python -m tools.replint``).
    ``cache`` is an optional :class:`tools.replint.cache.FactsCache`;
    with it, unchanged files skip parsing entirely and graph passes
    re-run only on changed SCCs.
    """
    root = Path(root) if root is not None else Path.cwd()
    baseline = baseline or set()
    stats = {
        "files_parsed": 0,
        "files_cached": 0,
        "sccs_evaluated": 0,
        "sccs_reused": 0,
    }
    result = LintResult(checks=list(checks), stats=stats)

    for check in checks:
        check.start()

    records: List[FileRecord] = []
    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            source = path.read_text()
        except (UnicodeDecodeError, OSError) as exc:
            result.parse_errors.append(
                Finding("PARSE", relpath, 0, f"cannot analyze: {exc}")
            )
            continue
        content_hash = hashlib.sha256(source.encode()).hexdigest()
        record: Optional[FileRecord] = None
        if cache is not None:
            cached = cache.get_file(relpath, content_hash)
            if cached is not None:
                record = FileRecord.from_json(cached)
                if any(c.id not in record.facts for c in checks):
                    record = None  # suite changed: re-extract
        if record is None:
            try:
                record = _build_record(path, relpath, source, checks)
            except SyntaxError as exc:
                line = getattr(exc, "lineno", 0) or 0
                result.parse_errors.append(
                    Finding("PARSE", relpath, line, f"cannot analyze: {exc}")
                )
                continue
            stats["files_parsed"] += 1
            if cache is not None:
                cache.put_file(relpath, content_hash, record.to_json())
        else:
            stats["files_cached"] += 1
        records.append(record)
    result.files_scanned = len(records)

    project = ProjectIndex(records, root=root, cache=cache, stats=stats)

    raw: List[Finding] = []
    for check in checks:
        for record in records:
            raw.extend(
                check.file_findings(
                    record.relpath, record.facts.get(check.id)
                )
            )
        raw.extend(check.finalize(project))

    kept: List[Finding] = []
    for finding in sorted(raw, key=lambda f: f.sort_key):
        record = project.by_path.get(finding.path)
        if record is not None and record.suppressed(
            finding.check, finding.line
        ):
            continue
        kept.append(finding)
    for finding, key in zip(kept, occurrence_keys(kept)):
        if key in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
