"""replint framework: findings, pragmas, baseline, check protocol, runner.

Design goals, in order:

1. **Zero dependencies** — stdlib ``ast`` + ``json`` only, so the lint
   gate runs anywhere the repo's tests run (and in CI before any
   install step beyond the checkout).
2. **Pluggable checks** — a check is a class with an id, a per-file
   hook, and an optional whole-project ``finalize`` hook (used by
   cross-file checks like RL003 telemetry-sync, which must see every
   emit site *and* the schema catalog before it can diff them).
3. **Escape hatches that leave a paper trail** — a per-line pragma
   (``# replint: disable=RL001``) for intentional one-offs and a
   committed baseline file for grandfathered findings.  Baseline keys
   deliberately exclude line numbers so unrelated edits above a
   grandfathered finding don't churn the file.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Pragma grammar: ``# replint: disable=RL001`` / ``=RL001,RL005`` /
#: ``=all``, anywhere in the line's trailing comment.
_PRAGMA_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)",
    re.IGNORECASE,
)

_ALL = "all"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    check: str  # "RL001"
    path: str  # repo-relative posix path
    line: int  # 1-based
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.path}::{self.check}::{self.message}"

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.check} {self.message}"


class FileContext:
    """One parsed source file handed to every check."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._pragmas: Optional[Dict[int, Set[str]]] = None

    @property
    def pragmas(self) -> Dict[int, Set[str]]:
        """lineno -> set of lowercased check ids disabled on that line."""
        if self._pragmas is None:
            table: Dict[int, Set[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _PRAGMA_RE.search(line)
                if match is None:
                    continue
                raw = match.group(1)
                table[lineno] = {
                    name.strip().lower() for name in raw.split(",")
                }
            self._pragmas = table
        return self._pragmas

    def suppressed(self, check_id: str, line: int) -> bool:
        disabled = self.pragmas.get(line)
        if not disabled:
            return False
        return _ALL in disabled or check_id.lower() in disabled


class Check:
    """Base class for one lint rule.

    Subclasses set ``id`` / ``name`` / ``description`` and implement
    :meth:`visit_file`.  Cross-file rules accumulate state in
    :meth:`visit_file` and emit findings from :meth:`finalize`; the
    runner calls :meth:`start` before the first file so a check
    instance can be reused across runs (the test suite does).
    """

    id: str = "RL000"
    name: str = "base"
    description: str = ""

    def start(self) -> None:
        """Reset per-run state (cross-file accumulators)."""

    def visit_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()

    # -- helpers shared by concrete checks ------------------------------

    def finding(self, ctx_or_path, line: int, message: str) -> Finding:
        relpath = (
            ctx_or_path.relpath
            if isinstance(ctx_or_path, FileContext)
            else str(ctx_or_path)
        )
        return Finding(self.id, relpath, line, message)


@dataclass
class LintResult:
    """Everything a reporter needs."""

    findings: List[Finding] = field(default_factory=list)  # new, unbaselined
    baselined: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    checks: List[Check] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def all_findings(self) -> List[Finding]:
        return sorted(
            self.findings + self.baselined + self.parse_errors,
            key=lambda f: (f.path, f.line, f.check),
        )


# ---------------------------------------------------------------------------
# Baseline file
# ---------------------------------------------------------------------------


def occurrence_keys(findings: Sequence[Finding]) -> List[str]:
    """Baseline keys for ``findings``, disambiguating duplicates.

    Keys are line-number-free so edits above a grandfathered finding
    don't churn the baseline; identical (path, check, message) triples
    are numbered in line order (``...#2``, ``...#3``) so two distinct
    violations with the same text each need their own baseline entry.
    """
    counts: Dict[str, int] = {}
    keys: List[str] = []
    for finding in findings:
        base = finding.baseline_key
        n = counts.get(base, 0) + 1
        counts[base] = n
        keys.append(base if n == 1 else f"{base}#{n}")
    return keys


def load_baseline(path: Optional[Path]) -> Set[str]:
    """Baseline keys from ``path``; missing file means empty baseline."""
    if path is None or not Path(path).exists():
        return set()
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file: {path}")
    return set(data["findings"])


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.check))
    keys = sorted(occurrence_keys(ordered))
    payload = {"version": 1, "findings": keys}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ---------------------------------------------------------------------------
# File discovery + runner
# ---------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through verbatim)."""
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.parts
                if any(
                    p == "__pycache__" or p.startswith(".") for p in parts
                ):
                    continue
                found.append(sub)
    return found


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_replint(
    paths: Sequence[Path],
    checks: Sequence[Check],
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Run ``checks`` over every Python file under ``paths``.

    ``root`` anchors repo-relative paths in findings and baseline keys
    (defaults to the current working directory — i.e. the repo root
    when invoked via ``make lint`` / ``python -m tools.replint``).
    """
    root = Path(root) if root is not None else Path.cwd()
    baseline = baseline or set()
    result = LintResult(checks=list(checks))

    for check in checks:
        check.start()

    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            source = path.read_text()
            ctx = FileContext(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            result.parse_errors.append(
                Finding("PARSE", relpath, line, f"cannot analyze: {exc}")
            )
            continue
        contexts.append(ctx)
    result.files_scanned = len(contexts)

    raw: List[Finding] = []
    pragma_index: Dict[str, FileContext] = {c.relpath: c for c in contexts}
    for ctx in contexts:
        for check in checks:
            raw.extend(check.visit_file(ctx))
    for check in checks:
        raw.extend(check.finalize())

    kept: List[Finding] = []
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.check)):
        ctx = pragma_index.get(finding.path)
        if ctx is not None and ctx.suppressed(finding.check, finding.line):
            continue
        kept.append(finding)
    for finding, key in zip(kept, occurrence_keys(kept)):
        if key in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
