"""Incremental facts cache under ``.repro_cache/replint/``.

Two stores, both keyed so stale entries are *unreachable* rather than
invalidated:

* **File store** — one JSON record per (relpath, content) pair holding
  everything the runner needs without re-parsing: pragma tables,
  file-level disables, graph facts, and per-check extracted facts.
  The key folds in the analyzer version stamp, so editing any replint
  source or ``layers.toml`` orphans every entry.
* **Pass store** — graph-pass results (per-SCC taint summaries, the
  global fork-reachability verdict) keyed by a signature the caller
  derives from its inputs (member content hashes + the summaries of
  successor SCCs).  A one-file edit changes only that file's SCC
  signature and — when its exported summary changes — its dependents'.

Entries are content-addressed, never deleted here; ``make clean``
removes the whole ``.repro_cache`` directory.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

DEFAULT_CACHE_DIR = Path(".repro_cache") / "replint"


def _sha(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def analyzer_version(config_bytes: bytes = b"") -> str:
    """Hash of every replint source file plus the active config.

    Folded into cache keys so any analyzer change invalidates all
    cached facts — findings must never outlive the code that derived
    them.
    """
    root = Path(__file__).parent
    parts = [config_bytes]
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        parts.append(path.read_bytes())
    return _sha(*parts)[:16]


class FactsCache:
    """Content-addressed store for file records and pass results."""

    def __init__(self, cache_dir: Path, version: str):
        self.cache_dir = Path(cache_dir)
        self.version = version
        self.hits = 0
        self.misses = 0

    # -- file records -----------------------------------------------------

    def _file_path(self, relpath: str, content_hash: str) -> Path:
        key = _sha(
            self.version.encode(), relpath.encode(), content_hash.encode()
        )
        return self.cache_dir / "files" / key[:2] / f"{key}.json"

    def get_file(self, relpath: str, content_hash: str) -> Optional[Dict]:
        path = self._file_path(relpath, content_hash)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put_file(self, relpath: str, content_hash: str, record: Dict) -> None:
        path = self._file_path(relpath, content_hash)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, sort_keys=True))
            tmp.replace(path)
        except OSError:
            pass  # cache writes are best-effort

    # -- graph-pass results ------------------------------------------------

    def _pass_path(self, pass_id: str, signature: str) -> Path:
        key = _sha(self.version.encode(), signature.encode())
        return self.cache_dir / "passes" / pass_id / f"{key}.json"

    def get_pass(self, pass_id: str, signature: str) -> Optional[Dict]:
        path = self._pass_path(pass_id, signature)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put_pass(self, pass_id: str, signature: str, value: Dict) -> None:
        path = self._pass_path(pass_id, signature)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(value, sort_keys=True))
            tmp.replace(path)
        except OSError:
            pass  # cache writes are best-effort
