"""Whole-program import/call graph over the ``repro`` package.

This is the substrate the graph-powered checks share.  It is built in
two phases so the incremental cache can skip re-parsing:

1. **Per-file extraction** (:func:`extract_file_facts`) — a pure
   function of one file's AST producing a JSON-serializable facts
   dict: module name, import edges (with lazy/type-only flags), the
   def table (functions, methods, classes), best-effort dotted call
   sites per definition, bare attribute-call names (for duck-typed
   linking), and module-global read/write/mutation sites.  These facts
   are what the cache persists, keyed by content hash.

2. **Project assembly** (:class:`ProjectGraph`) — joins every file's
   facts into module-level import edges, symbol tables, a resolved
   call graph, and the SCC condensation (Tarjan) that both the
   layering pass and the incremental scheduler key on.

Resolution is deliberately best-effort: Python's dynamism means a
sound-and-complete call graph is unreachable, so each consumer picks
the bias it needs — RL008 uses only import edges (precise), RL009
follows only *resolved* calls (under-approximate, avoids false
taint), RL010 additionally duck-links attribute calls by method name
(over-approximate, the right bias for a reachability closure).
"""

from __future__ import annotations

import ast
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple,
)

#: Names treated as mutable-container constructors (matches RL005).
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort",
        "reverse", "appendleft", "popleft",
    }
)


def module_name(relpath: str) -> Optional[str]:
    """Dotted module name of a repo-relative path, or None.

    ``src/repro/simulator/fluid.py`` -> ``repro.simulator.fluid``;
    ``src/repro/__init__.py`` -> ``repro``.  Files outside ``src/``
    (tools, tests, benchmarks) are not part of the analyzed program.
    """
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FactsVisitor(ast.NodeVisitor):
    """Single walk collecting defs, calls, refs and global uses."""

    def __init__(self, module: str, mutable_globals: Set[str]):
        self.module = module
        self.mutable_globals = mutable_globals
        self.defs: Dict[str, Dict] = {}
        self.classes: Dict[str, Dict] = {}
        self.calls: Dict[str, List] = {}
        self.attr_calls: Dict[str, List] = {}
        self.refs: Dict[str, List] = {}
        self.global_reads: Dict[str, List] = {}
        self.global_writes: Dict[str, List] = {}
        self._scope: List[str] = []  # e.g. ["WarmCache", "lookup"]
        self._class: List[str] = []

    # -- scope bookkeeping ------------------------------------------------

    @property
    def qualname(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        kind = (
            "method"
            if self._class and len(self._scope) == len(self._class)
            else "function"
        )
        self._scope.append(node.name)
        self.defs[self.qualname] = {
            "line": node.lineno,
            "kind": kind,
            "cls": self._class[-1] if self._class else None,
        }
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self._class.append(node.name)
        self.classes[node.name] = {
            "line": node.lineno,
            "bases": [b for b in (_dotted(x) for x in node.bases) if b],
        }
        self.generic_visit(node)
        self._class.pop()
        self._scope.pop()

    # -- calls / refs -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            self.calls.setdefault(self.qualname, []).append(
                [name, node.lineno]
            )
            # Receiver of a mutating method on a module global.
            head, _, tail = name.rpartition(".")
            if tail in MUTATING_METHODS and head in self.mutable_globals:
                if self._scope:
                    self.global_writes.setdefault(self.qualname, []).append(
                        [head, node.lineno, f".{tail}()"]
                    )
        if isinstance(node.func, ast.Attribute):
            self.attr_calls.setdefault(self.qualname, []).append(
                [node.func.attr, node.lineno]
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.mutable_globals and self._scope:
            if isinstance(node.ctx, ast.Load):
                self.global_reads.setdefault(self.qualname, []).append(
                    [node.id, node.lineno]
                )
            else:
                self.global_writes.setdefault(self.qualname, []).append(
                    [node.id, node.lineno, "assignment"]
                )
        if isinstance(node.ctx, ast.Load):
            self.refs.setdefault(self.qualname, []).append(node.id)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # GLOBAL[key] = value  /  del GLOBAL[key]
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            base = node.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.mutable_globals
                and self._scope
            ):
                self.global_writes.setdefault(self.qualname, []).append(
                    [base.id, node.lineno, "item assignment"]
                )
        self.generic_visit(node)


def _collect_imports(
    tree: ast.Module, module: Optional[str], is_package: bool
) -> List[Dict]:
    """Import records with lazy (function-scope) / type-only flags."""
    records: List[Dict] = []
    # Anchor for relative imports: level N strips N components off the
    # *file's* package path.  For a plain module that path is the
    # module minus its last component; for a package __init__ it is
    # the module itself, so pad with a dummy leaf before stripping.
    anchor = (module or "").split(".") if module else []
    if is_package:
        anchor = anchor + ["__init__"]

    def walk(node: ast.AST, lazy: bool, typeonly: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_lazy = lazy or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            child_typeonly = typeonly
            if isinstance(child, ast.If):
                flag = _dotted(child.test) or ""
                if flag.endswith("TYPE_CHECKING"):
                    child_typeonly = True
            if isinstance(child, ast.Import):
                for alias in child.names:
                    records.append(
                        {
                            "target": alias.name,
                            "name": None,
                            "local": alias.asname or alias.name.split(".")[0],
                            "line": child.lineno,
                            "lazy": lazy,
                            "typeonly": typeonly,
                        }
                    )
            elif isinstance(child, ast.ImportFrom):
                target = child.module or ""
                if child.level:
                    base = anchor[: len(anchor) - child.level]
                    target = ".".join(base + ([target] if target else []))
                for alias in child.names:
                    records.append(
                        {
                            "target": target,
                            "name": alias.name,
                            "local": alias.asname or alias.name,
                            "line": child.lineno,
                            "lazy": lazy,
                            "typeonly": typeonly,
                        }
                    )
            else:
                walk(child, child_lazy, child_typeonly)

    walk(tree, lazy=False, typeonly=False)
    return records


def module_level_mutables(tree: ast.Module) -> Dict[str, int]:
    """Module-scope names bound to mutable containers (name -> line)."""
    table: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in MUTABLE_CONSTRUCTORS
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.startswith("__"):
                table[target.id] = node.lineno
    return table


def extract_file_facts(relpath: str, tree: ast.Module) -> Dict:
    """The per-file graph facts persisted by the incremental cache."""
    module = module_name(relpath)
    mutables = module_level_mutables(tree)
    visitor = _FactsVisitor(module or "", set(mutables))
    visitor.visit(tree)
    return {
        "module": module,
        "imports": _collect_imports(
            tree, module, relpath.endswith("/__init__.py")
        ),
        "defs": visitor.defs,
        "classes": visitor.classes,
        "calls": visitor.calls,
        "attr_calls": visitor.attr_calls,
        "refs": {
            qual: sorted(set(names))
            for qual, names in visitor.refs.items()
        },
        "globals_mutable": mutables,
        "global_reads": visitor.global_reads,
        "global_writes": visitor.global_writes,
    }


def strongly_connected(
    nodes: Sequence[str], adjacency: Dict[str, List[str]]
) -> List[List[str]]:
    """Tarjan's SCCs, iterative, in reverse topological order
    (dependencies before dependents).  Components are sorted lists."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in adjacency:
                    continue
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    for node in sorted(nodes):
        if node not in index_of:
            strongconnect(node)
    return sccs


# ---------------------------------------------------------------------------
# Project graph
# ---------------------------------------------------------------------------


class ProjectGraph:
    """Modules, import edges, symbols, call graph, SCC condensation."""

    def __init__(self, facts_by_path: Dict[str, Dict]):
        #: module -> (relpath, facts)
        self.modules: Dict[str, Tuple[str, Dict]] = {}
        for relpath, facts in sorted(facts_by_path.items()):
            mod = facts.get("module")
            if mod:
                self.modules[mod] = (relpath, facts)
        self._symbols: Dict[str, Dict[str, str]] = {}
        self._edges: Optional[List[Dict]] = None
        self._sccs: Optional[List[List[str]]] = None
        self._scc_of: Dict[str, int] = {}
        self._methods_by_name: Optional[Dict[str, List[str]]] = None

    # -- import edges -----------------------------------------------------

    def _resolve_import_target(self, record: Dict) -> Optional[str]:
        """Project module an import record lands on, or None."""
        target = record["target"]
        name = record["name"]
        if name and name != "*" and f"{target}.{name}" in self.modules:
            return f"{target}.{name}"  # `from repro.tuning import grid`
        probe = target
        while probe:
            if probe in self.modules:
                return probe
            probe = probe.rpartition(".")[0]
        return None

    @property
    def import_edges(self) -> List[Dict]:
        """Module-level edges: src, dst, line, lazy, typeonly."""
        if self._edges is None:
            edges: List[Dict] = []
            for mod, (_, facts) in sorted(self.modules.items()):
                for record in facts["imports"]:
                    dst = self._resolve_import_target(record)
                    if dst is None or dst == mod:
                        continue
                    edges.append(
                        {
                            "src": mod,
                            "dst": dst,
                            "line": record["line"],
                            "lazy": record["lazy"],
                            "typeonly": record["typeonly"],
                        }
                    )
            self._edges = edges
        return self._edges

    # -- symbols ----------------------------------------------------------

    def symbols(self, mod: str) -> Dict[str, str]:
        """Local name -> fully qualified target for one module."""
        if mod not in self._symbols:
            table: Dict[str, str] = {}
            _, facts = self.modules[mod]
            for record in facts["imports"]:
                if record["typeonly"]:
                    continue
                target, name = record["target"], record["name"]
                fq = f"{target}.{name}" if name and name != "*" else target
                table[record["local"]] = fq
            for qual in facts["defs"]:
                if "." not in qual:
                    table[qual] = f"{mod}.{qual}"
            for cls in facts["classes"]:
                table[cls] = f"{mod}.{cls}"
            self._symbols[mod] = table
        return self._symbols[mod]

    def _chase(self, target: str, depth: int = 5) -> Optional[Tuple[str, str]]:
        """Resolve ``target`` through re-exports to (module, qualname).

        ``repro.parallel.EvalTask`` chases the ``from .tasks import
        EvalTask`` in the package __init__ to ``repro.parallel.tasks``.
        """
        for _ in range(depth):
            probe = target
            while probe and probe not in self.modules:
                probe = probe.rpartition(".")[0]
            if not probe:
                return None
            qual = target[len(probe) + 1:]
            if not qual:
                return None
            _, facts = self.modules[probe]
            if qual in facts["defs"] or qual in facts["classes"]:
                return probe, qual
            head, _, rest = qual.partition(".")
            origin = self.symbols(probe).get(head)
            if origin is None or origin == target:
                return None
            target = f"{origin}.{rest}" if rest else origin
        return None

    def resolve_call(
        self, mod: str, caller: str, dotted: str
    ) -> Optional[str]:
        """Fully qualified project def a call lands on, or None.

        ``caller`` is the caller's qualname within ``mod`` (used for
        ``self.m()`` receiver inference).  A call on a class resolves
        to its ``__init__`` when one is defined.
        """
        head, _, rest = dotted.partition(".")
        if mod not in self.modules:
            return None
        _, facts = self.modules[mod]
        if head in ("self", "cls") and rest and "." not in rest:
            cls: Optional[str] = facts["defs"].get(caller, {}).get("cls")
            seen: Set[str] = set()
            while cls and cls not in seen:
                seen.add(cls)
                qual = f"{cls}.{rest}"
                if qual in facts["defs"]:
                    return f"{mod}.{qual}"
                bases = facts["classes"].get(cls, {}).get("bases", [])
                cls = bases[0].rpartition(".")[2] if bases else None
            return None
        origin = self.symbols(mod).get(head)
        if origin is None and "." in dotted:
            return None  # attribute call on an unknown receiver
        if origin is None:
            return None  # undefined bare name: builtin or local
        target = f"{origin}.{rest}" if rest else origin
        hit = self._chase(target)
        if hit is None:
            return None
        tmod, qual = hit
        _, tfacts = self.modules[tmod]
        if qual in tfacts["classes"]:
            init = f"{qual}.__init__"
            if init in tfacts["defs"]:
                return f"{tmod}.{init}"
        return f"{tmod}.{qual}"

    # -- duck-typed method linking ---------------------------------------

    def methods_named(self, name: str) -> List[str]:
        if self._methods_by_name is None:
            index: Dict[str, List[str]] = {}
            for mod, (_, facts) in sorted(self.modules.items()):
                for qual, info in facts["defs"].items():
                    if info.get("kind") != "method":
                        continue
                    index.setdefault(qual.rpartition(".")[2], []).append(
                        f"{mod}.{qual}"
                    )
            self._methods_by_name = index
        return self._methods_by_name.get(name, [])

    # -- SCC condensation --------------------------------------------------

    @property
    def sccs(self) -> List[List[str]]:
        """SCCs of the module import graph (lazy edges included,
        type-only excluded), dependencies before dependents."""
        if self._sccs is None:
            adjacency: Dict[str, List[str]] = {m: [] for m in self.modules}
            for edge in self.import_edges:
                if edge["typeonly"]:
                    continue
                adjacency[edge["src"]].append(edge["dst"])
            self._sccs = strongly_connected(sorted(self.modules), adjacency)
            self._scc_of = {
                m: i for i, comp in enumerate(self._sccs) for m in comp
            }
        return self._sccs

    def scc_of(self, mod: str) -> int:
        self.sccs  # builds the index
        return self._scc_of[mod]

    def scc_successors(self) -> Dict[int, Set[int]]:
        """SCC index -> set of SCC indices it imports (no self loops)."""
        self.sccs
        successors: Dict[int, Set[int]] = {
            i: set() for i in range(len(self._sccs or []))
        }
        for edge in self.import_edges:
            if edge["typeonly"]:
                continue
            a, b = self._scc_of[edge["src"]], self._scc_of[edge["dst"]]
            if a != b:
                successors[a].add(b)
        return successors

    def eager_cycles(self) -> List[List[str]]:
        """Import cycles in the eager subgraph (lazy + type-only edges
        dropped) — these are the cycles that bite at import time."""
        adjacency: Dict[str, List[str]] = {m: [] for m in self.modules}
        for edge in self.import_edges:
            if edge["typeonly"] or edge["lazy"]:
                continue
            adjacency[edge["src"]].append(edge["dst"])
        return [
            comp
            for comp in strongly_connected(sorted(self.modules), adjacency)
            if len(comp) > 1
        ]

    # -- reachability -----------------------------------------------------

    def owner_of(self, fq: str) -> Optional[Tuple[str, str]]:
        """Split a fully qualified def into (module, qualname)."""
        mod = fq
        while mod and mod not in self.modules:
            mod = mod.rpartition(".")[0]
        if not mod:
            return None
        qual = fq[len(mod) + 1:] or "<module>"
        return mod, qual

    def reachable_defs(
        self,
        entries: Iterable[str],
        duck_blocklist: FrozenSet[str] = frozenset(),
    ) -> Set[str]:
        """Closure of defs reachable from ``entries`` via resolved
        calls, address-taken references, and duck-linked attribute
        calls (method-name match, minus the blocklist)."""
        seen: Set[str] = set()
        work: List[str] = sorted(entries)
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            owner = self.owner_of(current)
            if owner is None:
                continue
            mod, qual = owner
            _, facts = self.modules[mod]
            for dotted, _line in facts["calls"].get(qual, ()):
                target = self.resolve_call(mod, qual, dotted)
                if target:
                    work.append(target)
            for name, _line in facts["attr_calls"].get(qual, ()):
                if name in duck_blocklist:
                    continue
                work.extend(self.methods_named(name))
            symbols = self.symbols(mod)
            for ref in facts["refs"].get(qual, ()):
                origin = symbols.get(ref)
                if origin is None:
                    continue
                hit = self._chase(origin)
                if hit is None:
                    continue
                rmod, rqual = hit
                if rqual in self.modules[rmod][1]["defs"]:
                    work.append(f"{rmod}.{rqual}")
        return seen
