"""Text, JSON and SARIF renderings of a :class:`~tools.replint.core.LintResult`.

Reports deliberately exclude run statistics and timing: a warm
(cache-served) run must render byte-identically to the cold run it
mirrors, which is exactly what the CI equivalence step diffs.  Timing
goes to stderr in the CLI instead.
"""

from __future__ import annotations

import json
from typing import Dict, List

from tools.replint.core import LintResult

#: SARIF 2.1.0 — the GitHub code-scanning ingestion format.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = []
    for finding in result.parse_errors:
        lines.append(finding.format())
    for finding in result.findings:
        lines.append(finding.format())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.format()} [baselined]")
    total = len(result.findings) + len(result.parse_errors)
    summary = (
        f"replint: {result.files_scanned} files, "
        f"{len(result.checks)} checks, "
        f"{total} finding(s), {len(result.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact)."""
    def encode(finding, baselined: bool) -> Dict:
        return {
            "check": finding.check,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "baselined": baselined,
            "key": finding.baseline_key,
        }

    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "checks": [
            {
                "id": check.id,
                "name": check.name,
                "description": check.description,
            }
            for check in result.checks
        ],
        "findings": (
            [encode(f, False) for f in result.parse_errors]
            + [encode(f, False) for f in result.findings]
            + [encode(f, True) for f in result.baselined]
        ),
        "counts": {
            "new": len(result.findings) + len(result.parse_errors),
            "baselined": len(result.baselined),
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning / IDE ingestion).

    New findings and parse errors are ``error`` level; baselined
    findings are shipped as ``note`` so the history stays visible
    without failing the scan.
    """
    rules: List[Dict] = [
        {
            "id": check.id,
            "name": check.name,
            "shortDescription": {"text": check.description},
        }
        for check in result.checks
    ]
    rule_ids = {rule["id"] for rule in rules}

    def sarif_result(finding, level: str) -> Dict:
        entry: Dict = {
            "ruleId": finding.check,
            "level": level,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        return entry

    results: List[Dict] = []
    for finding in result.parse_errors:
        results.append(sarif_result(finding, "error"))
        if finding.check not in rule_ids:
            rule_ids.add(finding.check)
            rules.append(
                {
                    "id": finding.check,
                    "name": "parse-error",
                    "shortDescription": {"text": "file could not be parsed"},
                }
            )
    for finding in result.findings:
        results.append(sarif_result(finding, "error"))
    for finding in result.baselined:
        results.append(sarif_result(finding, "note"))

    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "informationUri": "tools/replint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
