"""Text and JSON renderings of a :class:`~tools.replint.core.LintResult`."""

from __future__ import annotations

import json
from typing import Dict

from tools.replint.core import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = []
    for finding in result.parse_errors:
        lines.append(finding.format())
    for finding in result.findings:
        lines.append(finding.format())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.format()} [baselined]")
    total = len(result.findings) + len(result.parse_errors)
    summary = (
        f"replint: {result.files_scanned} files, "
        f"{len(result.checks)} checks, "
        f"{total} finding(s), {len(result.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact)."""
    def encode(finding, baselined: bool) -> Dict:
        return {
            "check": finding.check,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "baselined": baselined,
            "key": finding.baseline_key,
        }

    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "checks": [
            {
                "id": check.id,
                "name": check.name,
                "description": check.description,
            }
            for check in result.checks
        ],
        "findings": (
            [encode(f, False) for f in result.parse_errors]
            + [encode(f, False) for f in result.findings]
            + [encode(f, True) for f in result.baselined]
        ),
        "counts": {
            "new": len(result.findings) + len(result.parse_errors),
            "baselined": len(result.baselined),
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)
