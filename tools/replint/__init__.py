"""replint: repo-specific static analysis for reproducibility invariants.

The paraleon reproduction sells *bit-stable* results — SHA-256 run
digests that survive process pools, eval caches, and fidelity modes.
The invariants that make those digests stable are social contracts
("never call wall-clock in a simulated path", "all RNG flows from a
seed", "telemetry emit sites match the schema catalog") until a tool
checks them.  ``replint`` is that tool: a small, stdlib-``ast``-only
lint suite whose checks encode *this repo's* rules, run on every
commit via ``make lint`` and the CI ``lint`` job.

Checks (see :mod:`tools.replint.checks`):

========  ==================================================================
RL001     unseeded-rng — module-level ``random.*`` / ``np.random.*`` calls
          in deterministic packages (RNG must flow from a seeded generator)
RL002     wall-clock — ``time.time``/``perf_counter``/``datetime.now`` and
          friends outside the timing-shim allowlist
RL003     telemetry-sync — ``trace.event``/``trace.span`` names and attr
          dict keys diffed against the ``telemetry/schema.py`` catalog
RL004     env-registry — direct ``os.environ``/``os.getenv`` access
          anywhere but the central ``repro/env.py`` registry
RL005     fork-safety — unpicklable callables reaching pool submissions
          and module-level mutable state in worker-imported modules
RL006     silent-except — ``except Exception``/bare ``except`` that only
          ``pass``es
========  ==================================================================

Suppression: a per-line pragma ``# replint: disable=RL001`` (comma
lists and ``disable=all`` accepted) silences findings on that line; a
committed baseline file (``tools/replint/baseline.json``) grandfathers
known findings without hiding new ones.

Run ``python -m tools.replint src`` (or ``make lint``).
"""

from tools.replint.core import (  # noqa: F401
    Check,
    FileContext,
    Finding,
    LintResult,
    load_baseline,
    run_replint,
)

__version__ = "1.0"
