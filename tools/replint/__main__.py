"""``python -m tools.replint`` — run the invariant suite.

::

    python -m tools.replint src                   # lint, text report
    python -m tools.replint src --format json     # machine-readable
    python -m tools.replint src --format sarif    # code-scanning upload
    python -m tools.replint src --write-baseline  # grandfather findings
    python -m tools.replint src --no-cache        # force a cold run
    python -m tools.replint --list-checks

Exit codes: 0 clean (every finding baselined or suppressed), 1 any
new finding or unparsable file, 2 usage error.

Runs are incremental by default: per-file AST facts are cached under
``.repro_cache/replint/`` keyed by content hash and analyzer version,
and whole-program passes re-run only on changed SCCs.  Wall time and
cache counters print to *stderr* so stdout reports stay byte-identical
between cold and warm runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from tools.replint.cache import DEFAULT_CACHE_DIR, FactsCache, analyzer_version
from tools.replint.checks import default_checks
from tools.replint.config import DEFAULT_CONFIG_PATH
from tools.replint.core import load_baseline, run_replint, write_baseline
from tools.replint.reporters import render_json, render_sarif, render_text

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="repo-specific static analysis for reproducibility "
        "invariants (determinism, telemetry-schema sync, fork safety, "
        "layering, determinism taint, fork reachability, contract sync)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the report to PATH (used by CI for artifacts)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings "
        "(default: tools/replint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="CHECK",
        help="disable a check id (repeatable), e.g. --disable RL005",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the incremental facts cache (force a cold run)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=str(DEFAULT_CACHE_DIR),
        help="incremental cache directory "
        "(default: .repro_cache/replint)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in the text report",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print the check catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    checks = default_checks(disable=args.disable)

    if args.list_checks:
        for check in checks:
            print(f"{check.id}  {check.name:18s} {check.description}")
        return 0

    baseline_path = None if args.no_baseline else Path(args.baseline)
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        try:
            config_bytes = DEFAULT_CONFIG_PATH.read_bytes()
        except OSError:
            config_bytes = b""
        cache = FactsCache(
            Path(args.cache_dir), analyzer_version(config_bytes)
        )

    started = time.perf_counter()
    result = run_replint(
        [Path(p) for p in args.paths], checks, baseline=baseline, cache=cache
    )
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        findings = result.findings + result.baselined
        write_baseline(Path(args.baseline), findings)
        print(
            f"replint: wrote {len(findings)} finding(s) to {args.baseline}"
        )
        return 0

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result, verbose=args.verbose)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n")
    stats = result.stats
    print(
        f"replint: {elapsed:.3f}s wall "
        f"(parsed {stats.get('files_parsed', 0)}, "
        f"cached {stats.get('files_cached', 0)} files; "
        f"graph SCCs evaluated {stats.get('sccs_evaluated', 0)}, "
        f"reused {stats.get('sccs_reused', 0)})",
        file=sys.stderr,
    )
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
