"""Typed view of ``layers.toml`` — the analyzer's committed contract.

The graph-powered checks (RL008 layering, RL009 determinism taint,
RL010 fork reachability, RL011 contract sync) are data-driven: the
layer DAG, taint vocabulary, fork entry points and artifact paths all
live in ``tools/replint/layers.toml`` so the enforced architecture is
reviewable without reading analyzer code.  The file's content hash is
folded into the analyzer version stamp, so editing it invalidates the
incremental cache (see :mod:`tools.replint.cache`).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_CONFIG_PATH = Path(__file__).parent / "layers.toml"


@dataclass(frozen=True)
class ReplintConfig:
    """Parsed ``layers.toml``."""

    # RL008
    layer_order: Tuple[str, ...]
    layer_assign: Dict[str, str]  # path prefix -> layer name
    # RL009
    taint_sources: Tuple[str, ...]
    taint_sanitizers: Tuple[str, ...]
    taint_sinks: Tuple[str, ...]
    taint_sink_fields: Dict[str, Tuple[str, ...]]
    taint_strict_packages: Tuple[str, ...]
    # RL010
    fork_entries: Tuple[str, ...]
    fork_entry_methods: Tuple[str, ...]
    fork_sanctioned: Tuple[str, ...]
    duck_blocklist: frozenset
    # RL011
    env_module: str
    cli_module: str
    readme: str
    readme_table_begin: str
    readme_table_end: str
    build_files: Tuple[str, ...]
    flag_allowlist: Tuple[str, ...]
    # provenance
    source_path: str = field(default="", compare=False)
    source_bytes: bytes = field(default=b"", compare=False, repr=False)

    def layer_index(self, name: str) -> int:
        return self.layer_order.index(name)

    def layer_of(self, relpath: str) -> str:
        """Layer of a repo-relative path (longest prefix wins).

        Returns ``""`` for files outside every assigned prefix — those
        are invisible to RL008.
        """
        path = relpath
        if path.startswith("src/"):
            path = path[len("src/"):]
        best, best_len = "", -1
        for prefix, layer in self.layer_assign.items():
            if path.startswith(prefix) and len(prefix) > best_len:
                best, best_len = layer, len(prefix)
        return best

    def is_sanctioned_global(self, module: str, name: str) -> bool:
        target = f"{module}.{name}"
        for pattern in self.fork_sanctioned:
            if pattern.endswith(".*"):
                if module == pattern[:-2]:
                    return True
            elif target == pattern:
                return True
        return False


def load_config(path: Path = DEFAULT_CONFIG_PATH) -> ReplintConfig:
    raw_bytes = Path(path).read_bytes()
    data = tomllib.loads(raw_bytes.decode())
    layers = data.get("layers", {})
    taint = data.get("taint", {})
    fork = data.get("forkreach", {})
    contracts = data.get("contracts", {})

    order = tuple(layers.get("order", ()))
    assign = dict(layers.get("assign", {}))
    unknown = sorted(set(assign.values()) - set(order))
    if unknown:
        raise ValueError(
            f"layers.toml assigns unknown layer(s) {unknown}; "
            "add them to layers.order"
        )
    return ReplintConfig(
        layer_order=order,
        layer_assign=assign,
        taint_sources=tuple(taint.get("sources", ())),
        taint_sanitizers=tuple(taint.get("sanitizers", ())),
        taint_sinks=tuple(taint.get("sinks", ())),
        taint_sink_fields={
            cls: tuple(fields)
            for cls, fields in taint.get("sink_fields", {}).items()
        },
        taint_strict_packages=tuple(taint.get("strict_packages", ())),
        fork_entries=tuple(fork.get("entries", ())),
        fork_entry_methods=tuple(fork.get("entry_methods", ())),
        fork_sanctioned=tuple(fork.get("sanctioned", ())),
        duck_blocklist=frozenset(fork.get("duck_blocklist", ())),
        env_module=contracts.get("env_module", "src/repro/env.py"),
        cli_module=contracts.get("cli_module", "src/repro/cli.py"),
        readme=contracts.get("readme", "README.md"),
        readme_table_begin=contracts.get(
            "readme_table_begin", "<!-- env-table:begin"
        ),
        readme_table_end=contracts.get("readme_table_end", "env-table:end -->"),
        build_files=tuple(contracts.get("build_files", ())),
        flag_allowlist=tuple(contracts.get("flag_allowlist", ())),
        source_path=str(path),
        source_bytes=raw_bytes,
    )
