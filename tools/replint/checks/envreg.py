"""RL004 env-registry: all environment access through ``repro.env``.

Scattered ``os.environ.get("REPRO_*")`` reads were how the repo ended
up with three different boolean-parsing conventions and an env-var
table that drifted from reality.  The central registry
(``src/repro/env.py``) declares every ``REPRO_*`` variable once —
name, type, default, docstring — and is the only module allowed to
touch ``os.environ``.  Everything else (including *writes*, which pool
workers inherit) goes through it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from tools.replint.checks._util import dotted_name
from tools.replint.core import Check, FileContext, Finding

#: The registry itself, the one place process environment may be read
#: or written.
ENV_ALLOWLIST: Tuple[str, ...] = ("repro/env.py",)

_OS_CALLS = {"os.getenv", "os.putenv", "os.unsetenv"}


class EnvRegistryCheck(Check):
    id = "RL004"
    name = "env-registry"
    description = (
        "direct os.environ/os.getenv access outside repro/env.py; "
        "REPRO_* variables must go through the central registry"
    )

    def __init__(self, allowlist: Tuple[str, ...] = ENV_ALLOWLIST):
        self.allowlist = allowlist

    def extract(self, ctx: FileContext) -> List:
        sites: List = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if dotted_name(node) == "os.environ":
                    sites.append(
                        [
                            node.lineno,
                            "direct os.environ access; route through the "
                            "repro.env registry",
                        ]
                    )
            elif isinstance(node, ast.Call):
                if dotted_name(node.func) in _OS_CALLS:
                    sites.append(
                        [
                            node.lineno,
                            f"direct {dotted_name(node.func)}() call; route "
                            "through the repro.env registry",
                        ]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os" and any(
                    alias.name in ("environ", "getenv", "putenv")
                    for alias in node.names
                ):
                    sites.append(
                        [
                            node.lineno,
                            "importing environ/getenv from os; route "
                            "through the repro.env registry",
                        ]
                    )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        if any(relpath.endswith(s) for s in self.allowlist):
            return
        for line, message in facts or ():
            yield self.finding(relpath, line, message)
