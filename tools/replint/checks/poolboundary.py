"""RL007 pool-boundary: all process-fabric construction in one place.

The parallel fabric owns worker lifecycle (fork-time registry reset,
env-fingerprint respawn, warm caches) and shared-memory hygiene
(parent-owned slots, exactly-once unlink).  A stray
``ProcessPoolExecutor`` or ``shared_memory.SharedMemory`` constructed
elsewhere silently re-introduces the per-sweep spawn cost the pool
exists to amortize — and double-counts metrics, because only
:mod:`repro.parallel.worker` resets the forked registry.  Everything
outside ``repro/parallel/`` must go through
:class:`~repro.parallel.pool.WorkerPool` /
:class:`~repro.parallel.executor.SweepExecutor`.

``ThreadPoolExecutor`` is deliberately not flagged: threads share the
parent's registry and environment, so none of the fork hazards apply.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.replint.checks.forksafety import POOL_PACKAGES
from tools.replint.core import Check, FileContext, Finding

#: Constructors that create process-fabric resources.
_FABRIC_CONSTRUCTORS = {"ProcessPoolExecutor", "SharedMemory"}


def _constructor_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class PoolBoundaryCheck(Check):
    id = "RL007"
    name = "pool-boundary"
    description = (
        "direct ProcessPoolExecutor/SharedMemory construction outside "
        "repro/parallel/; use WorkerPool / SweepExecutor"
    )

    def extract(self, ctx: FileContext) -> List:
        sites: List = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _constructor_name(node)
            if name in _FABRIC_CONSTRUCTORS:
                sites.append(
                    [
                        node.lineno,
                        f"direct {name} construction outside repro/parallel/ "
                        "bypasses worker lifecycle and shared-memory "
                        "hygiene; go through WorkerPool/SweepExecutor",
                    ]
                )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        if any(pkg in relpath for pkg in POOL_PACKAGES):
            return
        for line, message in facts or ():
            yield self.finding(relpath, line, message)
