"""RL010 fork reachability: interprocedural upgrade of RL005.

RL005 flags module-level mutable containers in ``repro/parallel/``;
this pass follows the call graph instead of the package boundary.  It
computes the closure of code reachable from the worker child entry
points (``_worker_main`` plus every duck-typed ``run_in_worker``
dispatch target, from ``layers.toml [forkreach]``) and flags, inside
that closure:

* any **write/mutation** of a module-level mutable container — after
  fork that state diverges per process, and the parent never sees it;
* any **read** of a module-level mutable that some function body also
  mutates — reads of import-time constant tables are fine, reads of
  runtime-mutated state observe whichever process mutated last.

State workers touch *by design* (the telemetry registry reset at
worker startup, the warm-fabric cache, the packet free-list) is
sanctioned in ``layers.toml`` with a rationale next to each entry.

The closure is global — any file edit can change it — so the result is
cached under a whole-tree signature; the pass itself is one BFS over
already-extracted facts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.replint.config import ReplintConfig, load_config
from tools.replint.core import Check, Finding, ProjectIndex


class ForkReachabilityCheck(Check):
    id = "RL010"
    name = "fork-reachability"
    description = (
        "module-level mutable state read/written by code reachable "
        "from worker entry points (outside sanctioned paths)"
    )

    def __init__(self, config: Optional[ReplintConfig] = None):
        self._config = config

    @property
    def config(self) -> ReplintConfig:
        if self._config is None:
            self._config = load_config()
        return self._config

    def finalize(self, project: ProjectIndex) -> Iterable[Finding]:
        signature = project.global_signature("rl010")
        if project.cache is not None:
            cached = project.cache.get_pass(self.id, signature)
            if cached is not None:
                return [
                    Finding(check, path, line, message)
                    for check, path, line, message in cached["findings"]
                ]
        findings = self._compute(project)
        if project.cache is not None:
            project.cache.put_pass(
                self.id,
                signature,
                {
                    "findings": [
                        [f.check, f.path, f.line, f.message]
                        for f in findings
                    ]
                },
            )
        return findings

    def _compute(self, project: ProjectIndex) -> List[Finding]:
        config = self.config
        graph = project.graph

        entries: Set[str] = set(config.fork_entries)
        for method in config.fork_entry_methods:
            entries.update(graph.methods_named(method))
        if not entries:
            return []
        reachable = graph.reachable_defs(
            entries, duck_blocklist=config.duck_blocklist
        )

        # Globals some function body mutates, anywhere in the program:
        # reads of these observe fork-divergent state.
        runtime_mutated: Set[Tuple[str, str]] = set()
        for mod, (_, facts) in graph.modules.items():
            for _qual, writes in facts["global_writes"].items():
                for name, _line, _how in writes:
                    runtime_mutated.add((mod, name))

        found: Dict[Tuple[str, int, str], Finding] = {}
        for fq in sorted(reachable):
            owner = graph.owner_of(fq)
            if owner is None:
                continue
            mod, qual = owner
            relpath, facts = graph.modules[mod]
            written_here = set()
            for name, line, how in facts["global_writes"].get(qual, ()):
                written_here.add(name)
                if config.is_sanctioned_global(mod, name):
                    continue
                finding = self.finding(
                    relpath,
                    line,
                    f"{qual} is reachable from a worker entry point and "
                    f"mutates module-level {name!r} ({how}); state "
                    "diverges per forked process — pass it explicitly "
                    "or sanction it in layers.toml",
                )
                found[(relpath, line, finding.message)] = finding
            for name, line in facts["global_reads"].get(qual, ()):
                if name in written_here:
                    continue  # already flagged as a mutation above
                if (mod, name) not in runtime_mutated:
                    continue  # import-time constant table: safe
                if config.is_sanctioned_global(mod, name):
                    continue
                finding = self.finding(
                    relpath,
                    line,
                    f"{qual} is reachable from a worker entry point and "
                    f"reads module-level {name!r}, which is mutated at "
                    "runtime; forked workers may observe divergent state",
                )
                found[(relpath, line, finding.message)] = finding
        return [found[key] for key in sorted(found)]
