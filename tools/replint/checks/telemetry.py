"""RL003 telemetry-sync: emit sites must match the schema catalog.

``repro/telemetry/schema.py`` declares, per record name, the attrs a
record must carry (``EVENT_ATTRS`` / ``SPAN_ATTRS``).  The runtime
validator can only prove *presence* on traces that were actually
recorded; this check closes the loop statically: every
``trace.event("name", {...})`` / ``trace.span("name", {...})`` in the
tree is extracted and diffed against the catalog, so

* an emit site with a name the catalog has never heard of,
* a literal attrs dict missing a catalogued key, and
* a literal attrs dict carrying keys the catalog does not list

are all build failures — the catalog and the instrumentation cannot
drift apart silently in either direction.

Dict literals containing ``**spread`` elements are diffed on their
literal keys only (extra-key errors still fire; missing-key errors are
suppressed because the spread may supply them).
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from tools.replint.core import Check, FileContext, Finding, ProjectIndex

#: The schema module (catalog source) and the emitter itself are not
#: emit *sites*; ``TraceEmitter.event`` would read as one otherwise.
_EXCLUDED_SUFFIXES = (
    "repro/telemetry/trace.py",
    "repro/telemetry/schema.py",
)

_SCHEMA_SUFFIX = "repro/telemetry/schema.py"


@dataclass
class EmitSite:
    """One statically extracted ``trace.event``/``trace.span`` call."""

    relpath: str
    line: int
    kind: str  # "event" | "span"
    name: Optional[str]  # None when not a string literal
    keys: Tuple[str, ...]  # literal attr keys, in source order
    has_spread: bool  # dict carried **spread / non-literal keys
    has_attrs: bool  # an attrs argument was present at all
    attrs_is_literal: bool  # ... and it was a dict display


def extract_emit_sites(tree: ast.Module, relpath: str) -> List[EmitSite]:
    """Every ``trace.event(...)``/``trace.span(...)`` call in ``tree``."""
    sites: List[EmitSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("event", "span")
            and isinstance(func.value, ast.Name)
            and func.value.id == "trace"
        ):
            continue
        name: Optional[str] = None
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            name = node.args[0].value
        attrs_node: Optional[ast.expr] = None
        if len(node.args) > 1:
            attrs_node = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "attrs":
                    attrs_node = kw.value
        keys: List[str] = []
        has_spread = False
        attrs_is_literal = isinstance(attrs_node, ast.Dict)
        if isinstance(attrs_node, ast.Dict):
            for key in attrs_node.keys:
                if key is None:  # {**spread}
                    has_spread = True
                elif isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.append(key.value)
                else:
                    has_spread = True  # dynamic key: treat as opaque
        sites.append(
            EmitSite(
                relpath=relpath,
                line=node.lineno,
                kind=func.attr,
                name=name,
                keys=tuple(keys),
                has_spread=has_spread,
                has_attrs=attrs_node is not None,
                attrs_is_literal=attrs_is_literal,
            )
        )
    return sites


def extract_catalog(
    tree: ast.Module,
) -> Tuple[Optional[Dict[str, Tuple[str, ...]]],
           Optional[Dict[str, Tuple[str, ...]]]]:
    """``(EVENT_ATTRS, SPAN_ATTRS)`` literal-evaluated from the schema."""
    events: Optional[Dict[str, Tuple[str, ...]]] = None
    spans: Optional[Dict[str, Tuple[str, ...]]] = None
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id not in ("EVENT_ATTRS", "SPAN_ATTRS"):
                continue
            try:
                evaluated = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
            if target.id == "EVENT_ATTRS":
                events = {k: tuple(v) for k, v in evaluated.items()}
            else:
                spans = {k: tuple(v) for k, v in evaluated.items()}
    return events, spans


class TelemetrySyncCheck(Check):
    id = "RL003"
    name = "telemetry-sync"
    description = (
        "trace.event/trace.span names and attr keys must match the "
        "EVENT_ATTRS/SPAN_ATTRS catalog in repro/telemetry/schema.py"
    )

    def __init__(
        self,
        event_catalog: Optional[Dict[str, Tuple[str, ...]]] = None,
        span_catalog: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        #: Catalogs injected for tests; otherwise discovered from the
        #: scanned tree's schema module.
        self._injected = (event_catalog, span_catalog)

    def extract(self, ctx: FileContext) -> Dict:
        facts: Dict = {}
        if ctx.relpath.endswith(_SCHEMA_SUFFIX):
            events, spans = extract_catalog(ctx.tree)
            facts["is_schema"] = True
            facts["catalog_ok"] = events is not None and spans is not None
            facts["events"] = (
                {k: list(v) for k, v in events.items()} if events else {}
            )
            facts["spans"] = (
                {k: list(v) for k, v in spans.items()} if spans else {}
            )
            return facts
        if any(ctx.relpath.endswith(s) for s in _EXCLUDED_SUFFIXES):
            return facts
        sites = extract_emit_sites(ctx.tree, ctx.relpath)
        if sites:
            facts["sites"] = [asdict(site) for site in sites]
        return facts

    def finalize(self, project: ProjectIndex) -> Iterable[Finding]:
        events, spans = self._injected
        schema_seen = events is not None
        for record in project.records:
            facts = record.facts.get(self.id) or {}
            if not facts.get("is_schema"):
                continue
            schema_seen = True
            if not facts.get("catalog_ok"):
                yield self.finding(
                    record.relpath,
                    1,
                    "EVENT_ATTRS/SPAN_ATTRS must be literal dicts "
                    "(statically evaluable)",
                )
            elif self._injected[0] is None:
                events = {
                    k: tuple(v) for k, v in facts.get("events", {}).items()
                }
                spans = {
                    k: tuple(v) for k, v in facts.get("spans", {}).items()
                }
        if not schema_seen:
            # Scanned tree doesn't include the schema (e.g. a single
            # file was linted): nothing to diff against.
            return
        events = events or {}
        spans = spans or {}
        for record in project.records:
            facts = record.facts.get(self.id) or {}
            for raw in facts.get("sites", ()):
                site = EmitSite(**{**raw, "keys": tuple(raw["keys"])})
                yield from self._diff_site(site, events, spans)

    def _diff_site(
        self,
        site: EmitSite,
        events: Dict[str, Tuple[str, ...]],
        spans: Dict[str, Tuple[str, ...]],
    ) -> Iterable[Finding]:
        catalog = events if site.kind == "event" else spans
        label = f"{site.kind} {site.name!r}"
        if site.name is None:
            yield self.finding(
                site.relpath,
                site.line,
                f"trace.{site.kind} name must be a string literal "
                "(statically checkable against the catalog)",
            )
            return
        if site.name not in catalog:
            yield self.finding(
                site.relpath,
                site.line,
                f"{label} is not in the telemetry catalog "
                f"({'EVENT' if site.kind == 'event' else 'SPAN'}"
                "_ATTRS)",
            )
            return
        if not site.has_attrs or not site.attrs_is_literal:
            # A shared helper may pass a prebuilt dict; the runtime
            # validator still enforces required keys there.
            return
        required = set(catalog[site.name])
        literal = set(site.keys)
        missing = sorted(required - literal)
        extra = sorted(literal - required)
        if missing and not site.has_spread:
            yield self.finding(
                site.relpath,
                site.line,
                f"{label} attrs missing catalogued keys: "
                + ", ".join(missing),
            )
        if extra:
            yield self.finding(
                site.relpath,
                site.line,
                f"{label} attrs not in catalog: " + ", ".join(extra),
            )
