"""RL006 silent-except: broad exception swallows hide broken invariants.

``except Exception: pass`` (or a bare ``except: pass``) in a
reproducibility-critical codebase converts a determinism bug into a
silently different digest.  Narrow handlers with real bodies are fine;
broad handlers that do nothing are findings.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.replint.core import Check, FileContext, Finding

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD for el in node.elts
        )
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
        for stmt in handler.body
    )


class SilentExceptCheck(Check):
    id = "RL006"
    name = "silent-except"
    description = (
        "except Exception / bare except whose body only passes; "
        "swallowed failures corrupt digests silently"
    )

    def extract(self, ctx: FileContext) -> List:
        sites: List = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _is_silent(node):
                label = (
                    "bare except" if node.type is None else "except Exception"
                )
                sites.append(
                    [
                        node.lineno,
                        f"{label} with a pass-only body swallows failures; "
                        "narrow the exception or handle it",
                    ]
                )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        for line, message in facts or ():
            yield self.finding(relpath, line, message)
