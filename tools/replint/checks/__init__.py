"""Concrete replint checks and the default suite factory."""

from __future__ import annotations

from typing import List, Optional

from tools.replint.checks.determinism import UnseededRngCheck, WallClockCheck
from tools.replint.checks.envreg import EnvRegistryCheck
from tools.replint.checks.forksafety import ForkSafetyCheck
from tools.replint.checks.hygiene import SilentExceptCheck
from tools.replint.checks.poolboundary import PoolBoundaryCheck
from tools.replint.checks.telemetry import TelemetrySyncCheck
from tools.replint.core import Check

__all__ = [
    "UnseededRngCheck",
    "WallClockCheck",
    "TelemetrySyncCheck",
    "EnvRegistryCheck",
    "ForkSafetyCheck",
    "SilentExceptCheck",
    "PoolBoundaryCheck",
    "default_checks",
]


def default_checks(disable: Optional[List[str]] = None) -> List[Check]:
    """The full suite, minus any ids in ``disable``."""
    suite: List[Check] = [
        UnseededRngCheck(),
        WallClockCheck(),
        TelemetrySyncCheck(),
        EnvRegistryCheck(),
        ForkSafetyCheck(),
        SilentExceptCheck(),
        PoolBoundaryCheck(),
    ]
    if disable:
        off = {d.strip().upper() for d in disable}
        suite = [c for c in suite if c.id not in off]
    return suite
