"""Concrete replint checks and the default suite factory."""

from __future__ import annotations

from typing import List, Optional

from tools.replint.checks.contracts import ContractSyncCheck
from tools.replint.checks.determinism import UnseededRngCheck, WallClockCheck
from tools.replint.checks.envreg import EnvRegistryCheck
from tools.replint.checks.forkreach import ForkReachabilityCheck
from tools.replint.checks.forksafety import ForkSafetyCheck
from tools.replint.checks.hygiene import SilentExceptCheck
from tools.replint.checks.layering import LayeringCheck
from tools.replint.checks.poolboundary import PoolBoundaryCheck
from tools.replint.checks.tainting import DeterminismTaintCheck
from tools.replint.checks.telemetry import TelemetrySyncCheck
from tools.replint.config import ReplintConfig
from tools.replint.core import Check

__all__ = [
    "UnseededRngCheck",
    "WallClockCheck",
    "TelemetrySyncCheck",
    "EnvRegistryCheck",
    "ForkSafetyCheck",
    "SilentExceptCheck",
    "PoolBoundaryCheck",
    "LayeringCheck",
    "DeterminismTaintCheck",
    "ForkReachabilityCheck",
    "ContractSyncCheck",
    "default_checks",
]


def default_checks(
    disable: Optional[List[str]] = None,
    config: Optional[ReplintConfig] = None,
) -> List[Check]:
    """The full suite, minus any ids in ``disable``.

    ``config`` overrides ``tools/replint/layers.toml`` for the
    graph-powered checks (fixture suites pass their own).
    """
    suite: List[Check] = [
        UnseededRngCheck(),
        WallClockCheck(),
        TelemetrySyncCheck(),
        EnvRegistryCheck(),
        ForkSafetyCheck(),
        SilentExceptCheck(),
        PoolBoundaryCheck(),
        LayeringCheck(config=config),
        DeterminismTaintCheck(config=config),
        ForkReachabilityCheck(config=config),
        ContractSyncCheck(config=config),
    ]
    if disable:
        off = {d.strip().upper() for d in disable}
        suite = [c for c in suite if c.id not in off]
    return suite
