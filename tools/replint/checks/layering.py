"""RL008 layering: enforce the architecture DAG from ``layers.toml``.

Every module maps to a layer by path prefix; a module may import its
own layer or any *lower* layer.  Two finding families:

* **Upward edge** — an import (lazy ones included: the known tangles
  all hid inside function bodies) whose destination sits in a higher
  layer than the source.  ``TYPE_CHECKING``-guarded imports are
  exempt: they never execute, and annotations are the one place a
  lower layer may name an upper-layer type.
* **Import cycle** — a strongly-connected component of ≥2 modules in
  the *eager* import subgraph (lazy edges dropped: a lazy import is
  precisely how a cycle is broken at import time, so only eager cycles
  can deadlock module init).

The pass itself is a trivial scan over resolved module edges, so it
re-runs every time; all the cost lives in the per-file facts the
cache already skips.
"""

from __future__ import annotations

from typing import Iterable, Optional

from tools.replint.config import ReplintConfig, load_config
from tools.replint.core import Check, Finding, ProjectIndex


class LayeringCheck(Check):
    id = "RL008"
    name = "layering"
    description = (
        "architecture-DAG violations: upward imports between layers "
        "and eager import cycles (layers.toml)"
    )

    def __init__(self, config: Optional[ReplintConfig] = None):
        self._config = config

    @property
    def config(self) -> ReplintConfig:
        if self._config is None:
            self._config = load_config()
        return self._config

    def finalize(self, project: ProjectIndex) -> Iterable[Finding]:
        config = self.config
        graph = project.graph
        seen = set()
        for edge in graph.import_edges:
            if edge["typeonly"]:
                continue
            # `from X import A, B` yields one record per alias; they
            # share a module edge, so report it once per line.
            key = (edge["src"], edge["dst"], edge["line"])
            if key in seen:
                continue
            seen.add(key)
            src_rel = graph.modules[edge["src"]][0]
            dst_rel = graph.modules[edge["dst"]][0]
            src_layer = config.layer_of(src_rel)
            dst_layer = config.layer_of(dst_rel)
            if not src_layer or not dst_layer:
                continue
            if config.layer_index(dst_layer) > config.layer_index(src_layer):
                lazy = " (lazy)" if edge["lazy"] else ""
                yield self.finding(
                    src_rel,
                    edge["line"],
                    f"layer {src_layer!r} imports {edge['dst']} from "
                    f"higher layer {dst_layer!r}{lazy}; invert the "
                    "dependency or move the shared piece down "
                    "(see tools/replint/layers.toml)",
                )
        for cycle in graph.eager_cycles():
            anchor_rel = graph.modules[cycle[0]][0]
            yield self.finding(
                anchor_rel,
                1,
                "eager import cycle: " + " <-> ".join(cycle),
            )
