"""RL005 fork-safety: keep the process-pool boundary picklable & clean.

Two failure families the pool surface invites:

* **Unpicklable callables crossing the boundary** — a lambda or a
  function defined inside another function handed to
  ``ProcessPoolExecutor.submit`` (or stashed on an ``EvalTask``) dies
  at pickling time, but only on the first run with ``jobs > 1``, which
  is exactly the configuration the unit suite exercises least.
* **Module-level mutable state in worker-imported modules** — a
  module-scope ``dict``/``list``/``set`` in ``repro/parallel/`` is
  *per-process* after fork; code that reads it in the parent after
  workers mutate it sees stale data.  Deliberate worker-globals (the
  warm-start slots) are ``None``-initialised and escape the literal
  heuristic; anything container-valued needs a pragma with a rationale.

RL010 (fork-reachability) is the interprocedural upgrade of the second
family: it follows the call graph from the worker entry points instead
of stopping at the package boundary.  RL005 stays as the fast per-file
gate.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from tools.replint.core import Check, FileContext, Finding

#: Package whose modules hold the pool boundary.
POOL_PACKAGES: Tuple[str, ...] = ("repro/parallel/",)

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "deque"}

#: Call targets treated as pool submissions / task constructions.
_SUBMIT_ATTRS = {"submit"}
_TASK_CONSTRUCTORS = {"EvalTask"}


def _nested_def_names(tree: ast.Module) -> Set[str]:
    """Names of functions/classes defined inside another function."""
    nested: Set[str] = set()

    class _Visitor(ast.NodeVisitor):
        def _visit_scope(self, node):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(
                    inner,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    nested.add(inner.name)

        def visit_FunctionDef(self, node):
            self._visit_scope(node)

        visit_AsyncFunctionDef = visit_FunctionDef

    _Visitor().visit(tree)
    return nested


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


class ForkSafetyCheck(Check):
    id = "RL005"
    name = "fork-safety"
    description = (
        "lambdas/nested callables crossing the pool boundary; "
        "module-level mutable containers in repro/parallel/"
    )

    def extract(self, ctx: FileContext) -> dict:
        nested = _nested_def_names(ctx.tree)
        boundary: List = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                boundary.extend(self._call_sites(node, nested))
        module_state: List = []
        for node in ctx.tree.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id.startswith("__"):  # __all__ and friends
                    continue
                module_state.append(
                    [
                        node.lineno,
                        f"module-level mutable container {target.id!r} in "
                        "a pool-boundary module diverges per worker after "
                        "fork; make it immutable or justify with a pragma",
                    ]
                )
        return {"boundary": boundary, "module_state": module_state}

    def _call_sites(self, node: ast.Call, nested: Set[str]) -> List:
        func = node.func
        is_submit = (
            isinstance(func, ast.Attribute) and func.attr in _SUBMIT_ATTRS
        )
        is_task = (
            isinstance(func, ast.Name) and func.id in _TASK_CONSTRUCTORS
        )
        if not (is_submit or is_task):
            return []
        where = (
            "pool submit()" if is_submit else f"{func.id} field"  # type: ignore[union-attr]
        )
        sites: List = []
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            if isinstance(arg, ast.Lambda):
                sites.append(
                    [
                        arg.lineno,
                        f"lambda passed to {where} cannot be pickled by "
                        "pool workers; use a module-level function",
                    ]
                )
            elif (
                is_submit
                and isinstance(arg, ast.Name)
                and arg.id in nested
            ):
                sites.append(
                    [
                        arg.lineno,
                        f"locally-defined callable {arg.id!r} passed to "
                        f"{where} cannot be pickled by pool workers; "
                        "move it to module level",
                    ]
                )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        facts = facts or {}
        for line, message in facts.get("boundary", ()):
            yield self.finding(relpath, line, message)
        if any(pkg in relpath for pkg in POOL_PACKAGES):
            for line, message in facts.get("module_state", ()):
                yield self.finding(relpath, line, message)
