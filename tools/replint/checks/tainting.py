"""RL009 determinism taint: nondeterminism must never reach a digest.

The repo's core invariant is bit-identical SHA-256 run digests across
engine modes, executor strategies and process boundaries.  This pass
tracks how nondeterministic values travel:

* **Sources** — calls whose result varies per process/run (``id``,
  ``os.urandom``, ``time.*``, ``os.getpid``, ``uuid.uuid4``; from
  ``layers.toml [taint].sources``), iteration over a set-typed
  non-literal receiver (hash order), and ``sum()`` over a set (float
  accumulation order).
* **Sanitizers** — ``sorted``/``len``/``min``/``max``/``any``/``all``:
  their result does not depend on argument order.
* **Sinks** — digest-bearing calls (``fct_digest``, ``run_digest``,
  ``hashlib.sha256`` and friends, ``.update()`` on a hashlib object)
  and the digest-bearing fields of ``EvalResult``-style constructors
  (per ``[taint.sink_fields]``; metric fields like ``wall_time`` are
  deliberately excluded).

Analysis is two-tier:

1. **Extraction** (per file, cached): for every function an
   intra-procedural fixpoint computes each local's taint value —
   ``(tainted, deps)`` where deps name callee returns (``c:<dotted>``)
   and own parameters (``p:<index>``) whose taint would propagate.
   The summary records return taint, sink call sites with the merged
   argument taint, and outgoing calls carrying non-bottom arguments.
   Files in ``[taint].strict_packages`` additionally get *structural*
   findings for any set-order iteration — those packages feed digests
   by construction, so no flow proof is required.
2. **Finalize** (whole program, per-SCC cached): a fixpoint over the
   call graph resolves ``c:`` deps to project functions, propagates
   return taint and param-to-sink summaries across module boundaries,
   and emits findings where a resolved-tainted value meets a sink.
   Each SCC's result is cached under a signature of its member file
   hashes plus its direct successors' exported summaries, so a
   one-file edit re-evaluates only that SCC and the dependents whose
   inputs actually changed.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.replint.config import ReplintConfig, load_config
from tools.replint.core import Check, FileContext, Finding, ProjectIndex

#: Bottom of the taint lattice.
_CLEAN: Tuple[bool, frozenset] = (False, frozenset())

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


def _merge(*vals: Tuple[bool, frozenset]) -> Tuple[bool, frozenset]:
    tainted = any(v[0] for v in vals)
    deps: frozenset = frozenset().union(*(v[1] for v in vals))
    return (tainted, deps)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    text = _dotted(node)
    if text is None and isinstance(node, ast.Subscript):
        text = _dotted(node.value)
    if text is None:
        return False
    leaf = text.rpartition(".")[2]
    return leaf in ("Set", "FrozenSet", "set", "frozenset", "MutableSet")


class _FunctionTaint:
    """Intra-procedural taint over one function body."""

    def __init__(
        self,
        name: str,
        params: List[str],
        body: List[ast.stmt],
        config: ReplintConfig,
        set_seed: Set[str],
    ):
        self.name = name
        self.params = params
        self.body = body
        self.config = config
        self.set_vars: Set[str] = set(set_seed)
        self.digest_vars: Set[str] = set()
        self.table: Dict[str, Tuple[bool, frozenset]] = {
            p: (False, frozenset({f"p:{i}"}))
            for i, p in enumerate(params)
        }
        self.ret: Tuple[bool, frozenset] = _CLEAN
        self.sinks: List[Dict] = []
        self.calls_out: List[Dict] = []
        self.strict_sites: List[List] = []

    # -- classification ---------------------------------------------------

    def _is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Attribute):
            return (_dotted(node) or "") in self.set_vars
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set(node.left) or self._is_set(node.right)
        if isinstance(node, ast.Call):
            name = _dotted(node.func) or ""
            if name in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return self._is_set(node.func.value)
        return False

    def _source_of(self, dotted: str) -> Optional[str]:
        for src in self.config.taint_sources:
            if "." in src:
                if dotted == src or dotted.endswith("." + src):
                    return src
            elif dotted == src:
                return src
        return None

    def _sink_of(self, dotted: str) -> Optional[str]:
        for sink in self.config.taint_sinks:
            if dotted == sink or dotted.endswith("." + sink):
                return sink
        return None

    def _is_sanitizer(self, dotted: str) -> bool:
        return dotted in self.config.taint_sanitizers

    # -- expression taint -------------------------------------------------

    def val(self, node: Optional[ast.expr]) -> Tuple[bool, frozenset]:
        if node is None or isinstance(node, ast.Constant):
            return _CLEAN
        if isinstance(node, ast.Name):
            return self.table.get(node.id, _CLEAN)
        if isinstance(node, ast.Attribute):
            return self.val(node.value)
        if isinstance(node, ast.Call):
            return self._call_val(node)
        if isinstance(node, (ast.BinOp,)):
            return _merge(self.val(node.left), self.val(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.val(node.operand)
        if isinstance(node, ast.BoolOp):
            return _merge(*(self.val(v) for v in node.values))
        if isinstance(node, ast.Compare):
            return _merge(
                self.val(node.left), *(self.val(c) for c in node.comparators)
            )
        if isinstance(node, ast.IfExp):
            return _merge(self.val(node.body), self.val(node.orelse))
        if isinstance(node, ast.JoinedStr):
            return _merge(
                *(
                    self.val(v.value if isinstance(v, ast.FormattedValue)
                             else v)
                    for v in node.values
                )
            ) if node.values else _CLEAN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _merge(*(self.val(e) for e in node.elts)) \
                if node.elts else _CLEAN
        if isinstance(node, ast.Dict):
            parts = [self.val(v) for v in node.values]
            parts += [self.val(k) for k in node.keys if k is not None]
            return _merge(*parts) if parts else _CLEAN
        if isinstance(node, ast.Subscript):
            return _merge(self.val(node.value), self.val(node.slice))
        if isinstance(node, ast.Starred):
            return self.val(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            parts = []
            for gen in node.generators:
                if self._is_set(gen.iter) and not isinstance(
                    gen.iter, (ast.Set, ast.SetComp)
                ):
                    parts.append((True, frozenset()))
                parts.append(self.val(gen.iter))
            return _merge(*parts) if parts else _CLEAN
        if isinstance(node, ast.DictComp):
            parts = [self.val(gen.iter) for gen in node.generators]
            return _merge(*parts) if parts else _CLEAN
        return _CLEAN

    def _call_val(self, node: ast.Call) -> Tuple[bool, frozenset]:
        dotted = _dotted(node.func)
        arg_vals = [self.val(a) for a in node.args] + [
            self.val(kw.value) for kw in node.keywords
        ]
        merged_args = _merge(*arg_vals) if arg_vals else _CLEAN
        if dotted is None:
            return merged_args
        if self._is_sanitizer(dotted):
            return _CLEAN
        if self._source_of(dotted):
            return (True, frozenset())
        if dotted == "sum" and node.args and self._is_set(node.args[0]):
            return (True, frozenset())
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            # Set algebra preserves set-ness, not order-taint.
            return merged_args
        return _merge(merged_args, (False, frozenset({f"c:{dotted}"})))

    # -- driver -----------------------------------------------------------

    def run(self, strict: bool) -> None:
        # Two assignment passes reach a fixpoint for straight-line code
        # with back-references (loops binding names used above).
        for _ in range(2):
            self._infer_sets(self.body)
            self._pass_statements(self.body)
        self._collect(self.body, strict)

    def _infer_sets(self, body: List[ast.stmt]) -> None:
        for node in self._walk(body):
            if isinstance(node, ast.Assign):
                if self._is_set(node.value):
                    for target in node.targets:
                        name = _dotted(target) if isinstance(
                            target, ast.Attribute
                        ) else (
                            target.id if isinstance(target, ast.Name)
                            else None
                        )
                        if name:
                            self.set_vars.add(name)
            elif isinstance(node, ast.AnnAssign):
                name = (
                    node.target.id
                    if isinstance(node.target, ast.Name)
                    else _dotted(node.target)
                )
                if name and (
                    _annotation_is_set(node.annotation)
                    or (node.value is not None and self._is_set(node.value))
                ):
                    self.set_vars.add(name)

    def _pass_statements(self, body: List[ast.stmt]) -> None:
        for node in self._walk(body):
            if isinstance(node, ast.Assign):
                value = self.val(node.value)
                if isinstance(node.value, ast.Call):
                    dotted = _dotted(node.value.func) or ""
                    if dotted.startswith("hashlib."):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.digest_vars.add(target.id)
                for target in node.targets:
                    self._bind(target, value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(node.target, self.val(node.value))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    current = self.table.get(node.target.id, _CLEAN)
                    self.table[node.target.id] = _merge(
                        current, self.val(node.value)
                    )
            elif isinstance(node, ast.For):
                iter_val = self.val(node.iter)
                if self._is_set(node.iter) and not isinstance(
                    node.iter, (ast.Set, ast.SetComp)
                ):
                    iter_val = _merge(iter_val, (True, frozenset()))
                self._bind(node.target, iter_val)
            elif isinstance(node, ast.Return):
                self.ret = _merge(self.ret, self.val(node.value))

    def _bind(self, target: ast.expr, value: Tuple[bool, frozenset]) -> None:
        if isinstance(target, ast.Name):
            self.table[target.id] = _merge(
                self.table.get(target.id, _CLEAN), value
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value)

    def _collect(self, body: List[ast.stmt], strict: bool) -> None:
        for node in self._walk(body, expressions=True):
            if strict and isinstance(node, ast.For):
                if self._is_set(node.iter) and not isinstance(
                    node.iter, (ast.Set, ast.SetComp)
                ):
                    self.strict_sites.append(
                        [
                            node.lineno,
                            "iteration over a set has hash-dependent "
                            "order in a deterministic package; iterate "
                            "sorted(...) instead",
                        ]
                    )
            if strict and isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set(gen.iter) and not isinstance(
                        gen.iter, (ast.Set, ast.SetComp)
                    ):
                        self.strict_sites.append(
                            [
                                node.lineno,
                                "comprehension over a set has "
                                "hash-dependent order in a deterministic "
                                "package; iterate sorted(...) instead",
                            ]
                        )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if strict and dotted == "sum" and node.args and self._is_set(
                node.args[0]
            ):
                self.strict_sites.append(
                    [
                        node.lineno,
                        "sum() over a set accumulates floats in "
                        "hash-dependent order; sum(sorted(...)) instead",
                    ]
                )
            arg_vals = [self.val(a) for a in node.args] + [
                self.val(kw.value) for kw in node.keywords
            ]
            merged = _merge(*arg_vals) if arg_vals else _CLEAN
            sink = self._sink_of(dotted)
            if sink is None and isinstance(node.func, ast.Attribute):
                if node.func.attr == "update" and isinstance(
                    node.func.value, ast.Name
                ) and node.func.value.id in self.digest_vars:
                    sink = "hashlib update"
            if sink is not None and merged != _CLEAN:
                self.sinks.append(
                    {
                        "line": node.lineno,
                        "sink": sink,
                        "val": [merged[0], sorted(merged[1])],
                    }
                )
            leaf = dotted.rpartition(".")[2]
            fields = self.config.taint_sink_fields.get(leaf)
            if fields:
                # Per-field: wall_time=perf_counter() is legitimate
                # metrics metadata; only digest-bearing fields sink.
                for kw in node.keywords:
                    if kw.arg is None or kw.arg not in fields:
                        continue
                    kval = self.val(kw.value)
                    if kval != _CLEAN:
                        self.sinks.append(
                            {
                                "line": node.lineno,
                                "sink": f"{leaf}.{kw.arg}",
                                "val": [kval[0], sorted(kval[1])],
                            }
                        )
            if any(v != _CLEAN for v in arg_vals):
                self.calls_out.append(
                    {
                        "callee": dotted,
                        "line": node.lineno,
                        "args": [
                            [v[0], sorted(v[1])]
                            for v in (self.val(a) for a in node.args)
                        ],
                    }
                )

    def _walk(self, body: List[ast.stmt], expressions: bool = False):
        """Statements (and optionally expressions) of this function
        only — nested def/class bodies are separate summaries."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                     ast.Lambda),
                ):
                    continue
                stack.append(child)

    def summary(self) -> Dict:
        return {
            "params": self.params,
            "ret": [self.ret[0], sorted(self.ret[1])],
            "sinks": self.sinks,
            "calls": self.calls_out,
        }


def _function_bodies(tree: ast.Module):
    """Yield (qualname, params, body) for every function + ``<module>``."""
    module_body = [
        node
        for node in tree.body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    yield "<module>", [], module_body

    def visit(nodes, prefix: str):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                args = node.args
                params = [
                    a.arg
                    for a in (
                        list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)
                    )
                ]
                yield qual, params, node.body, args
                yield from visit(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, f"{prefix}{node.name}.")

    for qual, params, body, args in visit(tree.body, ""):
        yield qual, params, body, args


class DeterminismTaintCheck(Check):
    id = "RL009"
    name = "determinism-taint"
    description = (
        "nondeterministic values (set-order iteration, id(), time.*, "
        "os.urandom) flowing into digest sinks across function and "
        "module boundaries"
    )

    def __init__(self, config: Optional[ReplintConfig] = None):
        self._config = config

    @property
    def config(self) -> ReplintConfig:
        if self._config is None:
            self._config = load_config()
        return self._config

    # -- extraction --------------------------------------------------------

    def extract(self, ctx: FileContext) -> Dict:
        config = self.config
        strict = any(
            pkg in ctx.relpath for pkg in config.taint_strict_packages
        )
        summaries: Dict[str, Dict] = {}
        strict_sites: List[List] = []
        for item in _function_bodies(ctx.tree):
            if len(item) == 3:
                qual, params, body = item
                set_seed: Set[str] = set()
            else:
                qual, params, body, args = item
                set_seed = set()
                for a in (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    if _annotation_is_set(a.annotation):
                        set_seed.add(a.arg)
            analysis = _FunctionTaint(qual, params, body, config, set_seed)
            analysis.run(strict)
            strict_sites.extend(analysis.strict_sites)
            summary = analysis.summary()
            if (
                summary["ret"] != [False, []]
                or summary["sinks"]
                or summary["calls"]
            ):
                summaries[qual] = summary
        return {"strict": sorted(strict_sites), "fns": summaries}

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        for line, message in (facts or {}).get("strict", ()):
            yield self.finding(relpath, line, message)

    # -- whole-program propagation -----------------------------------------

    def finalize(self, project: ProjectIndex) -> Iterable[Finding]:
        graph = project.graph
        successors = graph.scc_successors()
        ret: Dict[str, bool] = {}
        sink_params: Dict[str, List[int]] = {}
        findings: List[Finding] = []

        def fn_facts(mod: str) -> Dict[str, Dict]:
            relpath = graph.modules[mod][0]
            facts = project.facts(self.id, relpath) or {}
            return facts.get("fns", {})

        def exported(scc_index: int) -> Dict:
            out = {}
            for mod in graph.sccs[scc_index]:
                for qual in fn_facts(mod):
                    fq = f"{mod}.{qual}"
                    out[fq] = [ret.get(fq, False), sink_params.get(fq, [])]
            return out

        for scc_index, members in enumerate(graph.sccs):
            signature_src = json.dumps(
                {
                    "members": [
                        [m, project.content_hash(graph.modules[m][0])]
                        for m in members
                    ],
                    "deps": [
                        exported(s) for s in sorted(successors[scc_index])
                    ],
                },
                sort_keys=True,
            )
            signature = hashlib.sha256(signature_src.encode()).hexdigest()
            cached = (
                project.cache.get_pass(self.id, signature)
                if project.cache is not None
                else None
            )
            if cached is not None:
                project.stats["sccs_reused"] = (
                    project.stats.get("sccs_reused", 0) + 1
                )
                for fq, (r, sp) in cached["summaries"].items():
                    ret[fq] = r
                    sink_params[fq] = sp
                for check, path, line, message in cached["findings"]:
                    findings.append(Finding(check, path, line, message))
                continue
            project.stats["sccs_evaluated"] = (
                project.stats.get("sccs_evaluated", 0) + 1
            )
            scc_findings = self._evaluate_scc(
                graph, members, fn_facts, ret, sink_params
            )
            findings.extend(scc_findings)
            if project.cache is not None:
                project.cache.put_pass(
                    self.id,
                    signature,
                    {
                        "summaries": exported(scc_index),
                        "findings": [
                            [f.check, f.path, f.line, f.message]
                            for f in scc_findings
                        ],
                    },
                )
        return findings

    def _evaluate_scc(
        self, graph, members, fn_facts, ret, sink_params
    ) -> List[Finding]:
        # Fixpoint over the SCC: return taint and param-to-sink
        # summaries may be mutually recursive within a cycle.
        local: List[Tuple[str, str, str, Dict]] = []  # mod, qual, fq, summary
        for mod in members:
            for qual, summary in sorted(fn_facts(mod).items()):
                fq = f"{mod}.{qual}"
                ret.setdefault(fq, False)
                sink_params.setdefault(fq, [])
                local.append((mod, qual, fq, summary))

        def resolve(mod: str, qual: str, dep: str) -> Optional[str]:
            if not dep.startswith("c:"):
                return None
            return graph.resolve_call(mod, qual, dep[2:])

        def val_tainted(mod: str, qual: str, val: List) -> bool:
            tainted, deps = val
            if tainted:
                return True
            for dep in deps:
                target = resolve(mod, qual, dep)
                if target is not None and ret.get(target, False):
                    return True
            return False

        changed = True
        while changed:
            changed = False
            for mod, qual, fq, summary in local:
                new_ret = val_tainted(mod, qual, summary["ret"])
                if new_ret and not ret[fq]:
                    ret[fq] = True
                    changed = True
                new_params: Set[int] = set(sink_params[fq])
                for sink in summary["sinks"]:
                    for dep in sink["val"][1]:
                        if dep.startswith("p:"):
                            new_params.add(int(dep[2:]))
                for call in summary["calls"]:
                    callee = graph.resolve_call(mod, qual, call["callee"])
                    if callee is None:
                        continue
                    forwarded = set(sink_params.get(callee, []))
                    for idx, arg in enumerate(call["args"]):
                        if idx not in forwarded:
                            continue
                        for dep in arg[1]:
                            if dep.startswith("p:"):
                                new_params.add(int(dep[2:]))
                if new_params != set(sink_params[fq]):
                    sink_params[fq] = sorted(new_params)
                    changed = True

        findings: List[Finding] = []
        for mod, qual, fq, summary in local:
            relpath = graph.modules[mod][0]
            for sink in summary["sinks"]:
                if val_tainted(mod, qual, sink["val"]):
                    findings.append(
                        self.finding(
                            relpath,
                            sink["line"],
                            f"nondeterministic value reaches digest sink "
                            f"{sink['sink']!r} in {qual}; order the data "
                            "(sorted(...)) before it is hashed",
                        )
                    )
            for call in summary["calls"]:
                callee = graph.resolve_call(mod, qual, call["callee"])
                if callee is None:
                    continue
                forwarded = set(sink_params.get(callee, []))
                if not forwarded:
                    continue
                for idx, arg in enumerate(call["args"]):
                    if idx in forwarded and val_tainted(mod, qual, arg):
                        findings.append(
                            self.finding(
                                relpath,
                                call["line"],
                                "nondeterministic argument flows through "
                                f"{call['callee']}() into a digest sink",
                            )
                        )
        return findings
