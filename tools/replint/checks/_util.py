"""Small AST helpers shared by the concrete checks."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def from_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified origin for ``from X import Y [as Z]``.

    Covers only top-level/function-level ImportFrom without relative
    dots resolved (relative imports keep their module text verbatim).
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
    return table


def resolve_call(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """Best-effort fully qualified dotted name of a call target."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin and origin != head:
        return f"{origin}.{rest}" if rest else origin
    return name


def path_matches(relpath: str, suffixes: Tuple[str, ...]) -> bool:
    """True when ``relpath`` ends with any of the posix ``suffixes``."""
    return any(relpath.endswith(suffix) for suffix in suffixes)
