"""RL001 unseeded-rng and RL002 wall-clock: the bit-stability checks.

Run digests (``fct_digest`` / ``interval_digest``) are SHA-256 over
simulation output streams; they only replay if every random draw flows
from a task seed and no simulated-path value ever depends on the host
clock.  These two checks make both rules static.

Both are pure per-file rules: ``extract`` computes the finding sites
once (cached by content hash), ``file_findings`` replays them.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from tools.replint.checks._util import (
    dotted_name,
    from_imports,
    path_matches,
    resolve_call,
)
from tools.replint.core import Check, FileContext, Finding

#: Packages whose code runs inside a simulated/evaluated path and must
#: therefore draw randomness only from seeded generators.
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro/simulator/",
    "repro/tuning/",
    "repro/monitor/",
    "repro/sketch/",
    "repro/workloads/",
)

#: ``random.Random(seed)`` / ``np.random.default_rng(seed)`` style
#: constructors are the *approved* entry points — seeded construction
#: is exactly how randomness is supposed to enter.  Called with no
#: arguments they seed from the OS, which is the violation.
_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
    "np.random.RandomState",
    "numpy.random.RandomState",
    "np.random.PCG64",
    "numpy.random.PCG64",
}

_RNG_MODULE_PREFIXES = ("random.", "np.random.", "numpy.random.")

#: Wall-clock callables that leak host time into whatever consumes
#: their return value.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
}

#: Files allowed to read the host clock: the CLI (reports wall time to
#: the user), the trace emitter (timestamps telemetry, never results),
#: the task shim (measures evaluation wall-seconds for metrics), and
#: the worker pool (dispatch deadlines and straggler detection — wall
#: time never reaches a simulated path).
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "repro/cli.py",
    "repro/telemetry/trace.py",
    "repro/parallel/tasks.py",
    "repro/parallel/pool.py",
)


class UnseededRngCheck(Check):
    id = "RL001"
    name = "unseeded-rng"
    description = (
        "module-level random.* / np.random.* calls in deterministic "
        "packages; randomness must flow from a seeded Random/Generator"
    )

    def extract(self, ctx: FileContext) -> List:
        if not any(pkg in ctx.relpath for pkg in DETERMINISTIC_PACKAGES):
            return []
        sites: List = []
        imports = from_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, imports)
            if target is None:
                continue
            if target in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    sites.append(
                        [
                            node.lineno,
                            f"{target}() without a seed draws OS entropy; "
                            "pass an explicit seed",
                        ]
                    )
                continue
            if target.startswith(_RNG_MODULE_PREFIXES):
                sites.append(
                    [
                        node.lineno,
                        f"module-level RNG call {target}() shares global "
                        "state; draw from a seeded Random/Generator instance",
                    ]
                )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        for line, message in facts or ():
            yield self.finding(relpath, line, message)


class WallClockCheck(Check):
    id = "RL002"
    name = "wall-clock"
    description = (
        "host-clock reads (time.time/perf_counter/datetime.now) outside "
        "the timing-shim allowlist"
    )

    def __init__(self, allowlist: Tuple[str, ...] = WALL_CLOCK_ALLOWLIST):
        self.allowlist = allowlist

    def extract(self, ctx: FileContext) -> List:
        sites: List = []
        imports = from_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, imports)
            if target in _WALL_CLOCK_CALLS or (
                target is not None
                and dotted_name(node.func) in _WALL_CLOCK_CALLS
            ):
                sites.append(
                    [
                        node.lineno,
                        f"wall-clock read {target}() outside the timing "
                        "allowlist; simulated paths must not observe "
                        "host time",
                    ]
                )
        return sites

    def file_findings(self, relpath: str, facts) -> Iterable[Finding]:
        # The allowlist is applied at report time, not extract time, so
        # cached facts stay valid if the allowlist changes (the
        # analyzer-version stamp rotates the cache anyway — this just
        # keeps extract a pure function of the file).
        if path_matches(relpath, self.allowlist):
            return
        for line, message in facts or ():
            yield self.finding(relpath, line, message)
