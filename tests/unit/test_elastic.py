"""Unit tests for Elastic Sketch."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig


def make_sketch(**kwargs) -> ElasticSketch:
    defaults = dict(heavy_buckets=256, light_width=1024, light_depth=2, seed=1)
    defaults.update(kwargs)
    return ElasticSketch(ElasticSketchConfig(**defaults))


def test_config_validation():
    with pytest.raises(ValueError):
        ElasticSketchConfig(heavy_buckets=0)
    with pytest.raises(ValueError):
        ElasticSketchConfig(light_width=0)
    with pytest.raises(ValueError):
        ElasticSketchConfig(ostracism_lambda=0.0)


def test_insert_query_single_flow():
    sketch = make_sketch()
    sketch.insert(7, 1000)
    sketch.insert(7, 500)
    assert sketch.query(7) == 1500


def test_negative_bytes_rejected():
    sketch = make_sketch()
    with pytest.raises(ValueError):
        sketch.insert(1, -1)


def test_read_heavy_contains_resident_flows():
    sketch = make_sketch()
    sketch.insert(1, 100)
    sketch.insert(2, 200)
    heavy = sketch.read_heavy()
    assert heavy[1] == 100
    assert heavy[2] == 200


def test_read_and_reset_clears_state():
    sketch = make_sketch()
    sketch.insert(1, 100)
    result = sketch.read_and_reset()
    assert result == {1: 100}
    assert sketch.query(1) == 0
    assert sketch.read_heavy() == {}
    assert sketch.total_bytes == 0


def test_ostracism_evicts_weak_resident():
    # Tiny heavy part: two flows must collide.
    sketch = make_sketch(heavy_buckets=1, ostracism_lambda=2.0)
    sketch.insert(1, 100)       # resident
    sketch.insert(2, 100)       # vote-: ratio 1 < 2, goes to light
    assert sketch.evictions == 0
    sketch.insert(2, 150)       # vote- 250 >= 2*100: eviction
    assert sketch.evictions == 1
    # New resident is flow 2, flagged (earlier bytes are in the light part).
    heavy = sketch.read_heavy()
    assert 2 in heavy
    assert heavy[2] >= 150 + 100   # vote+ after eviction + light recall
    # Evicted flow 1 is still queryable via the light part.
    assert sketch.query(1) >= 100


def test_byte_conservation_across_parts():
    """Everything inserted is somewhere: heavy vote+, light, or votes."""
    sketch = make_sketch(heavy_buckets=8, ostracism_lambda=4.0)
    rng = random.Random(5)
    total = 0
    for _ in range(500):
        flow = rng.randrange(40)
        nbytes = rng.randrange(1, 2000)
        sketch.insert(flow, nbytes)
        total += nbytes
    assert sketch.total_bytes == total
    # Per-flow estimates must cover at least the heavy residents' truth.
    heavy = sketch.read_heavy()
    assert sum(heavy.values()) <= total * 2  # light-part overcount bounded


def test_memory_accounting():
    sketch = make_sketch(heavy_buckets=100, light_width=200, light_depth=2)
    assert sketch.memory_bytes() == 100 * 13 + 200 * 2 * 4


def test_observe_alias_matches_measurement_interface():
    sketch = make_sketch()
    sketch.observe(3, 999)
    assert sketch.query(3) == 999


@settings(deadline=None, max_examples=30)
@given(
    inserts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=5_000),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_heavy_residents_never_undercount(inserts):
    """Property: a flow resident in the heavy part since its first
    insert (never evicted) is counted at least its true size."""
    sketch = ElasticSketch(
        ElasticSketchConfig(heavy_buckets=512, light_width=2048, seed=2)
    )
    truth = {}
    for flow, nbytes in inserts:
        sketch.insert(flow, nbytes)
        truth[flow] = truth.get(flow, 0) + nbytes
    if sketch.evictions == 0:
        for flow, true_bytes in truth.items():
            assert sketch.query(flow) >= true_bytes


@settings(deadline=None, max_examples=30)
@given(
    inserts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=1000),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_total_bytes_invariant(inserts):
    sketch = ElasticSketch(ElasticSketchConfig(heavy_buckets=4, seed=3))
    total = 0
    for flow, nbytes in inserts:
        sketch.insert(flow, nbytes)
        total += nbytes
    assert sketch.total_bytes == total


def test_unattributed_bytes_tracks_light_part_residue():
    sketch = make_sketch(heavy_buckets=1, ostracism_lambda=100.0)
    sketch.insert(1, 100)   # resident
    sketch.insert(2, 500)   # collides, lambda too high to evict -> light
    # Flow 2's bytes sit in the light part, unclaimed by any flag.
    assert sketch.unattributed_bytes() == 500
    assert sketch.query(2) >= 500


def test_flagged_resident_recalls_light_bytes():
    sketch = make_sketch(heavy_buckets=1, ostracism_lambda=1.0)
    sketch.insert(1, 100)
    sketch.insert(2, 100)   # ratio 1 >= 1: immediate eviction
    sketch.insert(2, 50)
    heavy = sketch.read_heavy()
    # Flow 2 is resident and flagged; its light-part prefix is added.
    assert heavy[2] >= 150
