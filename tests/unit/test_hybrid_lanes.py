"""Lane-bank DCQCN must be *bit-identical* to the scalar RP.

The ``lanes`` engine mode replaces every per-QP ``DcqcnRp`` timer pair
with one coalesced numpy timer plane (`DcqcnLaneBank`).  Its gating
contract is exact equality, not approximation: every float produced by
a lane must equal the scalar class's float, operation for operation.
These property tests drive both implementations with identical event
sequences and compare state with ``==`` after every step.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simulator.dcqcn import DcqcnLaneBank, DcqcnParams, DcqcnRp
from repro.simulator.engine import Simulator
from repro.simulator.units import gbps, kb, mbps, us

LINE = gbps(10.0)

#: Parameter corners that exercise every branch of the RP state
#: machine: default, aggressive cuts, lazy alpha, fast increase.
PARAM_OVERRIDES = (
    {},
    {"rate_reduce_monitor_period": us(10.0), "min_dec_fac": 0.9},
    {"dce_tcp_g": 0.00390625, "dce_tcp_rtt": us(200.0)},
    {
        "rpg_ai_rate": mbps(300.0),
        "rpg_hai_rate": mbps(1000.0),
        "rpg_threshold": 2,
        "rpg_byte_reset": int(kb(64.0)),
        "rpg_time_reset": us(100.0),
    },
)


def _state(rp):
    """Everything the gating digest can see, as exact values."""
    return (
        rp.rc,
        rp.rt,
        rp.alpha,
        rp.cnps_received,
        rp.rate_cuts,
        rp.increase_events,
        rp.active,
    )


@settings(deadline=None, max_examples=40)
@given(
    overrides=st.sampled_from(PARAM_OVERRIDES),
    events=st.lists(
        st.sampled_from(["cnp", "bytes", "time", "alpha"]),
        min_size=1,
        max_size=100,
    ),
)
def test_lane_rp_bit_identical_to_scalar(overrides, events):
    params = DcqcnParams().copy(**overrides)
    sim_a = Simulator()
    scalar = DcqcnRp(sim_a, LINE, lambda: params)
    scalar.start()
    sim_b = Simulator()
    bank = DcqcnLaneBank(sim_b)
    laned = bank.new_rp(LINE, lambda: params)
    laned.start()
    assert _state(laned) == _state(scalar)

    for event in events:
        if event == "cnp":
            scalar.on_cnp()
            laned.on_cnp()
        elif event == "bytes":
            scalar.on_packet_sent(params.rpg_byte_reset)
            laned.on_packet_sent(params.rpg_byte_reset)
        elif event == "time":
            t = sim_a.now + params.rpg_time_reset * 1.01
            sim_a.run_until(t)
            sim_b.run_until(t)
        else:  # let the alpha decay timer fire
            t = sim_a.now + params.dce_tcp_rtt * 1.01
            sim_a.run_until(t)
            sim_b.run_until(t)
        assert _state(laned) == _state(scalar)


@settings(deadline=None, max_examples=25)
@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.sampled_from(["cnp", "bytes", "time"]),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_coalesced_lanes_do_not_cross_contaminate(events):
    """Many lanes on one bank == the same many scalar RPs.

    Lanes share a single engine event, so same-deadline ticks fire as
    one coalesced array step; per-lane state must still evolve exactly
    as if each QP had private timers.  Lane 1 runs different parameters
    from lanes 0/2 to keep the per-lane ``params_ref`` gathers honest.
    """
    params_a = DcqcnParams()
    params_b = DcqcnParams().copy(
        dce_tcp_rtt=us(70.0), rpg_time_reset=us(400.0)
    )
    per_lane = [params_a, params_b, params_a]

    sim_a = Simulator()
    scalars = [DcqcnRp(sim_a, LINE, (lambda p: lambda: p)(p)) for p in per_lane]
    sim_b = Simulator()
    bank = DcqcnLaneBank(sim_b, capacity=2)  # force at least one _grow()
    laned = [bank.new_rp(LINE, (lambda p: lambda: p)(p)) for p in per_lane]
    for rp in scalars + laned:
        rp.start()

    for lane, event in events:
        if event == "cnp":
            scalars[lane].on_cnp()
            laned[lane].on_cnp()
        elif event == "bytes":
            scalars[lane].on_packet_sent(per_lane[lane].rpg_byte_reset)
            laned[lane].on_packet_sent(per_lane[lane].rpg_byte_reset)
        else:
            t = sim_a.now + per_lane[lane].rpg_time_reset * 1.01
            sim_a.run_until(t)
            sim_b.run_until(t)
        for s, l in zip(scalars, laned):
            assert _state(l) == _state(s)


def test_lane_params_swap_takes_effect_like_scalar():
    """Controller dispatch: both paths read params at use time."""
    holder = {"params": DcqcnParams()}

    sim_a = Simulator()
    scalar = DcqcnRp(sim_a, LINE, lambda: holder["params"])
    scalar.start()
    sim_b = Simulator()
    bank = DcqcnLaneBank(sim_b)
    laned = bank.new_rp(LINE, lambda: holder["params"])
    laned.start()

    scalar.on_cnp()
    laned.on_cnp()
    holder["params"] = DcqcnParams().copy(
        dce_tcp_g=0.5, rate_reduce_monitor_period=us(5.0)
    )
    for _ in range(5):
        scalar.on_cnp()
        laned.on_cnp()
        t = sim_a.now + holder["params"].dce_tcp_rtt * 1.01
        sim_a.run_until(t)
        sim_b.run_until(t)
        assert _state(laned) == _state(scalar)


def test_stop_frees_the_lane_and_reuses_it():
    sim = Simulator()
    bank = DcqcnLaneBank(sim, capacity=4)
    first = bank.new_rp(LINE, DcqcnParams)
    first.start()
    lane = first.lane
    first.stop()
    assert not bank.active[lane]
    second = bank.new_rp(LINE, DcqcnParams)
    assert second.lane == lane  # freed lane is recycled LIFO
    assert second.rc == LINE and second.alpha == DcqcnParams().initial_alpha


def test_bank_reset_disarms_everything():
    sim = Simulator()
    bank = DcqcnLaneBank(sim)
    rp = bank.new_rp(LINE, DcqcnParams)
    rp.start()
    assert bank._event is not None
    bank.reset()
    assert bank._event is None
    assert bank._n == 0
    sim.run_until(1.0)  # nothing pending fires into freed lanes
    assert bank.ticks == 0
