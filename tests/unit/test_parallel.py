"""Unit tests for the parallel evaluation fabric.

The heavyweight guarantee — pool results byte-identical to serial —
is covered per-commit here with a tiny scenario; the benchmark suite
re-checks it at figure scale.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import (
    EvalTask,
    ScenarioSpec,
    SweepExecutor,
    batched_anneal,
    derive_task_seed,
    evaluate_task,
    extract_schedule,
    resolve_jobs,
)
from repro.parallel.tasks import build_scenario
from repro.tuning.annealing import AnnealingSchedule, ImprovedAnnealer
from repro.tuning.eval_cache import EvalCache
from repro.tuning.parameters import default_params, default_space

TINY = ScenarioSpec(workload="hadoop", scale="small", duration=0.004)


def _tasks(n=3, spec=TINY):
    base = default_params()
    return [
        EvalTask(
            scenario=spec,
            seed=spec.seed,
            params=base.copy(p_max=0.05 + 0.1 * i),
            index=i,
        )
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Task protocol
# ---------------------------------------------------------------------------


def test_task_requires_exactly_one_of_params_scheme():
    with pytest.raises(ValueError):
        EvalTask(scenario=TINY, seed=1)
    with pytest.raises(ValueError):
        EvalTask(
            scenario=TINY, seed=1, params=default_params(), scheme="default"
        )
    assert EvalTask(scenario=TINY, seed=1, params=default_params()).cacheable
    assert not EvalTask(scenario=TINY, seed=1, scheme="default").cacheable


def test_fingerprint_tracks_fields():
    assert TINY.fingerprint() == TINY.fingerprint()
    other = ScenarioSpec(workload="hadoop", scale="small", duration=0.005)
    assert TINY.fingerprint() != other.fingerprint()


def test_derive_task_seed_deterministic_and_spread():
    seeds = [derive_task_seed(1, i) for i in range(50)]
    assert seeds == [derive_task_seed(1, i) for i in range(50)]
    assert len(set(seeds)) == 50
    assert all(0 <= s < 2**31 for s in seeds)
    assert derive_task_seed(1, 0) != derive_task_seed(2, 0)


def test_evaluate_task_is_deterministic():
    task = _tasks(1)[0]
    a = evaluate_task(task)
    b = evaluate_task(task)
    assert a.fct_digest == b.fct_digest
    assert a.interval_digest == b.interval_digest
    assert a.utilities == b.utilities


def test_schedule_replay_matches_live_workload():
    """Warm-start replay must reproduce the sampled workload exactly."""
    schedule = extract_schedule(TINY)
    assert schedule, "hadoop schedules are static and extractable"
    task = _tasks(1)[0]
    live = evaluate_task(task)
    warm = evaluate_task(task, schedule)
    assert live.fct_digest == warm.fct_digest
    assert live.interval_digest == warm.interval_digest


def test_reactive_workloads_have_no_static_schedule():
    assert extract_schedule(
        ScenarioSpec(workload="llm", scale="small", duration=0.004)
    ) is None


def test_build_scenario_rejects_unknown_workload():
    with pytest.raises(ValueError):
        build_scenario(
            ScenarioSpec(workload="carrier-pigeon"), seed=1
        )


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def test_resolve_jobs_priority(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert resolve_jobs(3) == 3
    with pytest.raises(ValueError):
        resolve_jobs(0)
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    assert resolve_jobs() >= 1  # falls through to cpu count


def test_resolve_jobs_clamps_to_cpu_count(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    # Oversubscription is clamped from every source.
    assert resolve_jobs(64) == 4
    monkeypatch.setenv("REPRO_JOBS", "64")
    assert resolve_jobs() == 4
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 4
    # cpu_count() may be None on exotic platforms: fall back to serial.
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 1


def test_map_empty_is_empty():
    assert SweepExecutor(jobs=1).map([]) == []


def test_serial_map_preserves_order_and_indices():
    tasks = _tasks(3)
    results = SweepExecutor(jobs=1).map(tasks)
    assert [r.index for r in results] == [0, 1, 2]
    assert all(r.events > 0 for r in results)


def test_pool_map_identical_to_serial(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    tasks = _tasks(3)
    serial = SweepExecutor(jobs=1).map(tasks)
    pooled = SweepExecutor(jobs=2).map(tasks)
    assert [r.fct_digest for r in serial] == [r.fct_digest for r in pooled]
    assert [r.interval_digest for r in serial] == [
        r.interval_digest for r in pooled
    ]
    assert [r.utilities for r in serial] == [r.utilities for r in pooled]


def test_cache_serves_hits_and_fills_on_miss():
    tasks = _tasks(2)
    cache = EvalCache()
    ex = SweepExecutor(jobs=1, cache=cache)
    cold = ex.map(tasks)
    assert ex.last_cache_hits == 0
    assert len(cache) == 2
    warm = ex.map(tasks)
    assert ex.last_cache_hits == 2
    assert ex.last_pool_tasks == 0
    assert [r.utility for r in warm] == [r.utility for r in cold]
    assert [r.fct_digest for r in warm] == [r.fct_digest for r in cold]
    assert all(r.from_cache for r in warm)


def test_scheme_tasks_bypass_cache():
    task = EvalTask(scenario=TINY, seed=TINY.seed, scheme="default")
    cache = EvalCache()
    ex = SweepExecutor(jobs=1, cache=cache)
    ex.map([task])
    ex.map([task])
    assert len(cache) == 0
    assert ex.last_cache_hits == 0


def _broken_pool(*args, **kwargs):
    raise OSError("no forks today")


def test_failed_chunks_retry_at_original_granularity(monkeypatch, tmp_path):
    """A total pool failure retries chunk by chunk, not in one lump.

    Regression test for the old catastrophic-failure path, which
    collected every lost position into a single giant chunk — one
    retry counter tick and one ``executor.retry`` event no matter how
    many chunks actually failed.
    """
    import repro.parallel.executor as executor_mod
    from repro.telemetry import trace

    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    tasks = _tasks(4)
    expected = SweepExecutor(jobs=1).map(tasks)

    monkeypatch.setattr(executor_mod, "get_shared_pool", _broken_pool)
    trace_path = tmp_path / "retry.jsonl"
    trace.configure(str(trace_path), export_env=False)
    try:
        ex = SweepExecutor(jobs=2, strategy="process", chunk_size=1)
        results = ex.map(tasks)
    finally:
        trace.disable(clear_env=False)
    # One retry per original chunk: chunk_size=1 over 4 tasks -> 4.
    assert ex.last_retried_chunks == 4
    assert [r.fct_digest for r in results] == [
        r.fct_digest for r in expected
    ]

    import json
    retries = [
        json.loads(line)
        for line in trace_path.read_text().splitlines()
        if json.loads(line).get("name") == "executor.retry"
    ]
    assert len(retries) == 4
    assert sorted(r["attrs"]["positions"] for r in retries) == [
        [0], [1], [2], [3]
    ]


def test_retries_disabled_raises(monkeypatch):
    import repro.parallel.executor as executor_mod

    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.setattr(executor_mod, "get_shared_pool", _broken_pool)
    ex = SweepExecutor(jobs=2, strategy="process", max_retries=0)
    with pytest.raises(RuntimeError):
        ex.map(_tasks(2))


def test_strategies_are_digest_identical(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    tasks = _tasks(3)
    inline = SweepExecutor(jobs=1, strategy="inline").map(tasks)
    for strategy in ("thread", "process"):
        ex = SweepExecutor(jobs=2, strategy=strategy, private_pool=True)
        try:
            got = ex.map(tasks)
        finally:
            ex.close()
        assert [r.fct_digest for r in got] == [
            r.fct_digest for r in inline
        ], strategy
        assert [r.interval_digest for r in got] == [
            r.interval_digest for r in inline
        ], strategy
        assert ex.last_strategy == strategy


def test_resolve_strategy_sources(monkeypatch):
    from repro.parallel import resolve_strategy

    assert resolve_strategy("thread") == "thread"
    assert resolve_strategy() == "auto"  # registry default
    monkeypatch.setenv("REPRO_EXECUTOR_STRATEGY", "inline")
    assert resolve_strategy() == "inline"
    assert resolve_strategy("process") == "process"  # explicit wins
    with pytest.raises(ValueError):
        resolve_strategy("carrier-pigeon")


def test_auto_strategy_picks_by_cost(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    ex = SweepExecutor(jobs=2, strategy="auto")
    fp = TINY.fingerprint()
    tasks = _tasks(3)
    pending = [0, 1, 2]
    ex._cost_ema[fp] = 0.0005
    assert ex._resolve_map_strategy(tasks, pending, {})[0] == "inline"
    ex._cost_ema[fp] = 0.005
    assert ex._resolve_map_strategy(tasks, pending, {})[0] == "thread"
    ex._cost_ema[fp] = 0.5
    assert ex._resolve_map_strategy(tasks, pending, {})[0] == "process"
    # A single pending task is never worth dispatch overhead.
    assert ex._resolve_map_strategy(tasks, [0], {})[0] == "inline"


def test_auto_probe_seeds_cost_ema(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    ex = SweepExecutor(jobs=2, strategy="auto")
    assert ex._cost_ema == {}
    tasks = _tasks(3)
    pending = [0, 1, 2]
    results = {}
    strategy, cost = ex._resolve_map_strategy(tasks, pending, results)
    # The probe evaluated one task inline and measured it.
    assert list(results) == [0]
    assert pending == [1, 2]
    assert cost == pytest.approx(ex._cost_ema[TINY.fingerprint()])
    assert strategy in ("inline", "thread", "process")


def test_adaptive_chunk_targets_wall_time():
    ex = SweepExecutor(jobs=4, strategy="inline")
    # Explicit chunk_size always wins.
    assert SweepExecutor(jobs=4, chunk_size=7)._chunk_for(100, 0.1) == 7
    # Cheap tasks coalesce, but never beyond 2 chunks per worker.
    assert ex._chunk_for(100, 0.001) <= max(1, 100 // (ex.jobs * 2) + 1)
    # Expensive tasks stay fine-grained for stealing.
    assert ex._chunk_for(100, 1.0) == 1
    # No estimate: the legacy jobs*4 rule.
    assert ex._chunk_for(32, None) == max(1, -(-32 // (ex.jobs * 4)))


# ---------------------------------------------------------------------------
# Batched SA
# ---------------------------------------------------------------------------


def _fast_annealer():
    # Two temperature levels x two iterations: four evaluations total.
    schedule = AnnealingSchedule(
        initial_temp=90.0,
        final_temp=70.0,
        cooling_rate=0.85,
        iterations_per_temp=2,
    )
    import random

    return ImprovedAnnealer(default_space(), schedule, rng=random.Random(3))


def test_batched_anneal_runs_to_schedule_end():
    result = batched_anneal(
        TINY,
        _fast_annealer(),
        default_params(),
        batch_size=2,
        executor=SweepExecutor(jobs=1, cache=EvalCache()),
    )
    assert result.batches == 2
    assert result.evaluations == 5  # 1 seed + 2 batches x 2
    assert len(result.utility_trace) == 4
    assert 0.0 <= result.best_utility <= 1.0
    result.best_params.validate()


def test_batched_anneal_matches_serial_annealer():
    """batch_size=1 through the executor == hand-driven serial SA."""
    serial = _fast_annealer()
    seed_result = evaluate_task(
        EvalTask(scenario=TINY, seed=TINY.seed, params=default_params())
    )
    serial.begin(default_params(), seed_result.utility)
    while serial.running:
        candidate = serial.propose()
        util = evaluate_task(
            EvalTask(scenario=TINY, seed=TINY.seed, params=candidate)
        ).utility
        serial.feedback(util)

    batched = batched_anneal(
        TINY,
        _fast_annealer(),
        default_params(),
        batch_size=1,
        executor=SweepExecutor(jobs=1),
    )
    assert batched.best_utility == serial.state.best_util
    assert (
        batched.best_params.as_dict() == serial.state.best_solution.as_dict()
    )
    assert batched.utility_trace == serial.utility_trace


def test_batched_anneal_hits_cache_on_revisit():
    """A second identical search must be served from cache."""
    cache = EvalCache()
    executor = SweepExecutor(jobs=1, cache=cache)
    first = batched_anneal(
        TINY, _fast_annealer(), default_params(), batch_size=2,
        executor=executor,
    )
    again = batched_anneal(
        TINY, _fast_annealer(), default_params(), batch_size=2,
        executor=executor,
    )
    assert again.cache_hits > 0
    assert cache.hit_rate > 0
    assert again.best_utility == first.best_utility
    assert again.utility_trace == first.utility_trace
