"""Unit tests for the content-addressed evaluation cache."""

from __future__ import annotations

import json

import pytest

from repro.tuning.eval_cache import EvalCache, default_cache, quantize_params
from repro.tuning.parameters import default_params


# ---------------------------------------------------------------------------
# Quantization
# ---------------------------------------------------------------------------


def test_quantize_is_stable_and_complete():
    params = default_params()
    key = quantize_params(params)
    assert key == quantize_params(params)
    # Every knob appears in the key.
    for name in params.as_dict():
        assert f"{name}=" in key


def test_quantize_absorbs_float_roundtrip_noise():
    params = default_params()
    jittered = params.copy(p_max=params.p_max * (1 + 1e-13))
    assert quantize_params(params) == quantize_params(jittered)


def test_quantize_distinguishes_real_changes():
    params = default_params()
    changed = params.copy(p_max=params.p_max * 1.01)
    assert quantize_params(params) != quantize_params(changed)


def test_quantize_integer_knobs_exact():
    params = default_params()
    bumped = params.copy(rpg_threshold=params.rpg_threshold + 1)
    assert quantize_params(params) != quantize_params(bumped)


# ---------------------------------------------------------------------------
# Hit/miss accounting
# ---------------------------------------------------------------------------


def test_get_put_roundtrip_and_counters():
    cache = EvalCache()
    params = default_params()
    assert cache.get("fp", 1, params) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put("fp", 1, params, {"utility": 0.5})
    assert cache.get("fp", 1, params) == {"utility": 0.5}
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == pytest.approx(0.5)
    assert len(cache) == 1


def test_key_separates_scenario_seed_and_params():
    cache = EvalCache()
    params = default_params()
    cache.put("fp-a", 1, params, {"utility": 0.1})
    assert cache.get("fp-b", 1, params) is None
    assert cache.get("fp-a", 2, params) is None
    assert cache.get("fp-a", 1, params.copy(p_max=0.77)) is None
    assert cache.get("fp-a", 1, params) == {"utility": 0.1}


def test_clear_resets_everything():
    cache = EvalCache()
    cache.put("fp", 1, default_params(), {"utility": 0.5})
    cache.get("fp", 1, default_params())
    cache.clear()
    assert len(cache) == 0
    assert cache.stats() == {
        "entries": 0, "hits": 0, "misses": 0, "hit_rate": 0.0
    }


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "cache.json"
    cache = EvalCache(path=path)
    params = default_params()
    cache.put("fp", 1, params, {"utility": 0.42, "events": 7})
    cache.save()

    reloaded = EvalCache(path=path)  # constructor loads existing files
    assert reloaded.get("fp", 1, params) == {"utility": 0.42, "events": 7}


def test_load_tolerates_missing_and_corrupt_files(tmp_path):
    cache = EvalCache(path=tmp_path / "nope.json")
    assert cache.load() == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert cache.load(bad) == 0
    bad.write_text(json.dumps([1, 2, 3]))  # wrong shape
    assert cache.load(bad) == 0


def test_memory_only_cache_refuses_persistence():
    cache = EvalCache()
    with pytest.raises(ValueError):
        cache.save()
    with pytest.raises(ValueError):
        cache.load()


def test_default_cache_env_controls(tmp_path, monkeypatch):
    assert default_cache(enabled=False) is None
    monkeypatch.setenv("REPRO_EVAL_CACHE", "0")
    assert default_cache() is None
    monkeypatch.setenv("REPRO_EVAL_CACHE", str(tmp_path / "c.json"))
    cache = default_cache()
    assert cache is not None
    assert cache.path == tmp_path / "c.json"
