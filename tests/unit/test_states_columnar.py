"""Columnar classifier equivalence with the scalar sliding window.

``ColumnarSlidingWindowClassifier`` must replicate
``SlidingWindowClassifier`` exactly — same admissions, transitions,
expiries, windows and (bit-identical) float summaries — over arbitrary
interval sequences, because the batched monitoring pipeline feeds run
digests that are compared against the scalar mode's.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.monitor.fsd import FlowSizeDistribution
from repro.monitor.states import (
    ColumnarSlidingWindowClassifier,
    SlidingWindowClassifier,
)

# Interval sequences over a small id space with many zero-byte entries,
# so flows regularly go idle long enough to expire and re-enter.
_intervals = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=400_000),
        ),
        min_size=0,
        max_size=10,
    ),
    min_size=1,
    max_size=25,
)


def _as_mapping(pairs):
    mapping = {}
    for flow_id, nbytes in pairs:
        mapping[flow_id] = nbytes  # last occurrence wins, like a real read
    return mapping


def _assert_equivalent(scalar, columnar):
    scalar_entries = scalar.flows
    columnar_entries = columnar.entries()
    assert list(columnar_entries) == list(scalar_entries)
    for flow_id, expected in scalar_entries.items():
        got = columnar_entries[flow_id]
        assert got.state is expected.state
        assert got.cumulative_bytes == expected.cumulative_bytes
        assert list(got.window) == list(expected.window)
        assert got.active_streak == expected.active_streak
        assert got.idle_streak == expected.idle_streak
        assert got.intervals_seen == expected.intervals_seen
    assert len(columnar) == len(scalar)
    assert columnar.expired_total == scalar.expired_total
    assert columnar.state_counts() == scalar.state_counts()
    # Bit-identical, not approximately equal: same operand order, same ops.
    assert columnar.elephant_weight() == scalar.elephant_weight()


@settings(deadline=None, max_examples=60)
@given(intervals=_intervals, tau=st.integers(min_value=1_000, max_value=1_000_000))
def test_columnar_matches_scalar_over_random_intervals(intervals, tau):
    scalar = SlidingWindowClassifier(tau=tau, delta=3)
    columnar = ColumnarSlidingWindowClassifier(tau=tau, delta=3, capacity=2)
    for pairs in intervals:
        mapping = _as_mapping(pairs)
        scalar.update(mapping)
        columnar.update(mapping)
        _assert_equivalent(scalar, columnar)


@settings(deadline=None, max_examples=40)
@given(
    intervals=_intervals,
    delta=st.integers(min_value=1, max_value=5),
)
def test_columnar_fsd_bit_identical(intervals, delta):
    tau = 100_000
    scalar = SlidingWindowClassifier(tau=tau, delta=delta)
    columnar = ColumnarSlidingWindowClassifier(tau=tau, delta=delta)
    for pairs in intervals:
        mapping = _as_mapping(pairs)
        scalar.update(mapping)
        columnar.update(mapping)
        via_entries = FlowSizeDistribution.from_entries(
            scalar.flows.values(), tau=tau
        )
        via_columns = FlowSizeDistribution.from_columns(
            *columnar.snapshot_columns(), tau=tau
        )
        assert via_columns.elephant_weight == via_entries.elephant_weight
        assert via_columns.mice_weight == via_entries.mice_weight
        assert via_columns.histogram == via_entries.histogram
        assert via_columns.flow_states == via_entries.flow_states


def test_histogram_bucketing_boundaries():
    """Power-of-two and near-boundary sizes bucket identically both ways."""
    tau = 1 << 40  # keep everything PE/M so cumulative bytes drive buckets
    sizes = [1, 2, 3, 4, 7, 8, (1 << 20) - 1, 1 << 20, (1 << 20) + 1, (1 << 30) + 5]
    scalar = SlidingWindowClassifier(tau=tau, delta=3)
    columnar = ColumnarSlidingWindowClassifier(tau=tau, delta=3)
    mapping = {i: size for i, size in enumerate(sizes)}
    scalar.update(mapping)
    columnar.update(mapping)
    a = FlowSizeDistribution.from_entries(scalar.flows.values(), tau=tau)
    b = FlowSizeDistribution.from_columns(*columnar.snapshot_columns(), tau=tau)
    assert a.histogram == b.histogram


def test_expired_flow_reenters_at_end_of_tracking_order():
    scalar = SlidingWindowClassifier(tau=10_000, delta=2)
    columnar = ColumnarSlidingWindowClassifier(tau=10_000, delta=2, capacity=2)
    for clf in (scalar, columnar):
        clf.update({1: 100, 2: 100})
        clf.update({2: 100})   # flow 1 idle
        clf.update({2: 100})   # flow 1 expires (idle streak 2)
        clf.update({1: 50, 2: 100})  # flow 1 re-enters after flow 2
    assert list(scalar.flows) == [2, 1]
    assert list(columnar.entries()) == [2, 1]
    _assert_equivalent(scalar, columnar)
    assert scalar.expired_total == columnar.expired_total == 1


def test_columnar_growth_preserves_state():
    columnar = ColumnarSlidingWindowClassifier(tau=1_000, delta=3, capacity=1)
    scalar = SlidingWindowClassifier(tau=1_000, delta=3)
    for interval in range(4):
        mapping = {flow: 10 * (flow + 1) for flow in range(interval + 2)}
        columnar.update(mapping)
        scalar.update(mapping)
    _assert_equivalent(scalar, columnar)
    assert columnar._capacity >= 5


def test_columnar_validation():
    with pytest.raises(ValueError):
        ColumnarSlidingWindowClassifier(tau=0)
    with pytest.raises(ValueError):
        ColumnarSlidingWindowClassifier(delta=0)
    with pytest.raises(ValueError):
        ColumnarSlidingWindowClassifier(capacity=0)
