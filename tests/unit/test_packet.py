"""Unit tests for the packet model."""

from __future__ import annotations

from repro.simulator.packet import (
    INITIAL_TTL,
    Packet,
    PacketKind,
    cnp_packet,
    data_packet,
)
from repro.simulator.units import CONTROL_PACKET_BYTES, HEADER_BYTES


def test_data_packet_wire_size_includes_header():
    pkt = data_packet(1, 0, 1, payload=1000, seq=0, last=False)
    assert pkt.wire_size == 1000 + HEADER_BYTES
    assert pkt.kind == PacketKind.DATA
    assert not pkt.is_control


def test_control_packets_are_small():
    cnp = cnp_packet(1, 5, 3)
    assert cnp.wire_size == CONTROL_PACKET_BYTES
    assert cnp.is_control
    assert cnp.src == 5 and cnp.dst == 3


def test_probe_rides_data_class_but_ack_is_control():
    probe = Packet(PacketKind.PROBE, -1, 0, 1)
    ack = Packet(PacketKind.PROBE_ACK, -1, 1, 0)
    assert not probe.is_control  # queues with data so RTT sees congestion
    assert ack.is_control


def test_ttl_and_hop_count():
    pkt = data_packet(1, 0, 1, payload=10, seq=0, last=False)
    assert pkt.ttl == INITIAL_TTL
    pkt.ttl -= 3
    assert pkt.hops_taken() == 3


def test_packet_ids_unique():
    a = data_packet(1, 0, 1, payload=1, seq=0, last=False)
    b = data_packet(1, 0, 1, payload=1, seq=1, last=True)
    assert a.pkt_id != b.pkt_id


def test_last_flag_and_seq():
    pkt = data_packet(9, 0, 1, payload=512, seq=4096, last=True)
    assert pkt.last
    assert pkt.seq == 4096
    assert pkt.payload == 512


def test_fresh_packet_flags():
    pkt = data_packet(1, 0, 1, payload=10, seq=0, last=False)
    assert pkt.ecn is False
    assert pkt.sketch_marked is False
    assert pkt.ingress_port == -1
