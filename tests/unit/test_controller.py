"""Unit tests for the Paraleon controller's KL-triggered loop."""

from __future__ import annotations

import random

import pytest

from repro.core.config import ParaleonConfig
from repro.core.controller import ParaleonController
from repro.monitor.aggregate import FsdAggregator
from repro.monitor.fsd import FlowSizeDistribution
from repro.monitor.agent import LocalReport
from repro.simulator.stats import IntervalStats
from repro.tuning.annealing import AnnealingSchedule, ImprovedAnnealer
from repro.tuning.parameters import default_params, default_space

MB = 1_000_000


class ScriptedAgent:
    """Monitoring agent stub replaying a scripted FSD sequence."""

    def __init__(self, script):
        self.script = list(script)
        self.index = 0

    def collect(self, now):
        sizes = self.script[min(self.index, len(self.script) - 1)]
        self.index += 1
        return LocalReport(
            switch_name="stub",
            fsd=FlowSizeDistribution.from_sizes(sizes),
            tracked_flows=len(sizes),
            interval_bytes=sum(sizes.values()),
        )


def stats(t, tp=0.5, rtt=0.8, pfc=1.0):
    return IntervalStats(
        t_start=t - 1e-3, t_end=t, throughput_util=tp, norm_rtt=rtt,
        pfc_ok=pfc, mean_rtt=1e-5, rtt_samples=5, pause_fraction=1 - pfc,
        active_uplinks=2, total_tx_bytes=100,
    )


def make_controller(script, schedule=None):
    config = ParaleonConfig(schedule=schedule or AnnealingSchedule())
    aggregator = FsdAggregator([ScriptedAgent(script)])
    annealer = ImprovedAnnealer(
        default_space(), config.schedule, random.Random(0), eta=config.eta
    )
    return ParaleonController(config, aggregator, annealer, default_params())


def test_no_trigger_on_stable_traffic():
    same = {1: 10 * MB, 2: 500}
    controller = make_controller([same] * 10)
    for i in range(10):
        result = controller.on_interval(stats((i + 1) * 1e-3))
        assert result is None
    assert controller.tuning_processes_started == 0
    assert not controller.tuning_active


def test_kl_spike_triggers_tuning():
    elephants = {i: 10 * MB for i in range(5)}
    mice = {100 + i: 2000 for i in range(30)}
    script = [elephants, elephants, {**elephants, **mice}]
    controller = make_controller(script)
    assert controller.on_interval(stats(1e-3)) is None
    assert controller.on_interval(stats(2e-3)) is None
    result = controller.on_interval(stats(3e-3))  # traffic shifted
    assert result is not None
    assert controller.tuning_processes_started == 1
    assert controller.tuning_active


def test_tuning_runs_to_completion_and_locks_best():
    # One-round schedule so the process finishes quickly.
    schedule = AnnealingSchedule(
        initial_temp=90, final_temp=80, cooling_rate=0.8, iterations_per_temp=3
    )
    elephants = {i: 10 * MB for i in range(5)}
    mice = {100 + i: 2000 for i in range(30)}
    script = [elephants, elephants] + [{**elephants, **mice}] * 20
    controller = make_controller(script, schedule)
    dispatches = 0
    for i in range(10):
        if controller.on_interval(stats((i + 1) * 1e-3)) is not None:
            dispatches += 1
    assert controller.tuning_processes_finished == 1
    assert not controller.tuning_active
    # 3 proposals plus (possibly) the final best dispatch.
    assert dispatches >= 3
    # Deployed params equal the best the finished process found.
    assert controller.last_best is not None
    assert controller.deployed.as_dict() == controller.last_best.as_dict()


def test_log_records_every_interval():
    controller = make_controller([{1: 10 * MB}] * 5)
    for i in range(5):
        controller.on_interval(stats((i + 1) * 1e-3))
    assert len(controller.log) == 5
    assert len(controller.utility_trace()) == 5
    assert len(controller.kl_trace()) == 5
    assert all(entry.kl >= 0 for entry in controller.log)


def test_controller_without_aggregator_tunes_blind():
    """The No-FSD arm: no KL trigger exists, so the SA runs
    continuously with unguided (50/50) mutation."""
    config = ParaleonConfig()
    annealer = ImprovedAnnealer(
        default_space(), config.schedule, random.Random(0)
    )
    controller = ParaleonController(config, None, annealer, default_params())
    dispatches = 0
    for i in range(5):
        if controller.on_interval(stats((i + 1) * 1e-3)) is not None:
            dispatches += 1
    assert controller.tuning_processes_started == 1
    assert dispatches == 5  # a blind proposal every interval
    assert all(entry.kl == 0.0 for entry in controller.log)


def test_elephant_fraction_logged():
    controller = make_controller([{1: 10 * MB, 2: 100}] * 3)
    for i in range(3):
        controller.on_interval(stats((i + 1) * 1e-3))
    assert controller.log[-1].elephant_fraction == pytest.approx(0.5)


def test_dominance_flip_restarts_tuning_hot():
    """A mid-tuning dominant-type flip + KL spike restarts the SA at
    full temperature (the Fig. 8 fast-adaptation mechanism)."""
    elephants = {i: 10 * MB for i in range(10)}
    mice = {100 + i: 2000 for i in range(40)}
    script = [elephants, elephants, {**elephants, 999: 2000}] \
        + [elephants] * 5 + [mice] * 5
    controller = make_controller(script)
    for i in range(len(script)):
        controller.on_interval(stats((i + 1) * 1e-3))
    assert controller.tuning_processes_started == 1
    assert controller.tuning_processes_restarted >= 1
    # Restart reset the temperature to the initial value recently.
    assert controller.annealer.state.temperature >= 60.0


def test_stable_dominance_does_not_restart():
    elephants = {i: 10 * MB for i in range(10)}
    script = [elephants, elephants, {**elephants, 999: 2000}] \
        + [elephants] * 10
    controller = make_controller(script)
    for i in range(len(script)):
        controller.on_interval(stats((i + 1) * 1e-3))
    assert controller.tuning_processes_restarted == 0
