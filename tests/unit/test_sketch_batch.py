"""Batch/scalar equivalence properties for the sketch kernels.

The vectorized monitoring data plane rests on one claim: feeding a
packet stream through ``insert_batch`` (in arbitrary chunkings) leaves
every sketch register bit-identical to feeding it packet-by-packet
through ``insert``.  These properties drive random and adversarial
(ostracism-heavy) streams through both paths and compare full state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.cm import CountMinSketch
from repro.sketch.elastic import ElasticSketch, ElasticSketchConfig
from repro.sketch.hashing import hash32, hash32_array


def elastic_state(sketch: ElasticSketch) -> tuple:
    """Every observable register of an ElasticSketch, as a comparable."""
    return (
        sketch._flow_id.tolist(),
        sketch._pos.tolist(),
        sketch._neg.tolist(),
        sketch._flag.tolist(),
        sketch._light._table.tolist(),
        sketch._light.total_inserted,
        sketch.total_bytes,
        sketch.evictions,
        sketch.interval_evictions,
    )


def chunked(items, sizes):
    """Split ``items`` into chunks of the given sizes (remainder last)."""
    out, i = [], 0
    for size in sizes:
        if i >= len(items):
            break
        out.append(items[i : i + size])
        i += size
    if i < len(items):
        out.append(items[i:])
    return out


# -- hashing ----------------------------------------------------------------


@settings(deadline=None, max_examples=50)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=64),
    seed=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_hash32_array_matches_scalar(keys, seed):
    vector = hash32_array(np.asarray(keys, dtype=np.int64), seed)
    scalar = [hash32(k, seed) for k in keys]
    assert vector.tolist() == scalar


# -- count-min --------------------------------------------------------------


@settings(deadline=None, max_examples=50)
@given(
    inserts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=200,
    ),
    chunk_sizes=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=16),
)
def test_cm_insert_batch_equals_sequential(inserts, chunk_sizes):
    sequential = CountMinSketch(width=64, depth=3, seed=7)
    batched = CountMinSketch(width=64, depth=3, seed=7)
    for key, value in inserts:
        sequential.insert(key, value)
    for chunk in chunked(inserts, chunk_sizes):
        keys = np.asarray([k for k, _ in chunk], dtype=np.int64)
        vals = np.asarray([v for _, v in chunk], dtype=np.int64)
        batched.insert_batch(keys, vals)
    assert batched._table.tolist() == sequential._table.tolist()
    assert batched.total_inserted == sequential.total_inserted
    probe = np.asarray(sorted({k for k, _ in inserts}), dtype=np.int64)
    assert batched.query_batch(probe).tolist() == [
        sequential.query(int(k)) for k in probe
    ]


def test_cm_memory_models():
    cm = CountMinSketch(width=100, depth=2)
    # The modeled cost uses the paper's 4 B Tofino SRAM counters ...
    assert cm.memory_bytes() == 100 * 2 * 4
    assert cm.memory_bytes(counter_bytes=2) == 100 * 2 * 2
    # ... while the process actually holds int64 cells.
    assert cm.native_memory_bytes() == 100 * 2 * 8


# -- elastic sketch ---------------------------------------------------------

_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=5_000),
    ),
    min_size=1,
    max_size=300,
)
_chunking = st.lists(st.integers(min_value=1, max_value=48), min_size=1, max_size=24)


def _run_both(stream, chunk_sizes, **config):
    defaults = dict(heavy_buckets=8, light_width=128, light_depth=2, seed=11)
    defaults.update(config)
    sequential = ElasticSketch(ElasticSketchConfig(**defaults))
    batched = ElasticSketch(ElasticSketchConfig(**defaults))
    for flow, nbytes in stream:
        sequential.insert(flow, nbytes)
    for chunk in chunked(stream, chunk_sizes):
        ids = np.asarray([f for f, _ in chunk], dtype=np.int64)
        vals = np.asarray([v for _, v in chunk], dtype=np.int64)
        batched.insert_batch(ids, vals)
    return sequential, batched


@settings(deadline=None, max_examples=60)
@given(stream=_stream, chunk_sizes=_chunking)
def test_elastic_insert_batch_equals_sequential(stream, chunk_sizes):
    sequential, batched = _run_both(stream, chunk_sizes)
    assert elastic_state(batched) == elastic_state(sequential)
    assert batched.read_heavy() == sequential.read_heavy()


@settings(deadline=None, max_examples=60)
@given(
    stream=st.lists(
        # Two flows hammering a tiny heavy part with λ=1: almost every
        # collision evicts, so the slow path's ordered replay carries
        # the entire ostracism history.
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=500),
        ),
        min_size=2,
        max_size=200,
    ),
    chunk_sizes=_chunking,
)
def test_elastic_batch_ostracism_adversarial(stream, chunk_sizes):
    sequential, batched = _run_both(
        stream, chunk_sizes, heavy_buckets=1, ostracism_lambda=1.0
    )
    assert elastic_state(batched) == elastic_state(sequential)
    assert batched.evictions == sequential.evictions
    assert batched.read_heavy() == sequential.read_heavy()


def test_elastic_batch_read_arrays_match_dict():
    sketch = ElasticSketch(ElasticSketchConfig(heavy_buckets=16, seed=5))
    rng = np.random.default_rng(9)
    ids = rng.integers(0, 50, size=400).astype(np.int64)
    vals = rng.integers(1, 3000, size=400).astype(np.int64)
    sketch.insert_batch(ids, vals)
    array_ids, array_estimates = sketch.read_heavy_arrays()
    assert dict(zip(array_ids.tolist(), array_estimates.tolist())) == sketch.read_heavy()


def test_elastic_batch_rejects_bad_input():
    sketch = ElasticSketch(ElasticSketchConfig(heavy_buckets=4))
    with pytest.raises(ValueError):
        sketch.insert_batch(np.asarray([1]), np.asarray([-1]))
    with pytest.raises(ValueError):
        sketch.insert_batch(np.asarray([-1]), np.asarray([1]))
    # Empty batches are a no-op, not an error.
    sketch.insert_batch(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))
    assert sketch.total_bytes == 0


def test_eviction_counters_split_interval_from_lifetime():
    sketch = ElasticSketch(
        ElasticSketchConfig(heavy_buckets=1, ostracism_lambda=1.0)
    )
    sketch.insert(1, 100)
    sketch.insert(2, 100)  # evicts flow 1
    assert sketch.evictions == 1
    assert sketch.interval_evictions == 1

    sketch.read_and_reset()
    # The interval counter restarts; the lifetime total and the latched
    # last-interval value survive the register clear.
    assert sketch.interval_evictions == 0
    assert sketch.last_interval_evictions == 1
    assert sketch.evictions == 1

    sketch.insert(3, 100)
    sketch.insert(4, 100)  # evicts flow 3
    assert sketch.interval_evictions == 1
    assert sketch.evictions == 2
    sketch.read_and_reset()
    assert sketch.last_interval_evictions == 1
    assert sketch.evictions == 2
