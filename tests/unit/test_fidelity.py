"""Multi-fidelity policy objects: config, screen, and batch pruning."""

import random

import pytest

from repro.parallel.tasks import ScenarioSpec
from repro.tuning.annealing import AnnealingSchedule, ImprovedAnnealer
from repro.tuning.fidelity import (
    FIDELITY_MODES,
    FidelityConfig,
    SurrogateScreen,
    calibrate_on_anchors,
    default_anchor_params,
)
from repro.tuning.parameters import default_params, default_space

SPEC = ScenarioSpec(workload="hadoop", scale="small", duration=0.01, seed=1)


# -- FidelityConfig ------------------------------------------------------


def test_config_defaults_are_full_fidelity():
    cfg = FidelityConfig()
    assert cfg.mode == "full"
    assert not cfg.early_abort
    assert cfg.proposals_for(5) == 5
    assert cfg.abort_threshold(0.9) is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "fluid-only"},
        {"screen_ratio": 0.5},
        {"abort_after_frac": -0.1},
        {"abort_after_frac": 1.5},
        {"abort_margin": -0.01},
        {"dt": 0.0},
    ],
)
def test_config_rejects_invalid_fields(kwargs):
    with pytest.raises(ValueError):
        FidelityConfig(**kwargs)


def test_config_modes_are_recognized():
    for mode in FIDELITY_MODES:
        assert FidelityConfig(mode=mode).mode == mode


def test_proposals_for_scales_only_in_screen_mode():
    assert FidelityConfig(mode="screen", screen_ratio=3.0).proposals_for(4) == 12
    assert FidelityConfig(mode="screen", screen_ratio=1.0).proposals_for(4) == 4
    # Rounds to nearest, never below k.
    assert FidelityConfig(mode="screen", screen_ratio=1.4).proposals_for(2) == 3
    assert FidelityConfig(mode="surrogate", screen_ratio=3.0).proposals_for(4) == 4
    assert FidelityConfig(mode="full", screen_ratio=3.0).proposals_for(4) == 4


def test_abort_threshold_tracks_incumbent():
    cfg = FidelityConfig(early_abort=True, abort_margin=0.05)
    assert cfg.abort_threshold(None) is None
    assert cfg.abort_threshold(0.8) == pytest.approx(0.75)
    off = FidelityConfig(early_abort=False)
    assert off.abort_threshold(0.8) is None


# -- SurrogateScreen -----------------------------------------------------


def test_select_is_deterministic_and_sorted():
    screen = SurrogateScreen(SPEC)
    anchors = default_anchor_params(default_params())
    first = screen.select(anchors, 3)
    second = screen.select(anchors, 3)
    assert first == second
    survivors, scores = first
    assert len(survivors) == 3
    assert survivors == sorted(survivors)
    assert len(scores) == len(anchors)
    # Survivors really are the top-scoring candidates.
    top = sorted(
        sorted(range(len(scores)), key=lambda i: (-scores[i], i))[:3]
    )
    assert survivors == top


def test_select_clamps_keep_and_rejects_zero():
    screen = SurrogateScreen(SPEC)
    anchors = default_anchor_params(default_params())[:4]
    survivors, _ = screen.select(anchors, 100)
    assert survivors == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        screen.select(anchors, 0)


def test_observe_updates_calibration_and_spearman():
    screen = SurrogateScreen(SPEC)
    assert screen.n_observed == 0
    # Feed a perfectly affine fluid->DES relationship.
    for fluid in (0.2, 0.4, 0.6, 0.8):
        screen.observe(fluid, 0.5 * fluid + 0.1)
    assert screen.n_observed == 4
    assert screen.calibration.scale == pytest.approx(0.5, abs=1e-9)
    assert screen.calibration.offset == pytest.approx(0.1, abs=1e-9)
    assert screen.spearman == pytest.approx(1.0)
    assert screen.calibration.apply(0.6) == pytest.approx(0.4, abs=1e-9)


def test_calibrate_on_anchors_returns_fit():
    anchors = default_anchor_params(default_params())[:4]
    des = [0.7, 0.8, 0.6, 0.75]
    cal = calibrate_on_anchors(SPEC, anchors, des)
    assert cal.n_anchors == 4
    assert cal.residual_rms >= 0.0
    with pytest.raises(ValueError):
        calibrate_on_anchors(SPEC, anchors, des[:2])


def test_default_anchor_params_are_valid_and_distinct():
    anchors = default_anchor_params(default_params())
    assert len(anchors) == 8
    for params in anchors:
        params.validate()
    assert len({repr(p.as_dict()) for p in anchors}) == len(anchors)


# -- Annealer screen_batch ----------------------------------------------


def _annealer():
    annealer = ImprovedAnnealer(
        default_space(),
        AnnealingSchedule(90.0, 30.0, 0.85, 4),
        rng=random.Random(3),
    )
    annealer.begin(default_params(), 0.5)
    return annealer


def test_screen_batch_prunes_pending_candidates():
    annealer = _annealer()
    batch = annealer.propose_batch(6)
    survivors = annealer.screen_batch([1, 4])
    assert survivors == [batch[1], batch[4]]
    # feedback now expects exactly one utility per survivor.
    with pytest.raises(ValueError):
        annealer.feedback_batch([0.5, 0.6, 0.7])
    annealer.feedback_batch([0.5, 0.6])
    assert annealer.state.best_util >= 0.5


def test_screen_batch_requires_pending_proposal():
    annealer = _annealer()
    with pytest.raises(RuntimeError):
        annealer.screen_batch([0])


@pytest.mark.parametrize(
    "indices", [[], [2, 1], [0, 0], [-1, 2], [0, 6]]
)
def test_screen_batch_rejects_bad_indices(indices):
    annealer = _annealer()
    annealer.propose_batch(6)
    with pytest.raises(ValueError):
        annealer.screen_batch(indices)
