"""Metrics registry: counters, gauges, histogram edges, fork-merge."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    c = Counter("x_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge("level")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_registry_returns_same_metric_and_rejects_type_conflicts():
    reg = MetricsRegistry()
    assert reg.counter("a_total") is reg.counter("a_total")
    with pytest.raises(ValueError):
        reg.gauge("a_total")
    with pytest.raises(ValueError):
        reg.histogram("a_total", [1.0])


# ---------------------------------------------------------------------------
# Histogram bucketization edge cases
# ---------------------------------------------------------------------------


def test_histogram_bound_equal_value_is_included():
    # Prometheus `le` semantics: v == bound lands in that bucket.
    h = Histogram("h", bounds=(1.0, 2.0, 4.0))
    h.observe(1.0)
    h.observe(2.0)
    h.observe(4.0)
    assert h.bucket_counts() == [1, 1, 1, 0]


def test_histogram_below_first_and_above_last_bounds():
    h = Histogram("h", bounds=(1.0, 2.0))
    h.observe(-5.0)     # below everything -> first bucket
    h.observe(0.999)
    h.observe(2.0001)   # past the last bound -> overflow (+Inf)
    h.observe(1e9)
    assert h.bucket_counts() == [2, 0, 2]
    assert h.count == 4
    assert h.cumulative() == [2, 2, 4]


def test_histogram_sum_and_mean_bookkeeping():
    h = Histogram("h", bounds=(10.0,))
    for v in (1.0, 2.0, 30.0):
        h.observe(v)
    assert h.sum == pytest.approx(33.0)
    assert h.count == 3


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))


def test_histogram_bounds_conflict_detected():
    reg = MetricsRegistry()
    reg.histogram("h", [1.0, 2.0])
    with pytest.raises(ValueError):
        reg.histogram("h", [1.0, 3.0])
    # Same bounds: same object.
    assert reg.histogram("h", [1.0, 2.0]) is reg.histogram("h", [1.0, 2.0])


# ---------------------------------------------------------------------------
# Snapshot / merge (the fork protocol)
# ---------------------------------------------------------------------------


def _worker_like_snapshot() -> dict:
    child = MetricsRegistry()
    child.counter("evals_total").inc(3)
    child.gauge("heap").set(500)
    h = child.histogram("lat", [0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return child.snapshot()


def test_merge_snapshot_adds_counters_and_histograms_maxes_gauges():
    parent = MetricsRegistry()
    parent.counter("evals_total").inc(1)
    parent.gauge("heap").set(900)
    parent.histogram("lat", [0.1, 1.0]).observe(0.01)

    parent.merge_snapshot(_worker_like_snapshot())

    snap = parent.snapshot()
    assert snap["counters"]["evals_total"] == 4.0
    assert snap["gauges"]["heap"] == 900.0        # parent high-water wins
    assert snap["histograms"]["lat"]["counts"] == [2, 1, 1]
    assert snap["histograms"]["lat"]["count"] == 4

    # Merging into an empty parent creates the metrics.
    fresh = MetricsRegistry()
    fresh.merge_snapshot(_worker_like_snapshot())
    assert fresh.counter("evals_total").value == 3.0
    assert fresh.gauge("heap").value == 500.0


def test_merge_snapshot_rejects_bound_mismatch_and_tolerates_empty():
    parent = MetricsRegistry()
    parent.histogram("lat", [0.1, 1.0])
    bad = _worker_like_snapshot()
    bad["histograms"]["lat"]["bounds"] = [0.5, 1.0]
    with pytest.raises(ValueError):
        parent.merge_snapshot(bad)
    parent.merge_snapshot(None)
    parent.merge_snapshot({})


def test_snapshot_reset_returns_delta_exactly_once():
    reg = MetricsRegistry()
    reg.counter("c_total").inc(5)
    reg.histogram("h", [1.0]).observe(0.5)
    first = reg.snapshot(reset=True)
    assert first["counters"]["c_total"] == 5.0
    second = reg.snapshot()
    assert second["counters"]["c_total"] == 0.0
    assert second["histograms"]["h"]["count"] == 0
    # Metric objects survive the reset (call sites keep references).
    reg.counter("c_total").inc()
    assert reg.snapshot()["counters"]["c_total"] == 1.0


def test_snapshot_is_json_safe():
    reg = MetricsRegistry()
    reg.counter("c_total").inc()
    reg.histogram("h", [1.0, 2.0]).observe(1.5)
    round_tripped = json.loads(json.dumps(reg.snapshot()))
    reg2 = MetricsRegistry()
    reg2.merge_snapshot(round_tripped)
    assert reg2.counter("c_total").value == 1.0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("repro_evals_total", "Evaluations").inc(7)
    reg.gauge("repro_heap").set(42)
    h = reg.histogram("repro_task_seconds", [0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    text = reg.to_prometheus()
    assert "# TYPE repro_evals_total counter" in text
    assert "repro_evals_total 7" in text
    assert "repro_heap 42" in text
    assert 'repro_task_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_task_seconds_bucket{le="1"} 2' in text
    assert 'repro_task_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_task_seconds_count 2" in text


def test_global_registry_has_instrumentation_metrics():
    # Importing the instrumented modules registers the catalog metrics.
    import repro.experiments.runner  # noqa: F401
    import repro.parallel.tasks  # noqa: F401

    snap = get_registry().snapshot()
    assert "repro_intervals_total" in snap["counters"]
    assert "repro_evals_total" in snap["counters"]
    assert "repro_task_seconds" in snap["histograms"]
