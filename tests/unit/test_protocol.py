"""Unit tests for the control-plane message protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpc.protocol import (
    MessageType,
    ParamUpdate,
    RnicReport,
    SwitchReport,
    decode_message,
    encode_message,
    message_wire_size,
)
from repro.tuning.parameters import default_params, expert_params


def test_switch_report_roundtrip():
    report = SwitchReport(
        agent_id=3,
        timestamp=0.125,
        throughput_bytes=1e6,
        pause_seconds=1e-5,
        elephant_weight=4.5,
        tracked_flows=17,
        histogram=[float(i) for i in range(31)],
    )
    decoded = decode_message(encode_message(report))
    assert isinstance(decoded, SwitchReport)
    assert decoded == report


def test_rnic_report_roundtrip():
    report = RnicReport(agent_id=9, timestamp=1.5, mean_rtt=12e-6, pause_seconds=0.0)
    decoded = decode_message(encode_message(report))
    assert isinstance(decoded, RnicReport)
    assert decoded.agent_id == 9
    assert decoded.mean_rtt == pytest.approx(12e-6, rel=1e-6)


def test_param_update_roundtrip_preserves_semantics():
    update = ParamUpdate(2.0, expert_params())
    decoded = decode_message(encode_message(update))
    assert isinstance(decoded, ParamUpdate)
    original = update.params.as_dict()
    restored = decoded.params.as_dict()
    for name, value in original.items():
        assert restored[name] == pytest.approx(value, rel=1e-5)
    # Integral knobs restored as ints so validate() passes.
    decoded.params.validate()
    assert isinstance(restored["k_min"], int)


def test_wire_sizes_match_paper_order_of_magnitude():
    """Table IV: switch->controller ~520 B, RNIC->controller ~12 B,
    controller->devices ~76 B.  Our framing differs slightly but must
    stay in the same order of magnitude."""
    switch = SwitchReport(0, 0.0, 0.0, 0.0, 0.0, 0)
    rnic = RnicReport(0, 0.0, 0.0, 0.0)
    update = ParamUpdate(0.0, default_params())
    assert 100 <= message_wire_size(switch) <= 1000
    assert message_wire_size(rnic) <= 64
    assert 40 <= message_wire_size(update) <= 150
    # Relative ordering matches the paper.
    assert message_wire_size(switch) > message_wire_size(update) > message_wire_size(rnic)


def test_histogram_length_enforced():
    report = SwitchReport(0, 0.0, 0.0, 0.0, 0.0, 0, histogram=[1.0])
    with pytest.raises(ValueError):
        report.pack()


def test_short_frame_rejected():
    with pytest.raises(ValueError):
        decode_message(b"\x00")


def test_corrupt_length_rejected():
    frame = bytearray(encode_message(RnicReport(0, 0.0, 0.0, 0.0)))
    frame[3] += 1  # corrupt the length field
    with pytest.raises(ValueError):
        decode_message(bytes(frame))


def test_message_type_tags_distinct():
    assert len({t.value for t in MessageType}) == 4


@settings(deadline=None, max_examples=30)
@given(
    agent_id=st.integers(min_value=0, max_value=65535),
    timestamp=st.floats(min_value=0, max_value=1e6),
    rtt=st.floats(min_value=0, max_value=1.0),
)
def test_rnic_roundtrip_property(agent_id, timestamp, rtt):
    report = RnicReport(agent_id, timestamp, rtt, 0.0)
    decoded = decode_message(encode_message(report))
    assert decoded.agent_id == agent_id
    assert decoded.timestamp == pytest.approx(timestamp)
    assert decoded.mean_rtt == pytest.approx(rtt, rel=1e-5, abs=1e-12)
