"""Unit tests for unit helpers."""

from __future__ import annotations

import pytest

from repro.simulator import units


def test_time_helpers():
    assert units.us(1.0) == pytest.approx(1e-6)
    assert units.ms(1.0) == pytest.approx(1e-3)
    assert units.us(250) == pytest.approx(250e-6)


def test_size_helpers():
    assert units.kb(1.0) == 1000
    assert units.mb(2.5) == 2_500_000
    assert units.kb(32.0) == 32_000


def test_rate_helpers():
    assert units.mbps(5.0) == pytest.approx(5e6)
    assert units.gbps(10.0) == pytest.approx(1e10)


def test_serialization_delay():
    # 1000 bytes at 8 Gbps = 1 us.
    assert units.serialization_delay(1000, 8e9) == pytest.approx(1e-6)


def test_serialization_delay_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.serialization_delay(1000, 0.0)


def test_bytes_in_flight():
    # 10 Gbps x 10 us = 12.5 KB.
    assert units.bytes_in_flight(1e10, 1e-5) == pytest.approx(12_500)


def test_framing_constants_sane():
    assert 0 < units.HEADER_BYTES < 128
    assert units.DEFAULT_MTU >= 1000
    assert units.CONTROL_PACKET_BYTES < units.DEFAULT_MTU
