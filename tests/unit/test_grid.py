"""Unit tests for the exhaustive grid-search foil."""

from __future__ import annotations

import pytest

from repro.simulator.stats import IntervalStats
from repro.simulator.units import ms
from repro.tuning.grid import (
    DEFAULT_GRID,
    GridSearchTuner,
    expand_grid,
    offline_grid_search,
)


def stats(t, tp=0.5, rtt=0.8):
    return IntervalStats(
        t_start=t - 1e-3, t_end=t, throughput_util=tp, norm_rtt=rtt,
        pfc_ok=1.0, mean_rtt=1e-5, rtt_samples=5, pause_fraction=0.0,
        active_uplinks=2, total_tx_bytes=100,
    )


def test_expand_grid_size_and_validity():
    points = expand_grid(DEFAULT_GRID)
    assert len(points) == 3 ** 4
    for params in points:
        params.validate()
    # All points are distinct.
    assert len({tuple(sorted(p.as_dict().items())) for p in points}) == len(points)


def test_expand_grid_repairs_kmin_kmax():
    points = expand_grid({"k_min": (500_000,)})
    assert points[0].k_min < points[0].k_max


def test_expand_grid_rejects_empty():
    with pytest.raises(ValueError):
        expand_grid({})


def test_online_sweep_steps_one_point_per_interval(tiny_network):
    tuner = GridSearchTuner(grid={"p_max": (0.05, 0.2, 0.5)})
    tuner.attach(tiny_network)
    assert tuner.sweep_length == 3
    dispatched = []
    # 3 evaluation intervals + 1 best-dispatch interval.
    for i in range(4):
        params = tuner.on_interval(stats((i + 1) * 1e-3, tp=0.1 * (i + 1)))
        dispatched.append(params)
    assert all(p is not None for p in dispatched)
    assert tuner.sweeps_completed == 1
    # Every grid point got a measured utility.
    assert len(tuner.results) == 3


def test_online_sweep_holds_best_after_convergence(tiny_network):
    tuner = GridSearchTuner(grid={"p_max": (0.05, 0.5)})
    tuner.attach(tiny_network)
    # Utility at interval i reflects the point dispatched at i-1, so
    # this sequence scores point0 -> 0.3 and point1 -> 0.9.
    utilities = [0.0, 0.3, 0.9]
    for i, u in enumerate(utilities):
        tuner.on_interval(stats((i + 1) * 1e-3, tp=u, rtt=u))
    # Converged: holds the best point, no more dispatches.
    assert tuner.on_interval(stats(4e-3)) is None
    best = tuner.best()
    assert best.params.p_max == pytest.approx(0.5)


def test_best_requires_results():
    tuner = GridSearchTuner(grid={"p_max": (0.1,)})
    with pytest.raises(ValueError):
        tuner.best()


def test_offline_grid_search_finds_planted_optimum():
    # Utility peaks at p_max == 0.2 by construction.
    def scenario(params):
        return 1.0 - abs(params.p_max - 0.2)

    best, results = offline_grid_search(
        scenario, grid={"p_max": (0.05, 0.2, 0.5)}
    )
    assert best.params.p_max == pytest.approx(0.2)
    assert len(results) == 3


def test_resweep_mode(tiny_network):
    tuner = GridSearchTuner(grid={"p_max": (0.05, 0.5)}, resweep=True)
    tuner.attach(tiny_network)
    for i in range(7):
        tuner.on_interval(stats((i + 1) * 1e-3))
    assert tuner.sweeps_completed >= 2


def test_offline_grid_search_parallel_matches_serial():
    """Same grid through the parallel fabric: same order, same best."""
    from repro.parallel import ScenarioSpec
    from repro.parallel.sweeps import offline_grid_search_parallel

    spec = ScenarioSpec(workload="hadoop", scale="small", duration=0.004)
    grid = {"p_max": (0.05, 0.2, 0.5)}
    best_1, results_1 = offline_grid_search_parallel(spec, grid, jobs=1)
    best_2, results_2 = offline_grid_search_parallel(spec, grid, jobs=2)
    assert len(results_1) == len(results_2) == 3
    assert [r.utility for r in results_1] == [r.utility for r in results_2]
    assert [r.params.as_dict() for r in results_1] == [
        r.params.as_dict() for r in results_2
    ]
    assert best_1.params.as_dict() == best_2.params.as_dict()
