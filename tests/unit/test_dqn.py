"""Unit tests for the numpy DQN machinery used by the ACC baseline."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.dqn import DqnAgent, DqnConfig, MLP, ReplayBuffer


def test_mlp_validation():
    with pytest.raises(ValueError):
        MLP([4], np.random.default_rng(0))


def test_mlp_shapes():
    mlp = MLP([3, 8, 2], np.random.default_rng(0))
    out = mlp.predict(np.zeros((5, 3)))
    assert out.shape == (5, 2)


def test_mlp_learns_linear_regression():
    """The MLP must be able to fit a trivial function."""
    rng = np.random.default_rng(1)
    mlp = MLP([2, 16, 1], rng)
    xs = rng.uniform(-1, 1, size=(256, 2))
    ys = (xs[:, :1] * 2.0 + xs[:, 1:] * -1.0)
    mask = np.ones_like(ys)
    first_loss = mlp.train_step(xs, ys, mask, lr=0.05)
    for _ in range(300):
        last_loss = mlp.train_step(xs, ys, mask, lr=0.05)
    assert last_loss < first_loss * 0.2


def test_mlp_copy_from():
    rng = np.random.default_rng(2)
    a = MLP([2, 4, 2], rng)
    b = MLP([2, 4, 2], rng)
    b.copy_from(a)
    x = np.ones((1, 2))
    assert np.allclose(a.predict(x), b.predict(x))
    # Copies are independent.
    a.weights[0][0, 0] += 1.0
    assert not np.allclose(a.predict(x), b.predict(x))


def test_replay_buffer_capacity_and_overwrite():
    buffer = ReplayBuffer(3, random.Random(0))
    for i in range(5):
        buffer.push(i, i, float(i), i + 1)
    assert len(buffer) == 3
    stored = {item[0] for item in buffer._data}
    assert stored == {2, 3, 4}  # oldest overwritten


def test_replay_buffer_validation():
    with pytest.raises(ValueError):
        ReplayBuffer(0, random.Random(0))


def test_replay_sample_size_bounded():
    buffer = ReplayBuffer(10, random.Random(0))
    buffer.push(1, 0, 0.0, 2)
    assert len(buffer.sample(5)) == 1


def test_agent_epsilon_decays():
    agent = DqnAgent(DqnConfig(epsilon_decay_steps=10), seed=0)
    initial = agent.epsilon()
    agent.steps = 10
    assert agent.epsilon() < initial
    assert agent.epsilon() == pytest.approx(agent.config.epsilon_final)


def test_agent_act_in_range():
    config = DqnConfig()
    agent = DqnAgent(config, seed=1)
    for _ in range(50):
        action = agent.act(np.zeros(config.state_dim))
        assert 0 <= action < config.n_actions


def test_agent_observe_and_learn():
    config = DqnConfig(batch_size=4, target_sync_every=5)
    agent = DqnAgent(config, seed=2)
    rng = np.random.default_rng(3)
    for _ in range(30):
        state = rng.uniform(0, 1, config.state_dim)
        next_state = rng.uniform(0, 1, config.state_dim)
        agent.observe(state, rng.integers(config.n_actions), rng.uniform(-1, 1), next_state)
    assert agent.steps == 30
    assert len(agent.losses) > 0


def test_agent_prefers_rewarded_action_eventually():
    """On a one-state bandit, the greedy action converges to the
    rewarded one."""
    config = DqnConfig(
        state_dim=2, n_actions=3, batch_size=8, lr=0.05,
        epsilon_decay_steps=50, gamma=0.0,
    )
    agent = DqnAgent(config, seed=4)
    state = np.array([1.0, 0.0])
    for _ in range(300):
        action = agent.act(state)
        reward = 1.0 if action == 2 else -1.0
        agent.observe(state, action, reward, state)
    q = agent.online.predict(state.reshape(1, -1))[0]
    assert int(np.argmax(q)) == 2
